# matmul — n x n integer matrix multiply, C = A * B, wrapping
# arithmetic. IN holds A then B (row-major, n*n words each); C goes to
# OUT (check = "matmul"). Rows of C are strided across threads, so the
# inner products are independent and compute-bound: one mul + add per
# loaded pair, little shared-cache pressure compared to the streaming
# kernels.
#
# ABI: r0 = tid, r1 = nthreads; parameter block at 0x1000
# (n is the matrix dimension here).

        li   r2, 0x1000
        ld   r3, 0(r2)         # n
        ld   r4, 16(r2)        # A base (IN)
        ld   r5, 24(r2)        # C base (OUT)
        mul  r6, r3, r3
        slli r6, r6, 3
        add  r6, r4, r6        # B base = A + n*n*8
        addi r7, r0, 0         # i = tid
iloop:
        bge  r7, r3, done      # while i < n
        li   r8, 0             # j = 0
jloop:
        bge  r8, r3, inext
        li   r9, 0             # acc = 0
        li   r10, 0            # k = 0
kloop:
        bge  r10, r3, kdone
        mul  r11, r7, r3
        add  r11, r11, r10
        slli r11, r11, 3
        add  r11, r11, r4
        ld   r12, 0(r11)       # A[i][k]
        mul  r11, r10, r3
        add  r11, r11, r8
        slli r11, r11, 3
        add  r11, r11, r6
        ld   r13, 0(r11)       # B[k][j]
        mul  r12, r12, r13
        add  r9, r9, r12       # acc += A[i][k] * B[k][j]
        addi r10, r10, 1
        j    kloop
kdone:
        mul  r11, r7, r3
        add  r11, r11, r8
        slli r11, r11, 3
        add  r11, r11, r5
        sd   r9, 0(r11)        # C[i][j] = acc
        addi r8, r8, 1
        j    jloop
inext:
        add  r7, r7, r1        # i += nthreads
        j    iloop
done:
        halt
