# primes — parallel prime sieve over composite flags:
#   for p = 2 + tid, 2 + tid + nthreads, ... < n:
#       mark OUT[2p], OUT[3p], ... = 1
#
# Every write stores the same value (1), so the cross-thread races on
# shared flag words are benign and the final state is deterministic:
# OUT[i] = 1 exactly for composite i (check = "sieve"). Marking
# multiples of a composite p is redundant work the classic flag test
# would skip — kept here so threads never race on a read.
#
# ABI: r0 = tid, r1 = nthreads; parameter block at 0x1000. The flags
# live in the OUT region; there is no input.

        li   r2, 0x1000
        ld   r3, 0(r2)         # n
        ld   r5, 24(r2)        # OUT base (flags)
        li   r10, 1
        addi r6, r0, 2         # p = 2 + tid
ploop:
        bge  r6, r3, done      # while p < n
        add  r7, r6, r6        # m = 2p
mark:
        bge  r7, r3, pnext
        slli r8, r7, 3
        add  r8, r8, r5
        sd   r10, 0(r8)        # flags[m] = 1
        add  r7, r7, r6        # m += p
        j    mark
pnext:
        add  r6, r6, r1        # p += nthreads
        j    ploop
done:
        halt
