# chase — pointer-chase hazard stress. IN holds a permutation of
# 0..n; for every start node s the kernel walks `steps` hops of
#   idx = IN[idx]
# and records the landing node in OUT[s]. The walk is a chain of
# load-to-load dependences: each address comes from the previous
# load's value, so the pipeline's load latency is fully exposed
# (check = "chase").
#
# Start nodes are strided across threads.
# ABI: r0 = tid, r1 = nthreads; parameter block at 0x1000.

        li   r2, 0x1000
        ld   r3, 0(r2)         # n
        ld   r12, 8(r2)        # steps
        ld   r4, 16(r2)        # IN base
        ld   r5, 24(r2)        # OUT base
        li   r9, 1
        addi r6, r0, 0         # s = tid
sloop:
        bge  r6, r3, done      # while s < n
        addi r7, r6, 0         # idx = s
        addi r8, r12, 0        # k = steps
hop:
        blt  r8, r9, write     # while k >= 1
        slli r10, r7, 3
        add  r10, r10, r4
        ld   r7, 0(r10)        # idx = IN[idx]   (serial dependence)
        sub  r8, r8, r9
        j    hop
write:
        slli r10, r6, 3
        add  r10, r10, r5
        sd   r7, 0(r10)        # OUT[s] = idx
        add  r6, r6, r1        # s += nthreads
        j    sloop
done:
        halt
