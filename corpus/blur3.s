# blur3 — 3-point box blur with clamped edges:
#   OUT[i] = (IN[max(i-1,0)] + IN[i] + IN[min(i+1,n-1)]) / 3
#
# Elements are strided across threads. Division is the ISA's signed
# div; fill values are masked positive so it matches the unsigned
# reference (check = "blur3").
#
# ABI: r0 = tid, r1 = nthreads; parameter block at 0x1000.

        li   r2, 0x1000
        ld   r3, 0(r2)         # n
        ld   r4, 16(r2)        # IN base
        ld   r5, 24(r2)        # OUT base
        li   r10, 3
        li   r14, 0
        addi r11, r3, -1       # n - 1
        addi r6, r0, 0         # i = tid
loop:
        bge  r6, r3, done
        addi r7, r6, -1        # left = i - 1
        bge  r7, r14, left_ok
        addi r7, r14, 0        # clamp left to 0
left_ok:
        addi r8, r6, 1         # right = i + 1
        blt  r8, r3, right_ok
        addi r8, r11, 0        # clamp right to n - 1
right_ok:
        slli r9, r7, 3
        add  r9, r9, r4
        ld   r12, 0(r9)        # IN[left]
        slli r9, r6, 3
        add  r9, r9, r4
        ld   r13, 0(r9)        # IN[i]
        add  r12, r12, r13
        slli r9, r8, 3
        add  r9, r9, r4
        ld   r13, 0(r9)        # IN[right]
        add  r12, r12, r13
        div  r12, r12, r10     # sum / 3
        slli r9, r6, 3
        add  r9, r9, r5
        sd   r12, 0(r9)        # OUT[i]
        add  r6, r6, r1        # i += nthreads
        j    loop
done:
        halt
