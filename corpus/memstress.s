# memstress — memory-bandwidth stress: a strided copy IN -> OUT where
# consecutive elements belong to different threads, so concurrent
# threads interleave their loads and stores through the shared D-cache.
#
# Final state: OUT[i] = IN[i] for all i (check = "copy").
#
# ABI: r0 = tid, r1 = nthreads; parameter block at 0x1000
# (n, steps, IN base, OUT base, AUX base). Registers r0..r9 only.

        li   r2, 0x1000
        ld   r3, 0(r2)         # n
        ld   r4, 16(r2)        # IN base
        ld   r5, 24(r2)        # OUT base
        addi r6, r0, 0         # i = tid
loop:
        bge  r6, r3, done      # while i < n
        slli r7, r6, 3
        add  r8, r4, r7
        ld   r9, 0(r8)         # IN[i]
        add  r8, r5, r7
        sd   r9, 0(r8)         # OUT[i] = IN[i]
        add  r6, r6, r1        # i += nthreads
        j    loop
done:
        halt
