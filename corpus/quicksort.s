# quicksort — parallel sort in two phases (check = "sorted"):
#
#   1. Each thread quicksorts its contiguous slice of IN in place:
#      iterative Lomuto quicksort with an explicit stack, always
#      pushing the larger subrange and looping on the smaller, so the
#      stack stays within log2(n) entries. The last thread absorbs the
#      `n mod nthreads` remainder.
#   2. A post/wait barrier at AUX+0, then thread 0 k-way merges the
#      sorted slices into OUT by repeatedly taking the smallest live
#      slice head (lowest thread wins ties — deterministic).
#
# Scratch ABI inside AUX (shared with the smt-corpus layout code):
#   AUX + 0            barrier word
#   AUX + 8  + t*16    slice table: {cursor, end} per thread (8 max)
#   AUX + 136 + t*512  per-thread quicksort stack (32 ranges deep)
#
# r0 = tid, r1 = nthreads; parameter block at 0x1000. Uses r0..r15.

        li   r2, 0x1000
        ld   r3, 0(r2)         # n
        ld   r4, 16(r2)        # IN base
        ld   r5, 24(r2)        # OUT base
        ld   r13, 32(r2)       # AUX base

        # slice bounds: chunk = n / nthreads, last thread takes the rest
        div  r6, r3, r1        # chunk
        mul  r7, r0, r6        # lo = tid * chunk
        add  r8, r7, r6        # hi = lo + chunk
        addi r9, r0, 1
        bne  r9, r1, slice_set
        addi r8, r3, 0         # last thread: hi = n
slice_set:
        slli r9, r0, 4
        add  r9, r9, r13
        sd   r7, 8(r9)         # publish cursor = lo
        sd   r8, 16(r9)        # publish end    = hi

        # explicit stack for this thread
        li   r14, 512
        mul  r14, r0, r14
        add  r14, r14, r13
        addi r14, r14, 136     # sp
        addi r15, r14, 0       # stack base

        sub  r9, r8, r7
        slti r9, r9, 2
        li   r2, 0
        bne  r9, r2, qdone     # fewer than 2 elements: nothing to sort
        sd   r7, 0(r14)        # push [lo, hi)
        sd   r8, 8(r14)
        addi r14, r14, 16
qloop:
        bge  r15, r14, qdone   # stack empty: slice is sorted
        addi r14, r14, -16
        ld   r6, 0(r14)        # lo
        ld   r7, 8(r14)        # hi
qrange:
        sub  r9, r7, r6
        slti r9, r9, 2
        li   r2, 0
        bne  r9, r2, qloop     # range smaller than 2: pop the next one

        # Lomuto partition, pivot = IN[hi-1]
        addi r9, r7, -1
        slli r10, r9, 3
        add  r10, r10, r4
        ld   r10, 0(r10)       # pivot value
        addi r8, r6, 0         # i = lo
        addi r9, r6, 0         # j = lo
part:
        addi r2, r7, -1
        bge  r9, r2, part_done # j reached hi-1
        slli r11, r9, 3
        add  r11, r11, r4      # &IN[j]
        ld   r12, 0(r11)
        bge  r12, r10, part_next
        slli r2, r8, 3
        add  r2, r2, r4        # &IN[i]
        ld   r3, 0(r2)         # (n is reloaded after the sort phase)
        sd   r12, 0(r2)
        sd   r3, 0(r11)        # swap IN[i] <-> IN[j]
        addi r8, r8, 1
part_next:
        addi r9, r9, 1
        j    part
part_done:
        slli r2, r8, 3
        add  r2, r2, r4        # &IN[i]
        ld   r3, 0(r2)
        addi r11, r7, -1
        slli r11, r11, 3
        add  r11, r11, r4      # &IN[hi-1]
        ld   r12, 0(r11)
        sd   r12, 0(r2)
        sd   r3, 0(r11)        # pivot into its final slot (index i)

        # push the larger side, keep sorting the smaller
        sub  r9, r8, r6        # left size  = i - lo
        sub  r10, r7, r8
        addi r10, r10, -1      # right size = hi - i - 1
        blt  r9, r10, left_small
        sd   r6, 0(r14)        # push left [lo, i)
        sd   r8, 8(r14)
        addi r14, r14, 16
        addi r6, r8, 1         # continue with right [i+1, hi)
        j    qrange
left_small:
        addi r2, r8, 1
        sd   r2, 0(r14)        # push right [i+1, hi)
        sd   r7, 8(r14)
        addi r14, r14, 16
        addi r7, r8, 0         # continue with left [lo, i)
        j    qrange

qdone:
        li   r2, 0x1000
        ld   r3, 0(r2)         # reload n (r3 doubled as a swap temp)
        ld   r5, 24(r2)        # reload OUT base
        addi r6, r13, 0
        post r6                # barrier arrive (AUX + 0)
        wait r6, r1            # barrier wait: all nthreads arrived

        li   r2, 0
        bne  r0, r2, fin       # only thread 0 merges
        li   r6, 0             # o = 0
merge:
        bge  r6, r3, fin       # while o < n
        li   r7, 0             # t = 0
        li   r8, -1            # best thread (none yet)
        li   r9, 0             # best head value
scan:
        bge  r7, r1, take
        slli r10, r7, 4
        add  r10, r10, r13
        ld   r11, 8(r10)       # cursor_t
        ld   r12, 16(r10)      # end_t
        bge  r11, r12, scan_next
        slli r2, r11, 3
        add  r2, r2, r4
        ld   r2, 0(r2)         # head value IN[cursor_t]
        li   r14, -1
        beq  r8, r14, better   # first live slice becomes the best
        bge  r2, r9, scan_next # strictly smaller wins; ties keep low t
better:
        addi r8, r7, 0
        addi r9, r2, 0
scan_next:
        addi r7, r7, 1
        j    scan
take:
        slli r10, r6, 3
        add  r10, r10, r5
        sd   r9, 0(r10)        # OUT[o] = smallest head
        slli r10, r8, 4
        add  r10, r10, r13
        ld   r11, 8(r10)
        addi r11, r11, 1
        sd   r11, 8(r10)       # advance the winning cursor
        addi r6, r6, 1
        j    merge
fin:
        halt
