//! Reproducibility and correctness properties of the Pareto search.
//!
//! Three guarantees, each load-bearing for trusting a searched frontier
//! as much as an exhaustive sweep:
//!
//! 1. **Byte-identical trajectories.** `search_trajectory.json` is the
//!    same byte-for-byte across re-runs over a warm store, across
//!    fresh stores, and across a kill/resume (simulated here as a store
//!    pre-populated with a prefix of the search's evaluations — exactly
//!    what a killed run leaves behind).
//! 2. **True frontier.** On a space small enough to enumerate, every
//!    searched frontier point is non-dominated against the brute-force
//!    evaluation of *all* points, and the searched frontier equals the
//!    exhaustive one as a set.
//! 3. **Warm ≡ full selection.** Warm-forked measurement approximates
//!    IPC but must not change *which* machines win: the warm-mode and
//!    full-mode searches select the same frontier point set.

use std::fs;
use std::path::{Path, PathBuf};

use smt_experiments::explore::{run_exhaustive, run_search, EvalMode, Explorer, SearchSpace};
use smt_experiments::sweep::{Scheduler, SweepOptions};
use smt_search::{dominates, SearchParams};
use smt_workloads::{Scale, WorkloadKind};

/// Long enough at test scale to genuinely fork (no cold fallback).
const WARMUP: u64 = 300;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smt-search-repro-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn sched(out: &Path) -> Scheduler {
    let opts = SweepOptions {
        scale: Scale::Test,
        ..SweepOptions::default()
    };
    Scheduler::new(out, opts).expect("store opens")
}

fn space() -> SearchSpace {
    SearchSpace::smoke(WorkloadKind::Laplace.into(), 2)
}

fn params() -> SearchParams {
    SearchParams {
        seed: 7,
        ..SearchParams::default()
    }
}

#[test]
fn trajectory_is_byte_identical_across_reruns_fresh_stores_and_resume() {
    let mode = EvalMode::Warm { warmup: WARMUP };

    // Reference run on a fresh store.
    let out_a = scratch("traj-a");
    let s_a = sched(&out_a);
    let first = run_search(&s_a, &space(), mode, &params()).expect("search runs");
    let reference = fs::read(&first.trajectory_path).expect("trajectory written");
    assert!(!reference.is_empty());

    // Re-run over the now-warm store: every cell comes from cache, the
    // artifact must not move by a byte.
    let again = run_search(&s_a, &space(), mode, &params()).expect("re-search runs");
    assert_eq!(
        fs::read(&again.trajectory_path).expect("rewritten"),
        reference,
        "warm-store re-run must reproduce the trajectory byte-for-byte"
    );
    assert_eq!(again.trajectory_hash, first.trajectory_hash);

    // A different fresh store: nothing cached, same bytes.
    let out_b = scratch("traj-b");
    let fresh = run_search(&sched(&out_b), &space(), mode, &params()).expect("fresh search");
    assert_eq!(
        fs::read(&fresh.trajectory_path).expect("written"),
        reference,
        "the trajectory must not depend on store contents or location"
    );

    // Kill/resume: a killed search leaves behind some prefix of its
    // evaluations (warm cells + the shared warm snapshot) and no
    // trajectory. Simulate exactly that — pre-populate a store with a
    // few of the cells the search will visit — and run the search to
    // completion over it.
    let out_c = scratch("traj-resume");
    let s_c = sched(&out_c);
    let mut prefix = Explorer::new(&s_c, space(), mode).expect("warm namespaces open");
    for point in [
        [0, 0, 0, 0, 0, 0, 0],
        [1, 0, 0, 0, 1, 1, 1],
        [0, 0, 0, 0, 1, 0, 1],
    ] {
        prefix.objectives(&point);
    }
    drop(prefix);
    let resumed = run_search(&s_c, &space(), mode, &params()).expect("resumed search");
    assert_eq!(
        fs::read(&resumed.trajectory_path).expect("written"),
        reference,
        "resuming over a partial store must converge on the same bytes"
    );
    assert_eq!(resumed.trajectory_hash, first.trajectory_hash);

    // The frontier report is equally deterministic.
    assert_eq!(
        fs::read(&resumed.frontier_path).expect("frontier"),
        fs::read(&first.frontier_path).expect("frontier"),
    );
    for out in [out_a, out_b, out_c] {
        let _ = fs::remove_dir_all(&out);
    }
}

#[test]
fn searched_frontier_is_the_brute_force_pareto_frontier() {
    let out = scratch("frontier");
    let s = sched(&out);
    let mode = EvalMode::Warm { warmup: WARMUP };

    let (all, exhaustive) = run_exhaustive(&s, &space(), mode).expect("exhaustive enumeration");
    assert_eq!(all.len(), 16, "the smoke space enumerates completely");
    let searched = run_search(&s, &space(), mode, &params()).expect("search runs");

    // Every searched frontier point is non-dominated against *all*
    // evaluated points — the definition, checked by brute force.
    for f in &searched.outcome.frontier {
        for e in &all {
            assert!(
                !dominates(&e.objectives, &f.objectives),
                "{:?} dominates searched frontier point {:?}",
                e.point,
                f.point
            );
        }
    }

    // And the searched frontier is exactly the exhaustive one.
    let points = |evals: &[smt_search::Evaluation]| -> Vec<Vec<usize>> {
        evals.iter().map(|e| e.point.clone()).collect()
    };
    assert_eq!(
        points(&searched.outcome.frontier),
        points(&exhaustive),
        "the search must recover the true Pareto frontier on the smoke space"
    );
    let _ = fs::remove_dir_all(&out);
}

#[test]
fn warm_and_full_searches_select_the_same_frontier() {
    let out = scratch("warm-vs-full");
    let s = sched(&out);

    let full = run_search(&s, &space(), EvalMode::Full, &params()).expect("full-mode search");
    let warm = run_search(&s, &space(), EvalMode::Warm { warmup: WARMUP }, &params())
        .expect("warm-mode search");

    // The warm records must come from real forks, or the comparison is
    // vacuous (a fallback re-runs the exact path).
    assert!(
        warm.frontier.iter().all(|(_, rec)| rec.reason.is_empty()),
        "warm frontier contains fallback cells: {:?}",
        warm.frontier
            .iter()
            .map(|(_, r)| (&r.id, &r.reason))
            .collect::<Vec<_>>()
    );

    let ids = |report: &smt_experiments::explore::SearchReport| -> Vec<String> {
        report.frontier.iter().map(|(spec, _)| spec.id()).collect()
    };
    assert_eq!(
        ids(&warm),
        ids(&full),
        "approximate measurement must select the same machines \
         (warm ipc: {:?}, full ipc: {:?})",
        warm.frontier.iter().map(|(_, r)| r.ipc).collect::<Vec<_>>(),
        full.frontier.iter().map(|(_, r)| r.ipc).collect::<Vec<_>>(),
    );
    let _ = fs::remove_dir_all(&out);
}
