//! Observability contract tests.
//!
//! Two properties make `smt-trace` safe to wire through the hot pipeline:
//!
//! 1. **Tracing never perturbs the machine.** A traced run and an untraced
//!    run of the same configuration produce bit-identical `SimStats` — the
//!    committed `tests/goldens/cycle_exact.txt` covers the untraced side,
//!    and this file pins the traced side to it across every workload ×
//!    fetch policy × thread count.
//! 2. **The CPI stack accounts every slot.** After any completed run,
//!    the per-cause slot counts sum to exactly `block_size × cycles`, and
//!    the `committed` cause equals the architectural instruction count.

use smt_superscalar::core::trace::{CpiStack, SlotCause, Tracer};
use smt_superscalar::core::{FetchPolicy, SimConfig, SimError, Simulator};
use smt_workloads::{workload, Scale, WorkloadKind};

const FETCH: [FetchPolicy; 3] = [
    FetchPolicy::TrueRoundRobin,
    FetchPolicy::MaskedRoundRobin,
    FetchPolicy::ConditionalSwitch,
];
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Every buildable (workload, fetch, threads) point at test scale. An
/// 8-thread partition leaves each thread a 16-register window, which the
/// register-hungry kernels exceed — those points drop out, and the loop
/// proves nothing below 8 threads ever does.
fn sweep(mut f: impl FnMut(WorkloadKind, FetchPolicy, usize, SimConfig, &smt_isa::Program)) {
    let mut skipped = Vec::new();
    for kind in WorkloadKind::ALL {
        let w = workload(kind, Scale::Test);
        for threads in THREADS {
            let program = match w.build(threads) {
                Ok(p) => p,
                Err(_) => {
                    skipped.push((kind, threads));
                    continue;
                }
            };
            for fetch in FETCH {
                let config = SimConfig::default()
                    .with_threads(threads)
                    .with_fetch_policy(fetch);
                f(kind, fetch, threads, config, &program);
            }
        }
    }
    assert!(
        skipped.iter().all(|&(_, threads)| threads == 8),
        "kernels only outgrow the register window at 8 threads: {skipped:?}"
    );
    assert!(
        skipped.len() < WorkloadKind::ALL.len(),
        "some kernels must still build at 8 threads"
    );
    // The same overflow is a *typed* error at the simulator boundary: a
    // kernel built for a roomier partition is refused with
    // `SimError::RegisterWindow` (which the sweep engine records as an
    // infeasible cell), never a panic.
    for &(kind, threads) in &skipped {
        let program = workload(kind, Scale::Test)
            .build(4)
            .expect("the kernel fits a 4-thread partition");
        let err = Simulator::try_new(SimConfig::default().with_threads(threads), &program)
            .expect_err("the 8-thread window cannot hold the kernel");
        assert!(
            matches!(err, SimError::RegisterWindow { threads: 8, .. }),
            "{kind:?}: expected a typed register-window error, got {err:?}"
        );
    }
}

#[test]
fn traced_runs_are_bit_identical_to_untraced() {
    sweep(|kind, fetch, threads, config, program| {
        let untraced = {
            let mut sim = Simulator::new(config.clone(), program);
            sim.run().expect("test-scale runs complete")
        };
        let mut tracer = Tracer::new(config.trace_shape(), 256);
        let mut sim = Simulator::new(config, program);
        let traced = sim.run_traced(&mut tracer).expect("traced runs complete");
        assert_eq!(
            untraced, traced,
            "{kind:?}/{fetch:?}/{threads}t: tracing must not perturb the machine"
        );
    });
}

#[test]
fn cpi_stack_sums_to_width_times_cycles() {
    sweep(|kind, fetch, threads, config, program| {
        let width = config.block_size as u64;
        let mut cpi = CpiStack::new(config.block_size as u32);
        let mut sim = Simulator::new(config, program);
        let stats = sim.run_traced(&mut cpi).expect("traced runs complete");
        let b = cpi.finish();
        let point = format!("{kind:?}/{fetch:?}/{threads}t");
        assert_eq!(b.cycles, stats.cycles, "{point}: cycle counts agree");
        assert_eq!(
            b.total_slots(),
            width * stats.cycles,
            "{point}: every slot of every cycle is attributed"
        );
        assert_eq!(
            b.committed,
            stats.committed_total(),
            "{point}: committed slots are the architectural instructions"
        );
        assert_eq!(
            b.slot_count(SlotCause::SquashDiscard),
            stats.squashed,
            "{point}: squash slots match the squash counter"
        );
        assert_eq!(
            b.slot_count(SlotCause::InFlight),
            0,
            "{point}: a drained machine leaves nothing in flight"
        );
    });
}

#[test]
fn occupancy_telemetry_samples_every_cycle() {
    let kind = WorkloadKind::Sieve;
    let w = workload(kind, Scale::Test);
    let program = w.build(4).unwrap();
    let config = SimConfig::default().with_threads(4);
    let mut tracer = Tracer::new(config.trace_shape(), 64);
    let mut sim = Simulator::new(config, &program);
    let stats = sim.run_traced(&mut tracer).unwrap();
    let occ = &tracer.occupancy;
    assert_eq!(occ.su_entries.samples(), stats.cycles);
    assert_eq!(occ.store_buffer.samples(), stats.cycles);
    assert!(
        (occ.su_entries.mean() - stats.avg_su_occupancy()).abs() < 1e-9,
        "telemetry mean equals the simulator's own occupancy average"
    );
    // The 64-record ring kept the tail of a >64-instruction run.
    assert!(tracer.lifecycle.dropped() > 0);
    assert_eq!(tracer.lifecycle.records().len(), 64);
}
