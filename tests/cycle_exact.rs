//! Cycle-exactness goldens: the full `SimStats` of every workload at test
//! scale, across fetch policies, commit policies, and cache organizations,
//! must match a committed golden file bit for bit.
//!
//! This is the contract that performance refactors of the scheduling-unit
//! hot paths must honor: not "roughly the same cycle count" but the exact
//! same machine state evolution, observed through every counter the
//! simulator keeps (cycles, per-thread commits, squashes, cache counters,
//! per-unit busy cycles, the issue histogram, ...).
//!
//! To regenerate after an *intentional* behavior change (e.g. a bugfix in
//! the pipeline itself), run:
//!
//! ```text
//! cargo test --test cycle_exact -- --ignored regenerate_cycle_exact_goldens
//! ```
//!
//! and commit the updated `tests/goldens/cycle_exact.txt` together with an
//! explanation of why the machine's behavior legitimately changed.

use std::fmt::Write as _;

use smt_superscalar::core::{CommitPolicy, FetchPolicy, SimConfig, Simulator};
use smt_superscalar::mem::CacheKind;
use smt_workloads::{workload, Scale, WorkloadKind};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/goldens/cycle_exact.txt");
const THREADS: usize = 4;

const FETCH: [FetchPolicy; 3] = [
    FetchPolicy::TrueRoundRobin,
    FetchPolicy::MaskedRoundRobin,
    FetchPolicy::ConditionalSwitch,
];
const COMMIT: [CommitPolicy; 2] = [CommitPolicy::Flexible, CommitPolicy::LowestOnly];
const CACHE: [CacheKind; 2] = [CacheKind::SetAssociative, CacheKind::DirectMapped];

/// One line per configuration: a stable key, then the *entire* `SimStats`
/// (the derived `Debug` rendering covers every field).
fn fingerprint() -> String {
    let mut out = String::new();
    for kind in WorkloadKind::ALL {
        let w = workload(kind, Scale::Test);
        let program = w.build(THREADS).expect("test-scale kernels fit");
        for fetch in FETCH {
            for commit in COMMIT {
                for cache in CACHE {
                    let config = SimConfig::default()
                        .with_threads(THREADS)
                        .with_fetch_policy(fetch)
                        .with_commit_policy(commit)
                        .with_cache_kind(cache);
                    let mut sim = Simulator::new(config, &program);
                    let stats = sim.run().expect("test-scale runs complete");
                    writeln!(out, "{}/{fetch:?}/{commit:?}/{cache:?} {stats:?}", w.name())
                        .expect("writing to a String cannot fail");
                }
            }
        }
    }
    out
}

#[test]
fn simstats_match_committed_goldens() {
    let expected = std::fs::read_to_string(GOLDEN_PATH).expect(
        "golden file missing — run `cargo test --test cycle_exact -- \
         --ignored regenerate_cycle_exact_goldens` once and commit it",
    );
    let actual = fingerprint();
    if expected == actual {
        return;
    }
    // Full-string assert on 132 long lines is unreadable; report the first
    // divergent line instead.
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        assert_eq!(
            e,
            a,
            "cycle-exactness violated at golden line {} (key `{}`)",
            i + 1,
            a.split_whitespace().next().unwrap_or("?"),
        );
    }
    panic!(
        "golden line count differs: expected {}, got {}",
        expected.lines().count(),
        actual.lines().count()
    );
}

#[test]
#[ignore = "regenerates the golden file; run explicitly after intentional behavior changes"]
fn regenerate_cycle_exact_goldens() {
    let dir = std::path::Path::new(GOLDEN_PATH)
        .parent()
        .expect("golden path has a parent");
    std::fs::create_dir_all(dir).expect("golden dir");
    std::fs::write(GOLDEN_PATH, fingerprint()).expect("write goldens");
}
