//! Cycle-exactness goldens: the full `SimStats` of every workload at test
//! scale, across fetch policies, commit policies, and cache organizations,
//! must match a committed golden file bit for bit.
//!
//! This is the contract that performance refactors of the scheduling-unit
//! hot paths must honor: not "roughly the same cycle count" but the exact
//! same machine state evolution, observed through every counter the
//! simulator keeps (cycles, per-thread commits, squashes, cache counters,
//! per-unit busy cycles, the issue histogram, ...).
//!
//! To regenerate after an *intentional* behavior change (e.g. a bugfix in
//! the pipeline itself), run:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test cycle_exact
//! ```
//!
//! and commit the updated `tests/goldens/cycle_exact.txt` together with an
//! explanation of why the machine's behavior legitimately changed.

mod support;

use std::fmt::Write as _;

use smt_superscalar::core::{CommitPolicy, FetchPolicy, SimConfig, Simulator};
use smt_superscalar::mem::CacheKind;
use smt_workloads::{workload, Scale, WorkloadKind};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/goldens/cycle_exact.txt");
const THREADS: usize = 4;

const FETCH: [FetchPolicy; 3] = [
    FetchPolicy::TrueRoundRobin,
    FetchPolicy::MaskedRoundRobin,
    FetchPolicy::ConditionalSwitch,
];
const COMMIT: [CommitPolicy; 2] = [CommitPolicy::Flexible, CommitPolicy::LowestOnly];
const CACHE: [CacheKind; 2] = [CacheKind::SetAssociative, CacheKind::DirectMapped];

/// One line per configuration: a stable key, then the *entire* `SimStats`
/// (the derived `Debug` rendering covers every field).
fn fingerprint() -> String {
    let mut out = String::new();
    for kind in WorkloadKind::ALL {
        let w = workload(kind, Scale::Test);
        let program = w.build(THREADS).expect("test-scale kernels fit");
        for fetch in FETCH {
            for commit in COMMIT {
                for cache in CACHE {
                    let config = SimConfig::default()
                        .with_threads(THREADS)
                        .with_fetch_policy(fetch)
                        .with_commit_policy(commit)
                        .with_cache_kind(cache);
                    let mut sim = Simulator::new(config, &program);
                    let stats = sim.run().expect("test-scale runs complete");
                    writeln!(out, "{}/{fetch:?}/{commit:?}/{cache:?} {stats:?}", w.name())
                        .expect("writing to a String cannot fail");
                }
            }
        }
    }
    out
}

#[test]
fn simstats_match_committed_goldens() {
    support::check_golden(GOLDEN_PATH, &fingerprint());
}
