//! End-to-end correctness: every benchmark, run on the cycle-accurate
//! simulator, must produce the reference memory image and commit exactly
//! the architectural instruction count.

use smt_superscalar::core::{SimConfig, Simulator};
use smt_superscalar::isa::interp::Interp;
use smt_superscalar::workloads::{suite, Scale};

#[test]
fn every_workload_is_correct_on_the_cycle_simulator() {
    for w in suite(Scale::Test) {
        for threads in [1usize, 4] {
            let program = w.build(threads).expect("kernel fits");
            let mut sim = Simulator::new(SimConfig::default().with_threads(threads), &program);
            let stats = sim
                .run()
                .unwrap_or_else(|e| panic!("{} × {threads}: {e}", w.name()));
            w.check(sim.memory().words())
                .unwrap_or_else(|e| panic!("{} × {threads}: {e}", w.name()));

            let mut interp = Interp::new(&program, threads);
            let ref_stats = interp.run().unwrap();
            assert_eq!(
                stats.committed_total(),
                ref_stats.total_retired(),
                "{} × {threads}: committed instruction count must be architectural",
                w.name()
            );
            assert_eq!(
                sim.reg_file(),
                interp.reg_file(),
                "{} × {threads}: register file mismatch",
                w.name()
            );
        }
    }
}

#[test]
fn six_threads_run_the_full_suite() {
    for w in suite(Scale::Test) {
        let program = w.build(6).expect("kernel fits the 6-thread window");
        let mut sim = Simulator::new(SimConfig::default().with_threads(6), &program);
        sim.run()
            .unwrap_or_else(|e| panic!("{} × 6: {e}", w.name()));
        w.check(sim.memory().words())
            .unwrap_or_else(|e| panic!("{} × 6: {e}", w.name()));
    }
}

#[test]
fn committed_counts_are_microarchitecture_independent() {
    // The committed instruction count is architectural: it must not change
    // with cache organization, SU depth, or commit policy.
    use smt_superscalar::core::CommitPolicy;
    use smt_superscalar::mem::CacheKind;

    let w = smt_superscalar::workloads::workload(
        smt_superscalar::workloads::WorkloadKind::Matrix,
        Scale::Test,
    );
    let program = w.build(4).unwrap();
    let baseline = {
        let mut sim = Simulator::new(SimConfig::default(), &program);
        sim.run().unwrap().committed_total()
    };
    let variants = [
        SimConfig::default().with_cache_kind(CacheKind::DirectMapped),
        SimConfig::default().with_su_depth(16),
        SimConfig::default().with_su_depth(64),
        SimConfig::default().with_commit_policy(CommitPolicy::LowestOnly),
        SimConfig::default().with_bypass(false),
    ];
    for config in variants {
        let mut sim = Simulator::new(config.clone(), &program);
        let got = sim.run().unwrap().committed_total();
        assert_eq!(
            got, baseline,
            "config {config:?} changed architectural work"
        );
        w.check(sim.memory().words()).unwrap();
    }
}
