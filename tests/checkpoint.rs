//! Checkpoint/restore equivalence: interrupting a run is unobservable.
//!
//! For every workload × fetch policy × thread count at test scale, the
//! machine is checkpointed at a pseudo-random mid-run cycle, serialized
//! through the wire format, restored into a fresh simulator, and run to
//! completion. The spliced run's *entire* `SimStats` and final memory
//! image must be bit-identical to an uninterrupted run — and the golden
//! file pins both halves, so a checkpoint bug and a behavior change are
//! distinguishable at review time.
//!
//! To regenerate after an intentional behavior change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test checkpoint
//! ```

mod support;

use std::fmt::Write as _;

use smt_superscalar::core::{FetchPolicy, SimConfig, SimError, Simulator};
use smt_testkit::Rng;
use smt_workloads::{workload, Scale, WorkloadKind};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/goldens/checkpoint.txt");

const FETCH: [FetchPolicy; 3] = [
    FetchPolicy::TrueRoundRobin,
    FetchPolicy::MaskedRoundRobin,
    FetchPolicy::ConditionalSwitch,
];
const THREADS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn interrupted_runs_are_bit_identical_to_uninterrupted() {
    let mut rng = Rng::new(0x5eed_c4ec);
    let mut golden = String::new();
    let mut skipped = Vec::new();
    for kind in WorkloadKind::ALL {
        let w = workload(kind, Scale::Test);
        for threads in THREADS {
            let Ok(program) = w.build(threads) else {
                // Register-hungry kernels outgrow the 16-register window of
                // an 8-thread partition; those points are legitimately
                // infeasible (asserted below), not silently dropped.
                skipped.push((kind, threads));
                continue;
            };
            for fetch in FETCH {
                let config = SimConfig::default()
                    .with_threads(threads)
                    .with_fetch_policy(fetch);

                let mut straight = Simulator::new(config.clone(), &program);
                let uninterrupted = straight.run().expect("test-scale runs complete");

                // Interrupt somewhere strictly inside the run (cycle 0 and
                // the final cycle are valid but degenerate).
                let k = 1 + rng.below(uninterrupted.cycles.max(2) - 1);
                let mut front = Simulator::new(config.clone(), &program);
                for _ in 0..k {
                    front.step().expect("prefix steps complete");
                }
                let wire = front.checkpoint().to_bytes();
                let snap = smt_superscalar::core::Snapshot::from_bytes(&wire)
                    .expect("wire format round-trips");
                let mut back = Simulator::restore(config, &program, &snap)
                    .expect("snapshot matches its own (config, program)");
                let resumed = back.run().expect("resumed runs complete");

                let point = format!("{}/{fetch:?}/{threads}t@{k}", w.name());
                assert_eq!(
                    uninterrupted, resumed,
                    "{point}: a checkpoint/restore splice must not perturb the statistics"
                );
                assert_eq!(
                    straight.memory().words(),
                    back.memory().words(),
                    "{point}: final memory images must be bit-identical"
                );
                assert_eq!(
                    straight.reg_file(),
                    back.reg_file(),
                    "{point}: final register files must be bit-identical"
                );
                w.check(back.memory().words())
                    .unwrap_or_else(|e| panic!("{point}: wrong answer after resume: {e}"));
                writeln!(golden, "{point} {resumed:?}").expect("writing to a String cannot fail");
            }
        }
    }
    assert!(
        skipped.iter().all(|&(_, threads)| threads == 8),
        "kernels only outgrow the register window at 8 threads: {skipped:?}"
    );
    support::check_golden(GOLDEN_PATH, &golden);
}

#[test]
fn oversubscribed_thread_count_is_a_typed_error_not_a_panic() {
    // A kernel that fits a 4-thread partition but not an 8-thread one: the
    // constructor must refuse with the typed register-window error (which
    // the sweep engine maps to an `infeasible` cell), never panic.
    let needy = WorkloadKind::ALL
        .into_iter()
        .find(|&kind| workload(kind, Scale::Test).build(8).is_err())
        .expect("some kernel outgrows the 8-thread window");
    let program = workload(needy, Scale::Test)
        .build(4)
        .expect("the same kernel fits 4 threads");
    let err = Simulator::try_new(SimConfig::default().with_threads(8), &program)
        .expect_err("16-register window cannot hold the kernel");
    match err {
        SimError::RegisterWindow {
            window, threads, ..
        } => {
            assert_eq!(threads, 8);
            assert_eq!(window, 16);
        }
        other => panic!("expected RegisterWindow, got {other:?}"),
    }
}
