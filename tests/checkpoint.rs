//! Checkpoint/restore equivalence: interrupting a run is unobservable.
//!
//! For every workload × fetch policy × thread count at test scale, the
//! machine is checkpointed at a pseudo-random mid-run cycle, serialized
//! through the wire format, restored into a fresh simulator, and run to
//! completion. The spliced run's *entire* `SimStats` and final memory
//! image must be bit-identical to an uninterrupted run — and the golden
//! file pins both halves, so a checkpoint bug and a behavior change are
//! distinguishable at review time.
//!
//! To regenerate after an intentional behavior change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test checkpoint
//! ```

mod support;

use std::fmt::Write as _;

use smt_superscalar::core::{FetchPolicy, PredictorKind, SimConfig, SimError, Simulator};
use smt_testkit::Rng;
use smt_workloads::{workload, Scale, WorkloadKind};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/goldens/checkpoint.txt");
const FRONTEND_GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/goldens/checkpoint_frontend.txt"
);

const FETCH: [FetchPolicy; 3] = [
    FetchPolicy::TrueRoundRobin,
    FetchPolicy::MaskedRoundRobin,
    FetchPolicy::ConditionalSwitch,
];
const THREADS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn interrupted_runs_are_bit_identical_to_uninterrupted() {
    let mut rng = Rng::new(0x5eed_c4ec);
    let mut golden = String::new();
    let mut skipped = Vec::new();
    for kind in WorkloadKind::ALL {
        let w = workload(kind, Scale::Test);
        for threads in THREADS {
            let Ok(program) = w.build(threads) else {
                // Register-hungry kernels outgrow the 16-register window of
                // an 8-thread partition; those points are legitimately
                // infeasible (asserted below), not silently dropped.
                skipped.push((kind, threads));
                continue;
            };
            for fetch in FETCH {
                let config = SimConfig::default()
                    .with_threads(threads)
                    .with_fetch_policy(fetch);

                let mut straight = Simulator::new(config.clone(), &program);
                let uninterrupted = straight.run().expect("test-scale runs complete");

                // Interrupt somewhere strictly inside the run (cycle 0 and
                // the final cycle are valid but degenerate).
                let k = 1 + rng.below(uninterrupted.cycles.max(2) - 1);
                let mut front = Simulator::new(config.clone(), &program);
                for _ in 0..k {
                    front.step().expect("prefix steps complete");
                }
                let wire = front.checkpoint().to_bytes();
                let snap = smt_superscalar::core::Snapshot::from_bytes(&wire)
                    .expect("wire format round-trips");
                let mut back = Simulator::restore(config, &program, &snap)
                    .expect("snapshot matches its own (config, program)");
                let resumed = back.run().expect("resumed runs complete");

                let point = format!("{}/{fetch:?}/{threads}t@{k}", w.name());
                assert_eq!(
                    uninterrupted, resumed,
                    "{point}: a checkpoint/restore splice must not perturb the statistics"
                );
                assert_eq!(
                    straight.memory().words(),
                    back.memory().words(),
                    "{point}: final memory images must be bit-identical"
                );
                assert_eq!(
                    straight.reg_file(),
                    back.reg_file(),
                    "{point}: final register files must be bit-identical"
                );
                w.check(back.memory().words())
                    .unwrap_or_else(|e| panic!("{point}: wrong answer after resume: {e}"));
                writeln!(golden, "{point} {resumed:?}").expect("writing to a String cannot fail");
            }
        }
    }
    assert!(
        skipped.iter().all(|&(_, threads)| threads == 8),
        "kernels only outgrow the register window at 8 threads: {skipped:?}"
    );
    support::check_golden(GOLDEN_PATH, &golden);
}

/// The front-end design space added after the paper grid: the ICOUNT
/// policy, each alternative predictor family, and the two-port/wide shape.
/// Same splice protocol as the main matrix, own golden file — so the
/// original golden stays byte-identical row for row.
#[test]
fn front_end_splices_are_bit_identical() {
    type MakeConfig = fn(usize) -> SimConfig;
    let variants: [(&str, MakeConfig); 4] = [
        ("Icount", |t| {
            SimConfig::default()
                .with_threads(t)
                .with_fetch_policy(FetchPolicy::Icount)
        }),
        ("Gshare", |t| {
            SimConfig::default()
                .with_threads(t)
                .with_predictor(PredictorKind::Gshare)
        }),
        ("PartitionedBtb", |t| {
            SimConfig::default()
                .with_threads(t)
                .with_predictor(PredictorKind::PartitionedBtb)
        }),
        ("Icount+2x8", |t| {
            SimConfig::default()
                .with_threads(t)
                .with_fetch_policy(FetchPolicy::Icount)
                .with_fetch_threads(2.min(t))
                .with_fetch_width(8)
        }),
    ];
    let mut rng = Rng::new(0xf407_e4d5);
    let mut golden = String::new();
    for kind in WorkloadKind::ALL {
        let w = workload(kind, Scale::Test);
        for threads in THREADS {
            let Ok(program) = w.build(threads) else {
                continue; // infeasibility is pinned by the main matrix
            };
            for (name, make_config) in variants {
                let config = make_config(threads);

                let mut straight = Simulator::new(config.clone(), &program);
                let uninterrupted = straight.run().expect("test-scale runs complete");

                let k = 1 + rng.below(uninterrupted.cycles.max(2) - 1);
                let mut front = Simulator::new(config.clone(), &program);
                for _ in 0..k {
                    front.step().expect("prefix steps complete");
                }
                let wire = front.checkpoint().to_bytes();
                let snap = smt_superscalar::core::Snapshot::from_bytes(&wire)
                    .expect("wire format round-trips");
                let mut back = Simulator::restore(config, &program, &snap)
                    .expect("snapshot matches its own (config, program)");
                let resumed = back.run().expect("resumed runs complete");

                let point = format!("{}/{name}/{threads}t@{k}", w.name());
                assert_eq!(
                    uninterrupted, resumed,
                    "{point}: splice perturbed the statistics"
                );
                assert_eq!(
                    straight.memory().words(),
                    back.memory().words(),
                    "{point}: final memory images must be bit-identical"
                );
                w.check(back.memory().words())
                    .unwrap_or_else(|e| panic!("{point}: wrong answer after resume: {e}"));
                writeln!(golden, "{point} {resumed:?}").expect("writing to a String cannot fail");
            }
        }
    }
    support::check_golden(FRONTEND_GOLDEN_PATH, &golden);
}

/// Satellite hardening pass: snapshots taken on *every* cycle of runs that
/// exercise the per-thread fetch state — a masked thread (MaskedRR), an
/// armed-but-unfired conditional switch (the window between trigger decode
/// and the switch firing), and a `WAIT` suspension with its resume PC —
/// must all restore into a machine whose completion is bit-identical to
/// never having stopped. Coverage of each adversarial state is asserted,
/// not hoped for.
#[test]
fn every_cycle_splices_preserve_per_thread_fetch_state() {
    use smt_superscalar::isa::builder::ProgramBuilder;

    // Two threads; each runs a dependent div chain (commit-blocks → MaskedRR
    // masks; divs are ConditionalSwitch triggers), then a counting barrier
    // (POST + WAIT → suspension with a resume PC), then one more div.
    let mut b = ProgramBuilder::new();
    let out = b.alloc_zeroed(8 * 8);
    let sync = b.alloc_zeroed(8);
    let [v, d, syn, obr, s0] = b.regs();
    b.li(obr, out as i64);
    b.slli(s0, b.tid_reg(), 3);
    b.add(obr, obr, s0);
    b.li(v, 1_000_000_007);
    b.li(d, 3);
    for _ in 0..6 {
        b.div(v, v, d);
        b.addi(v, v, 17);
    }
    b.li(syn, sync as i64);
    b.post(syn);
    b.wait(syn, b.nthreads_reg());
    b.div(v, v, d);
    b.sd(v, obr, 0);
    b.halt();
    let program = b.build(2).expect("program fits two threads");

    let variants: [(&str, FetchPolicy); 3] = [
        ("mrr", FetchPolicy::MaskedRoundRobin),
        ("cs", FetchPolicy::ConditionalSwitch),
        ("ic", FetchPolicy::Icount),
    ];
    for (name, policy) in variants {
        let config = SimConfig::default()
            .with_threads(2)
            .with_fetch_policy(policy);

        let mut straight = Simulator::new(config.clone(), &program);
        let reference = straight.run().expect("run completes");

        let mut walker = Simulator::new(config.clone(), &program);
        let (mut saw_masked, mut saw_armed, mut saw_suspended) = (false, false, false);
        while !walker.finished() {
            assert!(walker.cycle() < 100_000, "{name}: watchdog");
            walker.step().expect("no faults in this program");
            for t in 0..2 {
                saw_masked |= walker.fetch_unit().is_masked(t);
                saw_armed |= walker.fetch_unit().has_switch_pending(t);
                saw_suspended |= walker.fetch_unit().is_suspended(t);
            }
            let snap = walker.checkpoint();
            let mut restored =
                Simulator::restore(config.clone(), &program, &snap).expect("snapshot restores");
            assert_eq!(
                restored.checkpoint().to_bytes(),
                snap.to_bytes(),
                "{name}@{}: re-snapshot of a restored machine differs",
                walker.cycle()
            );
            let resumed = restored.run().expect("resumed run completes");
            assert_eq!(
                resumed,
                reference,
                "{name}@{}: splice perturbed the statistics",
                walker.cycle()
            );
            assert_eq!(
                restored.memory().words(),
                straight.memory().words(),
                "{name}@{}: splice perturbed memory",
                walker.cycle()
            );
        }
        assert!(
            saw_suspended,
            "{name}: the barrier must suspend a thread at least one cycle"
        );
        if policy == FetchPolicy::MaskedRoundRobin {
            assert!(saw_masked, "mrr: the div chain must commit-block and mask");
        }
        if policy == FetchPolicy::ConditionalSwitch {
            assert!(
                saw_armed,
                "cs: some snapshot must land between trigger decode and the switch firing"
            );
        }
    }
}

#[test]
fn oversubscribed_thread_count_is_a_typed_error_not_a_panic() {
    // A kernel that fits a 4-thread partition but not an 8-thread one: the
    // constructor must refuse with the typed register-window error (which
    // the sweep engine maps to an `infeasible` cell), never panic.
    let needy = WorkloadKind::ALL
        .into_iter()
        .find(|&kind| workload(kind, Scale::Test).build(8).is_err())
        .expect("some kernel outgrows the 8-thread window");
    let program = workload(needy, Scale::Test)
        .build(4)
        .expect("the same kernel fits 4 threads");
    let err = Simulator::try_new(SimConfig::default().with_threads(8), &program)
        .expect_err("16-register window cannot hold the kernel");
    match err {
        SimError::RegisterWindow {
            window, threads, ..
        } => {
            assert_eq!(threads, 8);
            assert_eq!(window, 16);
        }
        other => panic!("expected RegisterWindow, got {other:?}"),
    }
}
