//! Simulator-level fetch-policy tests: drive `Simulator::step()` against
//! small hand-built programs and observe the fetch unit's policy state
//! through the public accessors each cycle.
//!
//! The select()-level unit tests live in `crates/core/src/fetch.rs`; these
//! check that the policies actually engage end-to-end — MaskedRR masks the
//! commit-blocked thread and clears the mask, ConditionalSwitch really
//! rotates the active thread on long-latency triggers.

use smt_superscalar::core::{FetchPolicy, SimConfig, Simulator};
use smt_superscalar::isa::builder::ProgramBuilder;
use smt_superscalar::isa::interp::Interp;
use smt_superscalar::isa::Program;

fn assert_matches_interp(sim: &Simulator, program: &Program, threads: usize) {
    let mut interp = Interp::new(program, threads);
    interp.run().expect("reference completes");
    assert_eq!(sim.memory().words(), interp.mem_words(), "memory diverged");
    assert_eq!(sim.reg_file(), interp.reg_file(), "registers diverged");
}

/// A long dependent fdiv chain: each result feeds the next divide, so the
/// bottom scheduling-unit block stays commit-blocked for many cycles.
fn fdiv_chain_program() -> Program {
    let mut b = ProgramBuilder::new();
    let out = b.alloc_zeroed(8);
    let [a, d, i, obr] = b.regs();
    b.li(obr, out as i64);
    b.lif(a, 1.0e12);
    b.lif(d, 1.5);
    for _ in 0..12 {
        b.fdiv(a, a, d);
    }
    b.f2i(i, a);
    b.sd(i, obr, 0);
    b.halt();
    b.build(2).unwrap()
}

#[test]
fn masked_rr_masks_the_commit_blocked_thread_and_clears() {
    let p = fdiv_chain_program();
    let config = SimConfig::default()
        .with_threads(2)
        .with_fetch_policy(FetchPolicy::MaskedRoundRobin);
    let mut sim = Simulator::new(config, &p);
    let mut masked_cycles = 0usize;
    let mut cycles = 0usize;
    while !sim.finished() {
        assert!(cycles < 100_000, "watchdog: MaskedRR run did not finish");
        let masked: Vec<usize> = (0..2).filter(|&t| sim.fetch_unit().is_masked(t)).collect();
        assert!(
            masked.len() <= 1,
            "only the bottom-block owner may be masked, got {masked:?}"
        );
        masked_cycles += usize::from(!masked.is_empty());
        sim.step().expect("no faults in this program");
        cycles += 1;
    }
    assert!(
        masked_cycles > 0,
        "a dependent fdiv chain must commit-block and mask its thread"
    );
    assert!(
        (0..2).all(|t| !sim.fetch_unit().is_masked(t)),
        "mask must clear once the scheduling unit drains"
    );
    assert_matches_interp(&sim, &p, 2);

    // Control: plain round-robin tracks the same commit-block state but
    // ignores it when selecting, and still reaches the same architecture.
    let config = SimConfig::default()
        .with_threads(2)
        .with_fetch_policy(FetchPolicy::TrueRoundRobin);
    let mut sim = Simulator::new(config, &p);
    let mut cycles = 0usize;
    while !sim.finished() {
        assert!(cycles < 100_000, "watchdog: TrueRR run did not finish");
        sim.step().expect("no faults in this program");
        cycles += 1;
    }
    assert_matches_interp(&sim, &p, 2);
}

#[test]
fn cond_switch_rotates_the_active_thread_on_div_triggers() {
    // Integer divides are switch triggers; a loop of dependent divides gives
    // ConditionalSwitch repeated reasons to hand fetch to the sibling.
    let mut b = ProgramBuilder::new();
    let out = b.alloc_zeroed(8);
    let [v, d, i, limit, obr] = b.regs();
    b.li(obr, out as i64);
    b.li(v, 1_000_000_007);
    b.li(d, 3);
    b.li(i, 0);
    b.li(limit, 8);
    let top = b.label();
    b.bind(top);
    b.div(v, v, d);
    b.addi(v, v, 17);
    b.addi(i, i, 1);
    b.blt(i, limit, top);
    b.sd(v, obr, 0);
    b.halt();
    let p = b.build(2).unwrap();

    let config = SimConfig::default()
        .with_threads(2)
        .with_fetch_policy(FetchPolicy::ConditionalSwitch);
    let mut sim = Simulator::new(config, &p);
    let mut switches = 0usize;
    let mut last = sim.fetch_unit().active_thread();
    let mut saw_pending = false;
    let mut cycles = 0usize;
    while !sim.finished() {
        assert!(cycles < 100_000, "watchdog: CondSwitch run did not finish");
        let active = sim.fetch_unit().active_thread();
        switches += usize::from(active != last);
        saw_pending |= (0..2).any(|t| sim.fetch_unit().has_switch_pending(t));
        last = active;
        sim.step().expect("no faults in this program");
        cycles += 1;
    }
    assert!(
        switches >= 2,
        "divide triggers must rotate fetch between threads, saw {switches} switches"
    );
    assert_matches_interp(&sim, &p, 2);
    // `saw_pending` may or may not fire depending on whether a switch is
    // ever deferred; it must at least be consistent with the final state.
    if saw_pending {
        assert!(switches >= 1);
    }
}
