//! Simulator-level fetch-policy tests: drive `Simulator::step()` against
//! small hand-built programs and observe the fetch unit's policy state
//! through the public accessors each cycle.
//!
//! The select()-level unit tests live in `crates/core/src/fetch.rs`; these
//! check that the policies actually engage end-to-end — MaskedRR masks the
//! commit-blocked thread and clears the mask, ConditionalSwitch really
//! rotates the active thread on long-latency triggers.

use smt_superscalar::core::{FetchPolicy, SimConfig, Simulator};
use smt_superscalar::isa::builder::ProgramBuilder;
use smt_superscalar::isa::interp::Interp;
use smt_superscalar::isa::Program;

fn assert_matches_interp(sim: &Simulator, program: &Program, threads: usize) {
    let mut interp = Interp::new(program, threads);
    interp.run().expect("reference completes");
    assert_eq!(sim.memory().words(), interp.mem_words(), "memory diverged");
    assert_eq!(sim.reg_file(), interp.reg_file(), "registers diverged");
}

/// A long dependent fdiv chain: each result feeds the next divide, so the
/// bottom scheduling-unit block stays commit-blocked for many cycles.
fn fdiv_chain_program() -> Program {
    let mut b = ProgramBuilder::new();
    let out = b.alloc_zeroed(8);
    let [a, d, i, obr] = b.regs();
    b.li(obr, out as i64);
    b.lif(a, 1.0e12);
    b.lif(d, 1.5);
    for _ in 0..12 {
        b.fdiv(a, a, d);
    }
    b.f2i(i, a);
    b.sd(i, obr, 0);
    b.halt();
    b.build(2).unwrap()
}

#[test]
fn masked_rr_masks_the_commit_blocked_thread_and_clears() {
    let p = fdiv_chain_program();
    let config = SimConfig::default()
        .with_threads(2)
        .with_fetch_policy(FetchPolicy::MaskedRoundRobin);
    let mut sim = Simulator::new(config, &p);
    let mut masked_cycles = 0usize;
    let mut cycles = 0usize;
    while !sim.finished() {
        assert!(cycles < 100_000, "watchdog: MaskedRR run did not finish");
        let masked: Vec<usize> = (0..2).filter(|&t| sim.fetch_unit().is_masked(t)).collect();
        assert!(
            masked.len() <= 1,
            "only the bottom-block owner may be masked, got {masked:?}"
        );
        masked_cycles += usize::from(!masked.is_empty());
        sim.step().expect("no faults in this program");
        cycles += 1;
    }
    assert!(
        masked_cycles > 0,
        "a dependent fdiv chain must commit-block and mask its thread"
    );
    assert!(
        (0..2).all(|t| !sim.fetch_unit().is_masked(t)),
        "mask must clear once the scheduling unit drains"
    );
    assert_matches_interp(&sim, &p, 2);

    // Control: plain round-robin tracks the same commit-block state but
    // ignores it when selecting, and still reaches the same architecture.
    let config = SimConfig::default()
        .with_threads(2)
        .with_fetch_policy(FetchPolicy::TrueRoundRobin);
    let mut sim = Simulator::new(config, &p);
    let mut cycles = 0usize;
    while !sim.finished() {
        assert!(cycles < 100_000, "watchdog: TrueRR run did not finish");
        sim.step().expect("no faults in this program");
        cycles += 1;
    }
    assert_matches_interp(&sim, &p, 2);
}

#[test]
fn cond_switch_rotates_the_active_thread_on_div_triggers() {
    // Integer divides are switch triggers; a loop of dependent divides gives
    // ConditionalSwitch repeated reasons to hand fetch to the sibling.
    let mut b = ProgramBuilder::new();
    let out = b.alloc_zeroed(8);
    let [v, d, i, limit, obr] = b.regs();
    b.li(obr, out as i64);
    b.li(v, 1_000_000_007);
    b.li(d, 3);
    b.li(i, 0);
    b.li(limit, 8);
    let top = b.label();
    b.bind(top);
    b.div(v, v, d);
    b.addi(v, v, 17);
    b.addi(i, i, 1);
    b.blt(i, limit, top);
    b.sd(v, obr, 0);
    b.halt();
    let p = b.build(2).unwrap();

    let config = SimConfig::default()
        .with_threads(2)
        .with_fetch_policy(FetchPolicy::ConditionalSwitch);
    let mut sim = Simulator::new(config, &p);
    let mut switches = 0usize;
    let mut last = sim.fetch_unit().active_thread();
    let mut saw_pending = false;
    let mut cycles = 0usize;
    while !sim.finished() {
        assert!(cycles < 100_000, "watchdog: CondSwitch run did not finish");
        let active = sim.fetch_unit().active_thread();
        switches += usize::from(active != last);
        saw_pending |= (0..2).any(|t| sim.fetch_unit().has_switch_pending(t));
        last = active;
        sim.step().expect("no faults in this program");
        cycles += 1;
    }
    assert!(
        switches >= 2,
        "divide triggers must rotate fetch between threads, saw {switches} switches"
    );
    assert_matches_interp(&sim, &p, 2);
    // `saw_pending` may or may not fire depending on whether a switch is
    // ever deferred; it must at least be consistent with the final state.
    if saw_pending {
        assert!(switches >= 1);
    }
}

/// Thread 0 runs a long dependent fdiv chain (clogs the scheduling unit);
/// every other thread runs a short ALU loop. Each thread stores its result
/// to a private word so the interpreter check stays exact.
fn heavy_light_program(threads: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let out = b.alloc_zeroed(8 * 8);
    let [a, d, i, limit, obr, zero] = b.regs();
    b.li(obr, out as i64);
    b.slli(a, b.tid_reg(), 3);
    b.add(obr, obr, a);
    b.li(zero, 0);
    let light = b.label();
    let end = b.label();
    b.bne(b.tid_reg(), zero, light);
    // Heavy: a dependent fdiv chain.
    b.lif(a, 1.0e12);
    b.lif(d, 1.5);
    for _ in 0..16 {
        b.fdiv(a, a, d);
    }
    b.f2i(i, a);
    b.sd(i, obr, 0);
    b.j(end);
    // Light: a short integer loop.
    b.bind(light);
    b.li(a, 0);
    b.li(i, 0);
    b.li(limit, 6);
    let top = b.label();
    b.bind(top);
    b.addi(a, a, 5);
    b.addi(i, i, 1);
    b.blt(i, limit, top);
    b.sd(a, obr, 0);
    b.bind(end);
    b.halt();
    b.build(threads).unwrap()
}

/// Cycle at which the light thread (tid 1) fully retires under `config`,
/// plus the finished machine for architectural checks.
fn light_retire_cycle(config: SimConfig, p: &Program) -> (u64, Simulator<'_>) {
    let mut sim = Simulator::new(config, p);
    let mut retired_at = None;
    while !sim.finished() {
        assert!(sim.cycle() < 100_000, "watchdog: run did not finish");
        sim.step().expect("no faults in this program");
        if retired_at.is_none() && sim.fetch_unit().is_retired(1) {
            retired_at = Some(sim.cycle());
        }
    }
    (retired_at.expect("thread 1 retires"), sim)
}

#[test]
fn icount_steers_fetch_toward_the_lighter_thread() {
    let p = heavy_light_program(2);
    let cfg = |policy| {
        SimConfig::default()
            .with_threads(2)
            .with_fetch_policy(policy)
    };
    let (ic_cycle, ic_sim) = light_retire_cycle(cfg(FetchPolicy::Icount), &p);
    let (rr_cycle, rr_sim) = light_retire_cycle(cfg(FetchPolicy::TrueRoundRobin), &p);
    assert_matches_interp(&ic_sim, &p, 2);
    assert_matches_interp(&rr_sim, &p, 2);
    // The heavy thread's fdiv chain piles up in the scheduling unit, so the
    // occupancy signal diverts fetch slots to the light thread — it must
    // retire no later than under occupancy-blind round-robin.
    assert!(
        ic_cycle <= rr_cycle,
        "ICOUNT retired the light thread at {ic_cycle}, TrueRR at {rr_cycle}"
    );
}

#[test]
fn two_ports_and_wide_blocks_match_the_reference() {
    let p = heavy_light_program(4);
    let narrow = SimConfig::default().with_threads(4);
    let wide = SimConfig::default()
        .with_threads(4)
        .with_fetch_threads(2)
        .with_fetch_width(8);
    let mut narrow_sim = Simulator::new(narrow, &p);
    let narrow_stats = narrow_sim.run().expect("narrow run completes");
    let mut wide_sim = Simulator::new(wide.clone(), &p);
    let wide_stats = wide_sim.run().expect("wide run completes");
    assert_matches_interp(&narrow_sim, &p, 4);
    assert_matches_interp(&wide_sim, &p, 4);
    // Doubling fetch bandwidth can only help a fetch-starved 4-thread mix.
    assert!(
        wide_stats.cycles <= narrow_stats.cycles,
        "two-port 8-wide fetch took {} cycles, one-port 4-wide took {}",
        wide_stats.cycles,
        narrow_stats.cycles
    );

    // The wide shape composes with every policy and predictor family.
    for policy in [
        FetchPolicy::MaskedRoundRobin,
        FetchPolicy::ConditionalSwitch,
        FetchPolicy::Icount,
    ] {
        let mut sim = Simulator::new(wide.clone().with_fetch_policy(policy), &p);
        sim.run().expect("wide run completes");
        assert_matches_interp(&sim, &p, 4);
    }
}
