//! Differential property tests: random (but structured and terminating)
//! programs must produce identical architectural state on the functional
//! interpreter and on the cycle-accurate simulator, under randomly drawn
//! hardware configurations.
//!
//! This is the strongest correctness net in the repository: any lost
//! writeback, stale forwarding, bad squash, mis-renamed operand, or commit
//! reordering shows up as a register-file or memory divergence.

use proptest::prelude::*;

use smt_superscalar::core::{CommitPolicy, FetchPolicy, RenamingMode, SimConfig, Simulator};
use smt_superscalar::isa::builder::ProgramBuilder;
use smt_superscalar::isa::interp::Interp;
use smt_superscalar::isa::{Opcode, Program, Reg};
use smt_superscalar::mem::CacheKind;

/// Per-thread private slots (each 8 bytes) for random loads/stores.
const SLOTS: u64 = 8;
const MAX_THREADS: u64 = 6;

/// One statement of a random kernel.
#[derive(Clone, Debug)]
enum Stmt {
    /// Three-register computation.
    Alu(Opcode, u8, u8, u8),
    /// Register-immediate computation.
    AluImm(Opcode, u8, u8, i32),
    /// Load from a private slot.
    Load(u8, u8),
    /// Store to a private slot.
    Store(u8, u8),
    /// Bounded counted loop.
    Loop(u8, Vec<Stmt>),
}

/// Value registers available to random code: r4..r11.
const VREGS: u8 = 8;
const VBASE: u8 = 4;

fn r3_op() -> impl Strategy<Value = Opcode> {
    prop::sample::select(vec![
        Opcode::Add,
        Opcode::Sub,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Sll,
        Opcode::Srl,
        Opcode::Sra,
        Opcode::Slt,
        Opcode::Sltu,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Rem,
        Opcode::FAdd,
        Opcode::FSub,
        Opcode::FMul,
        Opcode::FDiv,
        Opcode::FLt,
    ])
}

fn i2_op() -> impl Strategy<Value = Opcode> {
    prop::sample::select(vec![
        Opcode::Addi,
        Opcode::Andi,
        Opcode::Ori,
        Opcode::Xori,
        Opcode::Slli,
        Opcode::Srli,
        Opcode::Srai,
        Opcode::Slti,
    ])
}

fn leaf_stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (r3_op(), 0..VREGS, 0..VREGS, 0..VREGS)
            .prop_map(|(op, d, a, b)| Stmt::Alu(op, d, a, b)),
        (i2_op(), 0..VREGS, 0..VREGS, -64..64i32)
            .prop_map(|(op, d, a, i)| Stmt::AluImm(op, d, a, i)),
        (0..VREGS, 0..SLOTS as u8).prop_map(|(d, s)| Stmt::Load(d, s)),
        (0..VREGS, 0..SLOTS as u8).prop_map(|(v, s)| Stmt::Store(v, s)),
    ]
}

fn stmt(depth: u32) -> BoxedStrategy<Stmt> {
    if depth == 0 {
        leaf_stmt().boxed()
    } else {
        prop_oneof![
            4 => leaf_stmt(),
            1 => (1..4u8, prop::collection::vec(stmt(depth - 1), 1..5))
                .prop_map(|(n, body)| Stmt::Loop(n, body)),
        ]
        .boxed()
    }
}

fn program_spec() -> impl Strategy<Value = (Vec<i64>, Vec<Stmt>)> {
    (
        prop::collection::vec(-1000i64..1000, VREGS as usize),
        prop::collection::vec(stmt(2), 1..20),
    )
}

/// Lowers a spec into a real program. Register map: r2 = private base
/// address, r3 = loop-counter stack (reused per nest level via extra
/// registers r12..r14), r4..r11 = values.
fn lower(seeds: &[i64], stmts: &[Stmt]) -> Program {
    let mut b = ProgramBuilder::new();
    // Reserve the registers the generator refers to by number.
    for _ in 0..(2 + VREGS + 3) {
        let _ = b.reg();
    }
    let base = Reg::new(2);
    let vreg = |i: u8| Reg::new(VBASE + i);
    // Private region: DATA_BASE + tid * SLOTS*8. The data segment spans
    // MAX_THREADS regions so any thread count works.
    let region = b.alloc_zeroed(MAX_THREADS * SLOTS * 8);
    let scratch = Reg::new(3);
    b.slli(base, b.tid_reg(), (SLOTS * 8).trailing_zeros() as i32);
    b.li(scratch, region as i64);
    b.add(base, base, scratch);
    for (i, &seed) in seeds.iter().enumerate() {
        b.li(vreg(i as u8), seed);
    }
    fn emit(b: &mut ProgramBuilder, stmts: &[Stmt], depth: u8) {
        let base = Reg::new(2);
        let vreg = |i: u8| Reg::new(VBASE + i);
        for s in stmts {
            match *s {
                Stmt::Alu(op, d, a, bb) => {
                    b.push(smt_superscalar::isa::Instruction::r3(op, vreg(d), vreg(a), vreg(bb)));
                }
                Stmt::AluImm(op, d, a, imm) => {
                    b.push(smt_superscalar::isa::Instruction::i2(op, vreg(d), vreg(a), imm));
                }
                Stmt::Load(d, slot) => b.ld(vreg(d), base, i32::from(slot) * 8),
                Stmt::Store(v, slot) => b.sd(vreg(v), base, i32::from(slot) * 8),
                Stmt::Loop(n, ref body) => {
                    let counter = Reg::new(2 + 2 + VREGS + depth); // r12..r14
                    b.li(counter, i64::from(n));
                    let top = b.label();
                    b.bind(top);
                    emit(b, body, depth + 1);
                    b.addi(counter, counter, -1);
                    let zero_probe = counter; // counter > 0 check via blt on 0
                    // branch while counter > 0: use slti into... simpler:
                    // compare against an always-zero? We keep a dedicated
                    // zero in no register; instead loop down to 0 with bne
                    // against itself is impossible — so count down and use
                    // `blt 0 < counter` via subtraction: emit `blt` with
                    // tid? Cleanest: branch if counter != sentinel, where
                    // sentinel register r15... we instead use bge/blt with
                    // an immediate-free idiom: slti tmp,counter,1 …
                    // To stay simple: loop while counter >= 1 using blt of
                    // a constant-zero register is required — allocate one
                    // lazily below.
                    let _ = zero_probe;
                    b.bge(counter, Reg::new(15), top); // r15 holds 1 (see below)
                }
            }
        }
    }
    // r15 = 1 — loop lower bound (bge counter, 1 ⇔ counter >= 1).
    let one = b.reg();
    debug_assert_eq!(one, Reg::new(15));
    b.li(one, 1);
    emit(&mut b, stmts, 0);
    b.halt();
    b.build(6).expect("random kernel fits the 6-thread window")
}

fn config_strategy() -> impl Strategy<Value = SimConfig> {
    (
        1..=4usize,
        prop::sample::select(vec![
            FetchPolicy::TrueRoundRobin,
            FetchPolicy::MaskedRoundRobin,
            FetchPolicy::ConditionalSwitch,
        ]),
        prop::sample::select(vec![CommitPolicy::Flexible, CommitPolicy::LowestOnly]),
        prop::sample::select(vec![CacheKind::SetAssociative, CacheKind::DirectMapped]),
        prop::sample::select(vec![16usize, 32, 64]),
        any::<bool>(),
        prop::sample::select(vec![RenamingMode::Full, RenamingMode::Scoreboard]),
    )
        .prop_map(|(threads, fetch, commit, cache, su, bypass, renaming)| {
            SimConfig::default()
                .with_threads(threads)
                .with_fetch_policy(fetch)
                .with_commit_policy(commit)
                .with_cache_kind(cache)
                .with_su_depth(su)
                .with_bypass(bypass)
                .with_renaming(renaming)
                .with_max_cycles(5_000_000)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn cycle_simulator_matches_functional_interpreter(
        (seeds, stmts) in program_spec(),
        config in config_strategy(),
    ) {
        let program = lower(&seeds, &stmts);
        let threads = config.threads;

        let mut interp = Interp::new(&program, threads);
        interp.run().expect("random programs terminate");

        let mut sim = Simulator::new(config, &program);
        let stats = sim.run().expect("cycle simulator terminates");

        prop_assert_eq!(sim.memory().words(), interp.mem_words(), "memory diverged");
        prop_assert_eq!(sim.reg_file(), interp.reg_file(), "registers diverged");
        prop_assert!(stats.cycles > 0);
    }
}
