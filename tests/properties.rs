//! Differential property tests: random (but structured and terminating)
//! programs must produce identical architectural state on the functional
//! interpreter and on the cycle-accurate simulator, under randomly drawn
//! hardware configurations.
//!
//! This is the strongest correctness net in the repository: any lost
//! writeback, stale forwarding, bad squash, mis-renamed operand, or commit
//! reordering shows up as a register-file or memory divergence. Randomness
//! comes from the repo-local deterministic generator (`smt-testkit`); each
//! failure reproduces from the seed printed by the case runner.

use smt_superscalar::core::{
    CommitPolicy, FetchPolicy, PredictorKind, RenamingMode, SimConfig, Simulator,
};
use smt_superscalar::isa::builder::ProgramBuilder;
use smt_superscalar::isa::interp::Interp;
use smt_superscalar::isa::{Opcode, Program, Reg};
use smt_superscalar::mem::CacheKind;
use smt_testkit::{cases, Rng};

/// Per-thread private slots (each 8 bytes) for random loads/stores.
const SLOTS: u64 = 8;
const MAX_THREADS: u64 = 6;

/// One statement of a random kernel.
#[derive(Clone, Debug)]
enum Stmt {
    /// Three-register computation.
    Alu(Opcode, u8, u8, u8),
    /// Register-immediate computation.
    AluImm(Opcode, u8, u8, i32),
    /// Load from a private slot.
    Load(u8, u8),
    /// Store to a private slot.
    Store(u8, u8),
    /// Bounded counted loop.
    Loop(u8, Vec<Stmt>),
}

/// Value registers available to random code: r4..r11.
const VREGS: u8 = 8;
const VBASE: u8 = 4;

const R3_OPS: [Opcode; 18] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Sll,
    Opcode::Srl,
    Opcode::Sra,
    Opcode::Slt,
    Opcode::Sltu,
    Opcode::Mul,
    Opcode::Div,
    Opcode::Rem,
    Opcode::FAdd,
    Opcode::FSub,
    Opcode::FMul,
    Opcode::FDiv,
    Opcode::FLt,
];

const I2_OPS: [Opcode; 8] = [
    Opcode::Addi,
    Opcode::Andi,
    Opcode::Ori,
    Opcode::Xori,
    Opcode::Slli,
    Opcode::Srli,
    Opcode::Srai,
    Opcode::Slti,
];

fn leaf_stmt(rng: &mut Rng) -> Stmt {
    match rng.below(4) {
        0 => Stmt::Alu(
            rng.pick_copy(&R3_OPS),
            rng.below(u64::from(VREGS)) as u8,
            rng.below(u64::from(VREGS)) as u8,
            rng.below(u64::from(VREGS)) as u8,
        ),
        1 => Stmt::AluImm(
            rng.pick_copy(&I2_OPS),
            rng.below(u64::from(VREGS)) as u8,
            rng.below(u64::from(VREGS)) as u8,
            rng.range_i64(-64, 64) as i32,
        ),
        2 => Stmt::Load(rng.below(u64::from(VREGS)) as u8, rng.below(SLOTS) as u8),
        _ => Stmt::Store(rng.below(u64::from(VREGS)) as u8, rng.below(SLOTS) as u8),
    }
}

fn stmt(rng: &mut Rng, depth: u32) -> Stmt {
    // Leaves outnumber loops 4:1, matching the original distribution.
    if depth == 0 || rng.below(5) < 4 {
        leaf_stmt(rng)
    } else {
        let n = rng.range_usize(1, 4) as u8;
        let body = (0..rng.range_usize(1, 5))
            .map(|_| stmt(rng, depth - 1))
            .collect();
        Stmt::Loop(n, body)
    }
}

fn program_spec(rng: &mut Rng) -> (Vec<i64>, Vec<Stmt>) {
    let seeds = (0..VREGS as usize)
        .map(|_| rng.range_i64(-1000, 1000))
        .collect();
    let stmts = (0..rng.range_usize(1, 20)).map(|_| stmt(rng, 2)).collect();
    (seeds, stmts)
}

/// Lowers a spec into a real program. Register map: r2 = private base
/// address, r3 = scratch, r4..r11 = values, r12..r14 = per-nest loop
/// counters, r15 = the constant 1 (loop lower bound).
fn lower(seeds: &[i64], stmts: &[Stmt]) -> Program {
    let mut b = ProgramBuilder::new();
    // Reserve the registers the generator refers to by number.
    for _ in 0..(2 + VREGS + 3) {
        let _ = b.reg();
    }
    let base = Reg::new(2);
    let vreg = |i: u8| Reg::new(VBASE + i);
    // Private region: DATA_BASE + tid * SLOTS*8. The data segment spans
    // MAX_THREADS regions so any thread count works.
    let region = b.alloc_zeroed(MAX_THREADS * SLOTS * 8);
    let scratch = Reg::new(3);
    b.slli(base, b.tid_reg(), (SLOTS * 8).trailing_zeros() as i32);
    b.li(scratch, region as i64);
    b.add(base, base, scratch);
    for (i, &seed) in seeds.iter().enumerate() {
        b.li(vreg(i as u8), seed);
    }
    fn emit(b: &mut ProgramBuilder, stmts: &[Stmt], depth: u8) {
        let base = Reg::new(2);
        let vreg = |i: u8| Reg::new(VBASE + i);
        for s in stmts {
            match *s {
                Stmt::Alu(op, d, a, bb) => {
                    b.push(smt_superscalar::isa::Instruction::r3(
                        op,
                        vreg(d),
                        vreg(a),
                        vreg(bb),
                    ));
                }
                Stmt::AluImm(op, d, a, imm) => {
                    b.push(smt_superscalar::isa::Instruction::i2(
                        op,
                        vreg(d),
                        vreg(a),
                        imm,
                    ));
                }
                Stmt::Load(d, slot) => b.ld(vreg(d), base, i32::from(slot) * 8),
                Stmt::Store(v, slot) => b.sd(vreg(v), base, i32::from(slot) * 8),
                Stmt::Loop(n, ref body) => {
                    let counter = Reg::new(2 + 2 + VREGS + depth); // r12..r14
                    b.li(counter, i64::from(n));
                    let top = b.label();
                    b.bind(top);
                    emit(b, body, depth + 1);
                    b.addi(counter, counter, -1);
                    b.bge(counter, Reg::new(15), top); // r15 holds 1 (see below)
                }
            }
        }
    }
    // r15 = 1 — loop lower bound (bge counter, 1 ⇔ counter >= 1).
    let one = b.reg();
    debug_assert_eq!(one, Reg::new(15));
    b.li(one, 1);
    emit(&mut b, stmts, 0);
    b.halt();
    b.build(6).expect("random kernel fits the 6-thread window")
}

fn random_config(rng: &mut Rng) -> SimConfig {
    let threads = rng.range_usize(1, 5);
    SimConfig::default()
        .with_threads(threads)
        .with_fetch_policy(rng.pick_copy(&[
            FetchPolicy::TrueRoundRobin,
            FetchPolicy::MaskedRoundRobin,
            FetchPolicy::ConditionalSwitch,
            FetchPolicy::Icount,
        ]))
        .with_predictor(rng.pick_copy(&[
            PredictorKind::SharedBtb,
            PredictorKind::Gshare,
            PredictorKind::PartitionedBtb,
        ]))
        .with_fetch_threads(if threads > 1 && rng.coin() { 2 } else { 1 })
        .with_fetch_width(rng.pick_copy(&[4usize, 8]))
        .with_commit_policy(rng.pick_copy(&[CommitPolicy::Flexible, CommitPolicy::LowestOnly]))
        .with_cache_kind(rng.pick_copy(&[CacheKind::SetAssociative, CacheKind::DirectMapped]))
        .with_su_depth(rng.pick_copy(&[16usize, 32, 64]))
        .with_bypass(rng.coin())
        .with_renaming(rng.pick_copy(&[RenamingMode::Full, RenamingMode::Scoreboard]))
        .with_max_cycles(5_000_000)
}

#[test]
fn cycle_simulator_matches_functional_interpreter() {
    cases(48, |rng| {
        let (seeds, stmts) = program_spec(rng);
        let config = random_config(rng);
        let program = lower(&seeds, &stmts);
        let threads = config.threads;

        let mut interp = Interp::new(&program, threads);
        interp.run().expect("random programs terminate");

        let mut sim = Simulator::new(config, &program);
        let stats = sim.run().expect("cycle simulator terminates");

        assert_eq!(sim.memory().words(), interp.mem_words(), "memory diverged");
        assert_eq!(sim.reg_file(), interp.reg_file(), "registers diverged");
        assert!(stats.cycles > 0);
    });
}
