//! Failure-injection and stress tests: pathological kernels that saturate
//! individual structures (store buffer, branch predictor, scheduling unit,
//! sync unit) while still requiring architecturally correct results.

use smt_superscalar::core::{CommitPolicy, FetchPolicy, SimConfig, SimError, Simulator};
use smt_superscalar::isa::builder::ProgramBuilder;
use smt_superscalar::isa::interp::Interp;
use smt_superscalar::isa::Program;

fn check_against_interp(program: &Program, config: SimConfig) {
    let threads = config.threads;
    let mut sim = Simulator::new(config, program);
    sim.run().expect("simulation completes");
    let mut interp = Interp::new(program, threads);
    interp.run().expect("reference completes");
    assert_eq!(sim.memory().words(), interp.mem_words(), "memory diverged");
    assert_eq!(sim.reg_file(), interp.reg_file(), "registers diverged");
}

/// A burst of dependent stores larger than the 8-entry store buffer, then
/// loads that must see every one of them (forwarding + drain ordering).
#[test]
fn store_buffer_saturation_preserves_ordering() {
    let mut b = ProgramBuilder::new();
    let buf = b.alloc_zeroed(64 * 8);
    let out = b.alloc_zeroed(8);
    let [base, v, acc, i, limit, addr, obr] = b.regs();
    b.li(base, buf as i64);
    b.li(obr, out as i64);
    b.li(acc, 0);
    // 24 stores back-to-back, including repeated addresses.
    for k in 0..24i32 {
        b.li(v, i64::from(k * k + 1));
        b.sd(v, base, (k % 16) * 8);
    }
    // Read them all back and accumulate.
    b.li(i, 0);
    b.li(limit, 16);
    let top = b.label();
    b.bind(top);
    b.slli(addr, i, 3);
    b.add(addr, addr, base);
    b.ld(v, addr, 0);
    b.add(acc, acc, v);
    b.addi(i, i, 1);
    b.blt(i, limit, top);
    b.sd(acc, obr, 0);
    b.halt();
    let p = b.build(2).unwrap();

    for store_buffer in [1usize, 2, 8] {
        check_against_interp(
            &p,
            SimConfig::default()
                .with_threads(2)
                .with_store_buffer(store_buffer),
        );
    }
}

/// A data-dependent branch pattern the 2-bit predictor mispredicts heavily:
/// correctness must survive constant squashing, across commit policies.
#[test]
fn mispredict_storm_is_architecturally_clean() {
    let mut b = ProgramBuilder::new();
    let out = b.alloc_zeroed(6 * 8);
    let [i, limit, acc, bit, zero, addr, obr] = b.regs();
    b.li(obr, out as i64);
    b.li(i, 0);
    b.li(limit, 200);
    b.li(acc, 0);
    b.li(zero, 0);
    let top = b.label();
    let even = b.label();
    let next = b.label();
    b.bind(top);
    b.andi(bit, i, 1);
    b.beq(bit, zero, even); // alternates taken/not-taken every iteration
    b.addi(acc, acc, 3);
    b.j(next);
    b.bind(even);
    b.addi(acc, acc, 5);
    b.bind(next);
    b.addi(i, i, 1);
    b.blt(i, limit, top);
    b.slli(addr, b.tid_reg(), 3);
    b.add(addr, addr, obr);
    b.sd(acc, addr, 0);
    b.halt();
    let p = b.build(4).unwrap();

    for commit in [CommitPolicy::Flexible, CommitPolicy::LowestOnly] {
        let config = SimConfig::default().with_commit_policy(commit);
        let mut sim = Simulator::new(config.clone(), &p);
        let stats = sim.run().unwrap();
        assert!(
            stats.branches.mispredicted > 50,
            "the alternating branch must actually stress the predictor \
             (got {} mispredicts)",
            stats.branches.mispredicted
        );
        assert!(stats.squashed > 0, "squashes must occur");
        check_against_interp(&p, config);
    }
}

/// A one-entry scheduling unit (one block) still executes correctly — the
/// degenerate in-order machine.
#[test]
fn minimal_scheduling_unit_works() {
    let mut b = ProgramBuilder::new();
    let out = b.alloc_zeroed(6 * 8);
    let [x, y, addr, obr] = b.regs();
    b.li(obr, out as i64);
    b.li(x, 7);
    b.li(y, 9);
    b.mul(x, x, y);
    b.addi(x, x, -3);
    b.slli(addr, b.tid_reg(), 3);
    b.add(addr, addr, obr);
    b.sd(x, addr, 0);
    b.halt();
    let p = b.build(2).unwrap();
    let mut cfg = SimConfig::default().with_threads(2);
    cfg.su_depth = 4; // a single block
    check_against_interp(&p, cfg);
}

/// Cross-thread producer/consumer chains through WAIT/POST under every
/// fetch policy, including the non-default commit policy.
#[test]
fn sync_chain_under_all_policies() {
    // Thread t waits for flag >= t, adds its tid to the accumulator slot,
    // posts flag — a strict serialization of all threads.
    let mut b = ProgramBuilder::new();
    let flag = b.alloc_zeroed(8);
    let slot = b.alloc_zeroed(8);
    let [fl, sl, v] = b.regs();
    b.li(fl, flag as i64);
    b.li(sl, slot as i64);
    b.wait(fl, b.tid_reg());
    b.ld(v, sl, 0);
    b.add(v, v, b.tid_reg());
    b.addi(v, v, 1);
    b.sd(v, sl, 0);
    b.post(fl);
    b.halt();
    let p = b.build(6).unwrap();

    for fetch in [
        FetchPolicy::TrueRoundRobin,
        FetchPolicy::MaskedRoundRobin,
        FetchPolicy::ConditionalSwitch,
    ] {
        for commit in [CommitPolicy::Flexible, CommitPolicy::LowestOnly] {
            for threads in [2usize, 4, 6] {
                let config = SimConfig::default()
                    .with_threads(threads)
                    .with_fetch_policy(fetch)
                    .with_commit_policy(commit);
                let mut sim = Simulator::new(config, &p);
                sim.run()
                    .unwrap_or_else(|e| panic!("{fetch:?}/{commit:?}/{threads}: {e}"));
                let total: u64 = (0..threads as u64).map(|t| t + 1).sum();
                assert_eq!(
                    sim.mem_word(slot),
                    total,
                    "{fetch:?}/{commit:?}/{threads}: serialization broken"
                );
            }
        }
    }
}

/// The watchdog fires on a genuine deadlock instead of hanging.
#[test]
fn deadlocked_program_hits_watchdog_under_every_policy() {
    let mut b = ProgramBuilder::new();
    let flag = b.alloc_zeroed(8);
    let [fl, target] = b.regs();
    b.li(fl, flag as i64);
    b.li(target, 99);
    b.wait(fl, target);
    b.halt();
    let p = b.build(2).unwrap();
    for fetch in [
        FetchPolicy::TrueRoundRobin,
        FetchPolicy::MaskedRoundRobin,
        FetchPolicy::ConditionalSwitch,
    ] {
        let config = SimConfig::default()
            .with_threads(2)
            .with_fetch_policy(fetch)
            .with_max_cycles(50_000);
        let mut sim = Simulator::new(config, &p);
        assert_eq!(
            sim.run(),
            Err(SimError::Watchdog { cycles: 50_000 }),
            "{fetch:?}"
        );
    }
}

/// Regression: a `halt` that fetch runs into on the fall-through of an
/// unconditional jump must not permanently stop the thread's fetch
/// (this deadlocked the sieve benchmark at one point).
#[test]
fn halt_after_jump_does_not_kill_fetch() {
    // loop: counter-- ; j loop_check; halt  — fetch sees the halt right
    // after the unconditional jump every time the jump misses in the BTB.
    let mut b = ProgramBuilder::new();
    let out = b.alloc_zeroed(6 * 8);
    let [i, limit, addr, obr] = b.regs();
    b.li(obr, out as i64);
    b.li(i, 0);
    b.li(limit, 10);
    let top = b.label();
    let check = b.label();
    let end = b.label();
    b.bind(top);
    b.addi(i, i, 1);
    b.j(check); // halt sits directly after this jump in fetch order
    b.bind(end);
    b.slli(addr, b.tid_reg(), 3);
    b.add(addr, addr, obr);
    b.sd(i, addr, 0);
    b.halt();
    b.bind(check);
    b.blt(i, limit, top);
    b.j(end);
    b.halt(); // dead halt straight after another jump, for good measure
    let p = b.build(3).unwrap();
    check_against_interp(&p, SimConfig::default().with_threads(3));
}

/// Regression: ≥5 threads parked at a barrier must not clog the bottom-four
/// commit window (unsatisfied WAITs retire as spins and refetch).
#[test]
fn six_thread_barrier_does_not_clog_commit_window() {
    let mut b = ProgramBuilder::new();
    let bar = b.alloc_zeroed(8);
    let out = b.alloc_zeroed(6 * 8);
    let [barr, v, addr, obr] = b.regs();
    b.li(barr, bar as i64);
    b.li(obr, out as i64);
    b.post(barr);
    b.wait(barr, b.nthreads_reg());
    b.ld(v, barr, 0);
    b.slli(addr, b.tid_reg(), 3);
    b.add(addr, addr, obr);
    b.sd(v, addr, 0);
    b.halt();
    let p = b.build(6).unwrap();
    for commit in [CommitPolicy::Flexible, CommitPolicy::LowestOnly] {
        for threads in [5usize, 6] {
            let config = SimConfig::default()
                .with_threads(threads)
                .with_commit_policy(commit)
                .with_max_cycles(2_000_000);
            let mut sim = Simulator::new(config, &p);
            sim.run()
                .unwrap_or_else(|e| panic!("{commit:?}/{threads}: {e}"));
            for t in 0..threads as u64 {
                assert_eq!(
                    sim.mem_word(out + t * 8),
                    threads as u64,
                    "{commit:?}/{threads}"
                );
            }
        }
    }
}

/// Cross-thread store visibility: a load must see another thread's
/// completed-but-uncommitted store via forwarding (not stale memory).
#[test]
fn cross_thread_forwarding_after_sync() {
    let mut b = ProgramBuilder::new();
    let flag = b.alloc_zeroed(8);
    let data = b.alloc_zeroed(8);
    let out = b.alloc_zeroed(8);
    let [fl, dt, ob, v, one, zero] = b.regs();
    b.li(fl, flag as i64);
    b.li(dt, data as i64);
    b.li(ob, out as i64);
    b.li(one, 1);
    b.li(zero, 0);
    let reader = b.label();
    b.bne(b.tid_reg(), zero, reader);
    b.li(v, 4242);
    b.sd(v, dt, 0); // may still be in the SU or store buffer when read
    b.post(fl);
    b.halt();
    b.bind(reader);
    b.wait(fl, one);
    b.ld(v, dt, 0);
    b.sd(v, ob, 0);
    b.halt();
    let p = b.build(2).unwrap();
    for _ in 0..4 {
        let mut sim = Simulator::new(SimConfig::default().with_threads(2), &p);
        sim.run().unwrap();
        assert_eq!(sim.mem_word(out), 4242, "reader saw a stale value");
    }
}

/// A constantly mispredicted branch sits between two *aliased* stores and a
/// forwarded load: each arm of the diamond stores a different value to the
/// same address, and the join immediately loads it back. On every
/// mispredict the wrong arm's store executes speculatively and is squashed;
/// if the purge leaves a stale disambiguation/forwarding entry behind, the
/// join's load forwards the dead arm's value and the accumulated sum
/// diverges from the reference.
#[test]
fn squashed_aliased_store_never_forwards() {
    let mut b = ProgramBuilder::new();
    let slot = b.alloc_zeroed(2 * 8);
    let out = b.alloc_zeroed(6 * 8);
    let [base, obr, i, limit, par, zero, acc, w, vo, ve, addr] = b.regs();
    b.li(base, slot as i64);
    b.li(obr, out as i64);
    b.li(i, 0);
    b.li(limit, 100);
    b.li(zero, 0);
    b.li(acc, 0);
    let even_arm = b.label();
    let join = b.label();
    let top = b.label();
    b.bind(top);
    // Per-iteration values, so a stale forward is visible immediately.
    b.slli(vo, i, 2);
    b.addi(vo, vo, 101);
    b.slli(ve, i, 3);
    b.addi(ve, ve, 1001);
    b.andi(par, i, 1);
    b.beq(par, zero, even_arm); // alternates: mispredicts in steady state
    b.sd(vo, base, 0); // odd arm — wrong-path squashed on even iterations
    b.j(join);
    b.bind(even_arm);
    b.sd(ve, base, 0); // even arm — wrong-path squashed on odd iterations
    b.bind(join);
    b.ld(w, base, 0); // must forward the surviving arm's store only
    b.add(acc, acc, w);
    b.addi(i, i, 1);
    b.blt(i, limit, top);
    b.slli(addr, b.tid_reg(), 3);
    b.add(addr, addr, obr);
    b.sd(acc, addr, 0);
    b.halt();
    let p = b.build(4).unwrap();

    for fetch in [
        FetchPolicy::TrueRoundRobin,
        FetchPolicy::MaskedRoundRobin,
        FetchPolicy::ConditionalSwitch,
    ] {
        for store_buffer in [1usize, 8] {
            let config = SimConfig::default()
                .with_threads(4)
                .with_fetch_policy(fetch)
                .with_store_buffer(store_buffer);
            let mut sim = Simulator::new(config.clone(), &p);
            let stats = sim.run().unwrap();
            assert!(
                stats.squashed > 0,
                "{fetch:?}/sb{store_buffer}: the diamond must force squashes"
            );
            assert!(
                stats.branches.mispredicted > 50,
                "{fetch:?}/sb{store_buffer}: alternating branch must mispredict \
                 (got {})",
                stats.branches.mispredicted
            );
            check_against_interp(&p, config);
        }
    }
}

/// Tiny caches (heavy miss traffic, constant refill-port contention) must
/// not change architectural results.
#[test]
fn pathological_cache_geometries_are_sound() {
    use smt_superscalar::mem::CacheConfig;
    let w = smt_superscalar::workloads::workload(
        smt_superscalar::workloads::WorkloadKind::Ll12,
        smt_superscalar::workloads::Scale::Test,
    );
    let p = w.build(4).unwrap();
    for (size, ways, penalty) in [(64u64, 1usize, 40u64), (128, 2, 3), (256, 4, 100)] {
        let cache = CacheConfig {
            size_bytes: size,
            line_bytes: 32,
            ways,
            miss_penalty: penalty,
            mshrs: 1,
        };
        let config = SimConfig::default().with_cache(cache);
        let mut sim = Simulator::new(config, &p);
        let stats = sim.run().unwrap();
        w.check(sim.memory().words()).unwrap();
        assert!(stats.cache.misses > 0, "tiny cache must miss");
    }
}
