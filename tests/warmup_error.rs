//! The approximation-error harness for warm-forked measurement.
//!
//! Warmup forking (`smt_experiments::explore`) trades exactness for
//! speed: one canonical-machine warmup is shared across every
//! microarchitectural variant, and each variant only simulates the
//! measurement window from the forked architectural state. That makes
//! the measured IPC *approximate* — the warmup transient ran under the
//! canonical machine, and the variant's caches and predictors re-warm
//! inside the window. This suite measures that approximation against
//! full-run ground truth and **enforces** the documented bound, so the
//! error budget is a tested property of the repository rather than a
//! hope.
//!
//! Shape: ≥8 workloads (builtins, corpus kernels, and a two-way
//! heterogeneous mix) × 3 variant axes (scheduling-unit depth; cache
//! geometry + predictor family; fetch policy + speculation limit).
//! For every cell we compare the warm-forked measurement-window IPC
//! against the exact cold full run of the *same* variant and assert the
//! relative error stays within [`IPC_ERROR_BOUND`]. On violation the
//! harness fails with the complete per-cell error table, not just the
//! first offender.
//!
//! The bound itself was picked by measurement (see EXPERIMENTS.md,
//! "Warmup error bound"): at `Scale::Test` the kernels retire within a
//! few thousand cycles, so the warmup window is a substantial fraction
//! of the whole run — the test-scale bound is correspondingly loose.
//! The EXPERIMENTS.md study shows the error shrinking as the measured
//! window grows relative to the warmup.

use std::path::PathBuf;
use std::sync::Arc;

use smt_core::{FetchPolicy, PredictorKind};
use smt_corpus::Corpus;
use smt_experiments::explore::{EvalMode, Explorer, SearchSpace};
use smt_experiments::sweep::{CellRecord, CellSpec, CellStatus, Scheduler, SweepOptions, WorkSpec};
use smt_mem::CacheKind;
use smt_workloads::{Scale, WorkloadKind};

/// Documented relative-IPC error bound for warm-forked measurement at
/// test scale, as a fraction (0.25 = 25%). Measured headroom: the
/// worst observed cell across this matrix sits well under it (see the
/// EXPERIMENTS.md study); the bound fails if forking ever starts
/// corrupting measurement rather than approximating it.
const IPC_ERROR_BOUND: f64 = 0.25;

/// Mean relative error across the whole matrix must be far tighter
/// than the per-cell worst case — warm forking is only useful if it is
/// unbiased enough to rank machines.
const MEAN_ERROR_BOUND: f64 = 0.10;

/// Warmup length (canonical-machine cycles) used throughout — roughly
/// a fifth of the shortest kernel in the matrix at test scale.
const WARMUP: u64 = 300;

struct Case {
    work: &'static str,
    threads: usize,
}

/// ≥8 workloads: six builtins, two corpus kernels, one two-way mix.
const CASES: &[Case] = &[
    Case {
        work: "ll1",
        threads: 4,
    },
    Case {
        work: "ll2",
        threads: 4,
    },
    Case {
        work: "ll7",
        threads: 4,
    },
    Case {
        work: "laplace",
        threads: 4,
    },
    Case {
        work: "matrix",
        threads: 4,
    },
    Case {
        work: "water",
        threads: 4,
    },
    Case {
        work: "quicksort",
        threads: 4,
    },
    Case {
        work: "matmul",
        threads: 2,
    },
    Case {
        work: "mpd+matmul",
        threads: 2,
    },
];

/// One variant per searched axis family, each away from the canonical
/// machine in a different direction.
struct Variant {
    tag: &'static str,
    apply: fn(&mut SearchSpace),
}

const VARIANTS: &[Variant] = &[
    Variant {
        tag: "su16",
        apply: |s| s.su_depths = vec![16],
    },
    Variant {
        tag: "dm+gshare",
        apply: |s| {
            s.caches = vec![CacheKind::DirectMapped];
            s.predictors = vec![PredictorKind::Gshare];
        },
    },
    Variant {
        tag: "ic+sd2",
        apply: |s| {
            s.policies = vec![FetchPolicy::Icount];
            s.spec_depths = vec![2];
        },
    },
];

struct Row {
    id: String,
    full_ipc: f64,
    warm_ipc: f64,
    error: f64,
    forked: bool,
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smt-warmup-err-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn corpus() -> Arc<Corpus> {
    Arc::new(
        Corpus::load(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"))
            .expect("repository corpus loads"),
    )
}

/// The smoke space collapsed to a single point: the canonical paper
/// machine at this workload/thread count, before a variant is applied.
fn singleton(work: WorkSpec, threads: usize) -> SearchSpace {
    let mut s = SearchSpace::smoke(work, threads);
    s.policies = vec![FetchPolicy::TrueRoundRobin];
    s.predictors = vec![PredictorKind::SharedBtb];
    s.fetch_threads = vec![1];
    s.fetch_widths = vec![4];
    s.su_depths = vec![32];
    s.caches = vec![CacheKind::SetAssociative];
    s.spec_depths = vec![0];
    s
}

fn warm_record(sched: &Scheduler, space: &SearchSpace) -> (CellSpec, CellRecord) {
    let mut explorer = Explorer::new(sched, space.clone(), EvalMode::Warm { warmup: WARMUP })
        .expect("warm namespaces open");
    let origin = vec![0usize; 7];
    explorer.objectives(&origin);
    explorer
        .record(&origin)
        .expect("the evaluated point has a record")
        .clone()
}

fn table(rows: &[Row]) -> String {
    let mut out = String::from(
        "cell                                     full-ipc  warm-ipc  rel-err  path\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<40} {:>8.4}  {:>8.4}  {:>6.2}%  {}\n",
            r.id,
            r.full_ipc,
            r.warm_ipc,
            100.0 * r.error,
            if r.forked { "forked" } else { "fallback" },
        ));
    }
    out
}

#[test]
fn warm_forked_ipc_stays_within_the_documented_error_bound() {
    let out = scratch("bound");
    let opts = SweepOptions {
        scale: Scale::Test,
        corpus: Some(corpus()),
        ..SweepOptions::default()
    };
    let sched = Scheduler::new(&out, opts).expect("store opens");

    let mut rows = Vec::new();
    for case in CASES {
        let work = WorkSpec::parse(case.work).expect("case workload parses");
        for variant in VARIANTS {
            let mut space = singleton(work.clone(), case.threads);
            (variant.apply)(&mut space);
            let (spec, warm) = warm_record(&sched, &space);
            assert_eq!(
                warm.status,
                CellStatus::Done,
                "{}: every matrix cell is feasible: {}",
                warm.id,
                warm.reason
            );
            let full = sched.run_cell(&spec, false, &mut |_| {}).rec;
            assert_eq!(
                full.status,
                CellStatus::Done,
                "{}: ground truth runs",
                full.id
            );
            rows.push(Row {
                id: format!("{} [{}]", warm.id, variant.tag),
                full_ipc: full.ipc,
                warm_ipc: warm.ipc,
                error: (warm.ipc - full.ipc).abs() / full.ipc,
                forked: warm.reason.is_empty(),
            });
        }
    }

    let forked = rows.iter().filter(|r| r.forked).count();
    assert!(
        forked * 2 > rows.len(),
        "the harness must exercise real forks, not the cold fallback \
         ({forked}/{} forked):\n{}",
        rows.len(),
        table(&rows)
    );
    let worst = rows
        .iter()
        .max_by(|a, b| a.error.total_cmp(&b.error))
        .expect("matrix is non-empty");
    assert!(
        worst.error <= IPC_ERROR_BOUND,
        "worst-case relative IPC error {:.2}% exceeds the documented {:.0}% bound at {}\n{}",
        100.0 * worst.error,
        100.0 * IPC_ERROR_BOUND,
        worst.id,
        table(&rows)
    );
    let mean = rows.iter().map(|r| r.error).sum::<f64>() / rows.len() as f64;
    assert!(
        mean <= MEAN_ERROR_BOUND,
        "mean relative IPC error {:.2}% exceeds the documented {:.0}% bound\n{}",
        100.0 * mean,
        100.0 * MEAN_ERROR_BOUND,
        table(&rows)
    );
    println!(
        "warmup-error matrix ({} cells, {} forked, warmup {WARMUP}): \
         worst {:.2}%, mean {:.2}%\n{}",
        rows.len(),
        forked,
        100.0 * worst.error,
        100.0 * mean,
        table(&rows)
    );
    let _ = std::fs::remove_dir_all(&out);
}

/// Reproduction path for the EXPERIMENTS.md error-vs-warmup study:
/// prints the relative-IPC error of warm-forked measurement at a range
/// of warmup lengths. Ignored by default (it is a report, not a gate);
/// run with `cargo test --release --test warmup_error -- --ignored
/// --nocapture`.
#[test]
#[ignore = "report generator for EXPERIMENTS.md, not a gate"]
fn print_error_vs_warmup_curve() {
    let out = scratch("curve");
    let opts = SweepOptions {
        scale: Scale::Test,
        corpus: Some(corpus()),
        ..SweepOptions::default()
    };
    let sched = Scheduler::new(&out, opts).expect("store opens");
    let works: &[(&str, usize)] = &[("laplace", 4), ("ll7", 4), ("matrix", 4), ("quicksort", 4)];
    println!("workload      warmup  full-ipc  warm-ipc  rel-err  path");
    for &(work, threads) in works {
        let mut space = singleton(WorkSpec::parse(work).expect("parses"), threads);
        (VARIANTS[1].apply)(&mut space);
        let spec = space.spec_at(&[0; 7]);
        let full = sched.run_cell(&spec, false, &mut |_| {}).rec;
        for warmup in [100, 200, 300, 600, 900] {
            let mut explorer = Explorer::new(&sched, space.clone(), EvalMode::Warm { warmup })
                .expect("warm namespaces open");
            explorer.objectives(&[0; 7]);
            let (_, warm) = explorer.record(&[0; 7]).expect("record").clone();
            println!(
                "{work:<12} {warmup:>7}  {:>8.4}  {:>8.4}  {:>6.2}%  {}",
                full.ipc,
                warm.ipc,
                100.0 * (warm.ipc - full.ipc).abs() / full.ipc,
                if warm.reason.is_empty() {
                    "forked"
                } else {
                    "fallback"
                },
            );
        }
    }
    let _ = std::fs::remove_dir_all(&out);
}

/// Longer warmups must not *grow* the error systematically: the error
/// at double the harness warmup stays within the same per-cell bound.
/// (The full error-vs-warmup curve lives in EXPERIMENTS.md.)
#[test]
fn doubling_the_warmup_keeps_the_bound() {
    let out = scratch("double");
    let opts = SweepOptions {
        scale: Scale::Test,
        ..SweepOptions::default()
    };
    let sched = Scheduler::new(&out, opts).expect("store opens");
    let space = singleton(WorkloadKind::Laplace.into(), 4);
    let spec = space.spec_at(&[0; 7]);
    let full = sched.run_cell(&spec, false, &mut |_| {}).rec;

    for warmup in [WARMUP, 2 * WARMUP] {
        let mut explorer = Explorer::new(&sched, space.clone(), EvalMode::Warm { warmup })
            .expect("warm namespaces open");
        explorer.objectives(&[0; 7]);
        let (_, warm) = explorer.record(&[0; 7]).expect("record").clone();
        assert!(warm.reason.is_empty(), "laplace is long enough to fork");
        let error = (warm.ipc - full.ipc).abs() / full.ipc;
        assert!(
            error <= IPC_ERROR_BOUND,
            "warmup {warmup}: relative error {:.2}% exceeds {:.0}%",
            100.0 * error,
            100.0 * IPC_ERROR_BOUND
        );
    }
    let _ = std::fs::remove_dir_all(&out);
}
