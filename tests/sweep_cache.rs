//! Sweep-cache correctness: hits are bit-identical, invalidation is
//! per-cell, staleness fails closed, and mid-flight checkpoints resume.
//!
//! The sweep engine's promise is that `results.json` depends only on the
//! grid and the code — never on how many times, in how many pieces, or
//! over which warm caches the sweep ran. These tests interrupt, tamper
//! with, and version-skew the on-disk state and demand byte-equality
//! every time.

use std::fs;
use std::path::{Path, PathBuf};

use smt_experiments::sweep::{plant_checkpoint, run_sweep, CellSpec, Grid, SweepOptions};
use smt_superscalar::core::{FetchPolicy, PredictorKind, Simulator};
use smt_superscalar::mem::CacheKind;
use smt_workloads::{workload, Scale, WorkloadKind};

/// A fresh scratch directory under the target dir (kept out of `/tmp` so
/// sandboxed test runners always have it writable).
fn scratch(name: &str) -> PathBuf {
    let dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/target/sweep-tests")).join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn small_grid() -> Grid {
    Grid {
        workloads: vec![WorkloadKind::Sieve.into()],
        policies: vec![FetchPolicy::TrueRoundRobin, FetchPolicy::ConditionalSwitch],
        predictors: vec![PredictorKind::SharedBtb],
        threads: vec![1, 4],
        fetch_threads: vec![1],
        fetch_widths: vec![4],
        su_depths: vec![32],
        caches: vec![CacheKind::SetAssociative],
        spec_depths: vec![0],
    }
}

fn opts() -> SweepOptions {
    SweepOptions {
        scale: Scale::Test,
        workers: 2,
        checkpoint_every: Some(500),
        batch: None,
        code_version: "test-v1".to_string(),
        corpus: None,
    }
}

fn results(dir: &Path) -> String {
    fs::read_to_string(dir.join("results.json")).expect("results.json exists")
}

#[test]
fn cache_hits_are_bit_identical_and_skip_reruns() {
    let grid = small_grid();
    let dir = scratch("hits");
    let first = run_sweep(&grid, &dir, &opts()).expect("sweep runs");
    assert_eq!(first.total, 4);
    assert_eq!(first.executed, 4, "a cold cache executes every cell");
    let cold = results(&dir);

    let second = run_sweep(&grid, &dir, &opts()).expect("sweep reruns");
    assert_eq!(second.executed, 0, "a warm cache executes nothing");
    assert_eq!(second.cached, 4);
    assert_eq!(results(&dir), cold, "cache hits serialize byte-identically");

    let other = scratch("hits-independent");
    run_sweep(&grid, &other, &opts()).expect("independent sweep runs");
    assert_eq!(
        results(&other),
        cold,
        "results depend only on grid and code, not on the directory's history"
    );
}

#[test]
fn stale_cache_fails_closed_per_cell() {
    let grid = small_grid();
    let dir = scratch("stale");
    run_sweep(&grid, &dir, &opts()).expect("sweep runs");
    let reference = results(&dir);

    // Tamper with exactly one record's config hash: that cell — and only
    // that cell — must be re-simulated, and the merged results must come
    // out unchanged.
    let victim = dir.join("cells").join("sieve-trr-t4-su32-sa.cell");
    let tampered: String = fs::read_to_string(&victim)
        .expect("cell file exists")
        .lines()
        .map(|l| {
            if l.starts_with("config_hash=") {
                "config_hash=0x0000000000000001\n".to_string()
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    fs::write(&victim, tampered).expect("tamper cell file");
    let summary = run_sweep(&grid, &dir, &opts()).expect("sweep reruns");
    assert_eq!(summary.executed, 1, "only the invalid cell is re-run");
    assert_eq!(summary.cached, 3);
    assert_eq!(results(&dir), reference);

    // A truncated (torn) record is equally untrusted.
    fs::write(&victim, "id=sieve-trr-t4-su32-sa\nstatus=done\n").expect("truncate cell file");
    let summary = run_sweep(&grid, &dir, &opts()).expect("sweep reruns");
    assert_eq!(summary.executed, 1, "a malformed cell is re-run");
    assert_eq!(results(&dir), reference);

    // A code-version bump invalidates every cell at once.
    let bumped = SweepOptions {
        code_version: "test-v2".to_string(),
        ..opts()
    };
    let summary = run_sweep(&grid, &dir, &bumped).expect("sweep reruns");
    assert_eq!(summary.executed, 4, "a new code version trusts nothing");
    assert_eq!(summary.cached, 0);
    assert_eq!(
        results(&dir),
        reference,
        "the re-simulated space is byte-identical (the code did not actually change)"
    );
}

#[test]
fn mid_flight_checkpoints_resume_instead_of_restarting() {
    let spec = CellSpec {
        work: WorkloadKind::Sieve.into(),
        policy: FetchPolicy::TrueRoundRobin,
        predictor: PredictorKind::SharedBtb,
        threads: 4,
        fetch_threads: 1,
        fetch_width: 4,
        su_depth: 32,
        cache: CacheKind::SetAssociative,
        spec_depth: 0,
    };
    let grid = Grid {
        workloads: vec![spec.work.clone()],
        policies: vec![spec.policy],
        predictors: vec![spec.predictor],
        threads: vec![spec.threads],
        fetch_threads: vec![spec.fetch_threads],
        fetch_widths: vec![spec.fetch_width],
        su_depths: vec![spec.su_depth],
        caches: vec![spec.cache],
        spec_depths: vec![spec.spec_depth],
    };

    // Reference: the cell simulated in one piece.
    let reference_dir = scratch("resume-reference");
    run_sweep(&grid, &reference_dir, &opts()).expect("reference sweep runs");
    let reference = results(&reference_dir);

    // Interrupted: a snapshot from cycle 200, planted as a kill would
    // leave it, must be picked up (resumed == 1) and finish identically.
    let program = workload(WorkloadKind::Sieve, Scale::Test)
        .build(spec.threads)
        .expect("sieve fits 4 threads");
    let mut sim = Simulator::new(spec.config(), &program);
    for _ in 0..200 {
        sim.step().expect("prefix steps complete");
    }
    assert!(!sim.finished(), "the interruption point is mid-run");
    let dir = scratch("resume");
    plant_checkpoint(&dir, &spec, "test-v1", &sim.checkpoint()).expect("plant snapshot");
    let summary = run_sweep(&grid, &dir, &opts()).expect("resumed sweep runs");
    assert_eq!(summary.resumed, 1, "the planted snapshot is resumed");
    assert_eq!(summary.executed, 1);
    assert_eq!(results(&dir), reference, "resume-then-run is unobservable");
    assert!(
        !dir.join("ckpt").join("sieve-trr-t4-su32-sa.ckpt").exists(),
        "a completed cell deletes its snapshot"
    );

    // A snapshot from a different code version is not trusted: the cell
    // restarts from cycle 0 and still produces identical results.
    let dir = scratch("resume-stale");
    plant_checkpoint(&dir, &spec, "some-other-version", &sim.checkpoint()).expect("plant snapshot");
    let summary = run_sweep(&grid, &dir, &opts()).expect("sweep runs");
    assert_eq!(summary.resumed, 0, "a version-skewed snapshot is ignored");
    assert_eq!(summary.executed, 1);
    assert_eq!(results(&dir), reference);
}

#[test]
fn infeasible_cells_are_recorded_and_cached_not_fatal() {
    // LL3 needs 17 registers, one more than an 8-thread partition provides
    // (the checkpoint test pins the same fact via the typed error).
    let grid = Grid {
        workloads: vec![WorkloadKind::Ll3.into()],
        policies: vec![FetchPolicy::TrueRoundRobin],
        predictors: vec![PredictorKind::SharedBtb],
        threads: vec![4, 8],
        fetch_threads: vec![1],
        fetch_widths: vec![4],
        su_depths: vec![32],
        caches: vec![CacheKind::SetAssociative],
        spec_depths: vec![0],
    };
    let dir = scratch("infeasible");
    let summary = run_sweep(&grid, &dir, &opts()).expect("sweep survives infeasible cells");
    assert_eq!(summary.total, 2);
    assert_eq!(
        summary.infeasible, 1,
        "the 8-thread cell is a hole, not an abort"
    );
    let json = results(&dir);
    assert!(json.contains("\"status\": \"infeasible\""), "{json}");
    assert!(json.contains("\"status\": \"done\""), "{json}");

    let again = run_sweep(&grid, &dir, &opts()).expect("sweep reruns");
    assert_eq!(again.cached, 2, "infeasible records cache like any other");
    assert_eq!(again.executed, 0);
}
