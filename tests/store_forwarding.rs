//! Regression net for store-to-load forwarding: a store-heavy kernel whose
//! loads hit resident done stores (forwarding), miss them (partial overlap
//! to a neighboring slot), and race wrong-path stores that get squashed on
//! every taken loop-back branch. Four threads run the kernel concurrently,
//! so forwarding state for many addresses — including one *shared* address
//! all threads store to — is live in the scheduling unit at once.
//!
//! Two nets:
//!
//! 1. the full `SimStats` of every pinned configuration must match a
//!    committed golden bit for bit (the address-indexed forwarding index
//!    must reproduce the window scan it replaced *exactly*), and
//! 2. architectural state (memory + registers) must equal the functional
//!    interpreter's, which knows nothing about forwarding at all.
//!
//! To regenerate after an intentional pipeline change:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test --test store_forwarding
//! ```

mod support;

use std::fmt::Write as _;

use smt_superscalar::core::{CommitPolicy, FetchPolicy, SimConfig, Simulator};
use smt_superscalar::isa::builder::ProgramBuilder;
use smt_superscalar::isa::interp::Interp;
use smt_superscalar::isa::Program;
use smt_superscalar::mem::CacheKind;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/goldens/store_forwarding.txt"
);
const THREADS: usize = 4;
const ITERS: i64 = 40;
const SLOTS: u64 = 4;

/// Per-thread private slots plus one shared word. Every loop iteration:
/// store → dependent load at the same address (forwarding hit), store and
/// load at *different* slots (partial overlap: same base, disjoint
/// addresses, must fall through to the store buffer / cache), and a store
/// of a thread-independent constant to the shared word followed by a load
/// of it (cross-thread forwarding candidates; the value is 7 regardless of
/// which thread's store is youngest, so architectural state stays
/// deterministic). The instructions after the loop-back branch are fetched
/// speculatively on every taken iteration and squashed — including a store
/// that may already be done, exercising forwarding-index purge on squash.
fn forwarding_kernel() -> Program {
    let mut b = ProgramBuilder::new();
    let region = b.alloc_zeroed(THREADS as u64 * SLOTS * 8);
    let shared = b.alloc_zeroed(8);
    let [base, shbase, v, w, x, y, seven, i, one, par, zero] = b.regs::<11>();
    b.slli(base, b.tid_reg(), (SLOTS * 8).trailing_zeros() as i32);
    let scratch = w; // w is dead until the loop body; reuse it for setup
    b.li(scratch, region as i64);
    b.add(base, base, scratch);
    b.li(shbase, shared as i64);
    b.li(seven, 7);
    b.li(i, ITERS);
    b.li(one, 1);
    b.li(zero, 0);
    b.li(v, 0x1234);
    let top = b.label();
    b.bind(top);
    // Forwarding hit: load depends on the store one instruction older.
    b.sd(v, base, 0);
    b.ld(w, base, 0);
    // Partial overlap: store slot 1, load slot 2 — same base register,
    // different addresses; the forwarding index must not match.
    b.sd(w, base, 8);
    b.ld(x, base, 16);
    // Shared word: all threads store the same constant, then load it back.
    b.sd(seven, shbase, 0);
    b.ld(y, shbase, 0);
    // Mix the loaded values so a wrong forward corrupts the register file.
    b.add(v, v, w);
    b.add(v, v, x);
    b.add(v, v, y);
    b.sd(v, base, 16);
    b.ld(x, base, 8);
    b.add(v, v, x);
    // Alternating branch over a store/load pair: two-bit counters mispredict
    // an even/odd pattern constantly, so the skipped store is regularly
    // fetched wrong-path, issues (its operands are long ready), completes,
    // and must be purged from the forwarding index on squash.
    let skip = b.label();
    b.andi(par, i, 1);
    b.beq(par, zero, skip);
    b.sd(seven, base, 24);
    b.ld(par, base, 24);
    b.add(v, v, par);
    b.bind(skip);
    b.addi(i, i, -1);
    b.bge(i, one, top);
    // Wrong-path tail: fetched after the backward branch every iteration,
    // squashed whenever the branch is taken; commits only on loop exit.
    b.sd(v, base, 24);
    b.ld(w, base, 24);
    b.sd(w, base, 0);
    b.halt();
    b.build(THREADS).expect("kernel fits a 4-thread window")
}

/// The pinned configurations: the default machine, a narrow scheduling unit
/// under LowestOnly commit (more window pressure, more squash overlap), and
/// the ConditionalSwitch fetch policy with a direct-mapped cache.
fn configs() -> [(&'static str, SimConfig); 3] {
    [
        ("default", SimConfig::default().with_threads(THREADS)),
        (
            "narrow-lowest",
            SimConfig::default()
                .with_threads(THREADS)
                .with_su_depth(16)
                .with_commit_policy(CommitPolicy::LowestOnly)
                .with_fetch_policy(FetchPolicy::MaskedRoundRobin),
        ),
        (
            "cswitch-dm",
            SimConfig::default()
                .with_threads(THREADS)
                .with_fetch_policy(FetchPolicy::ConditionalSwitch)
                .with_cache_kind(CacheKind::DirectMapped),
        ),
    ]
}

fn fingerprint() -> String {
    let program = forwarding_kernel();
    let mut out = String::new();
    for (key, config) in configs() {
        let mut sim = Simulator::new(config, &program);
        let stats = sim.run().expect("kernel terminates");
        assert!(
            stats.squashed > 0,
            "{key}: kernel is built to squash wrong-path stores"
        );
        writeln!(out, "{key} {stats:?}").expect("writing to a String cannot fail");
    }
    out
}

#[test]
fn forwarding_kernel_stats_match_goldens() {
    support::check_golden(GOLDEN_PATH, &fingerprint());
}

#[test]
fn forwarding_kernel_matches_functional_interpreter() {
    let program = forwarding_kernel();
    for (key, config) in configs() {
        let mut interp = Interp::new(&program, THREADS);
        interp.run().expect("interpreter terminates");
        let mut sim = Simulator::new(config, &program);
        sim.run().expect("kernel terminates");
        assert_eq!(
            sim.memory().words(),
            interp.mem_words(),
            "{key}: memory diverged"
        );
        assert_eq!(
            sim.reg_file(),
            interp.reg_file(),
            "{key}: registers diverged"
        );
    }
}
