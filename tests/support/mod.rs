//! Shared helpers for the integration-test binaries.

/// Compares `actual` against the committed golden file at `path`, reporting
/// the first divergent line (full-string asserts on hundred-column stat
/// lines are unreadable).
///
/// Run with `UPDATE_GOLDENS=1` to rewrite the golden file in place instead
/// of comparing — then inspect the diff and commit it together with an
/// explanation of why the machine's behavior legitimately changed.
///
/// # Panics
///
/// Panics when the golden is missing or differs (and `UPDATE_GOLDENS` is
/// not set), or when the file cannot be written (when it is).
pub fn check_golden(path: &str, actual: &str) {
    if std::env::var_os("UPDATE_GOLDENS").is_some_and(|v| v == "1") {
        let dir = std::path::Path::new(path)
            .parent()
            .expect("golden path has a parent");
        std::fs::create_dir_all(dir).expect("golden dir");
        std::fs::write(path, actual).expect("write goldens");
        eprintln!("updated golden: {path}");
        return;
    }
    let expected = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("golden file {path} unreadable ({e}) — run once with UPDATE_GOLDENS=1 and commit it")
    });
    if expected == actual {
        return;
    }
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        assert_eq!(
            e,
            a,
            "golden {} diverged at line {} (key `{}`); rerun with UPDATE_GOLDENS=1 \
             if the change is intentional",
            path,
            i + 1,
            a.split_whitespace().next().unwrap_or("?"),
        );
    }
    panic!(
        "golden {} line count differs: expected {}, got {}",
        path,
        expected.lines().count(),
        actual.lines().count()
    );
}
