//! Resumable parallel design-space sweep.
//!
//! A [`Grid`] declares the swept dimensions (workload × fetch policy ×
//! thread count × scheduling-unit depth × cache geometry); [`run_sweep`]
//! flattens it into cells and runs them across work-stealing workers. Every
//! finished cell is persisted to a content-addressed on-disk cache keyed by
//! the *identity* of the work — the stable hashes of the lowered
//! configuration and built program plus the code version — so re-running
//! the same sweep over the same directory re-executes only cells that are
//! missing or whose key no longer matches. The cache fails closed: a record
//! whose key or payload does not validate is discarded and its cell re-run.
//!
//! Long simulations additionally checkpoint their machine state every
//! `checkpoint_every` cycles (atomic tmp+rename, like every other write
//! here). A sweep killed mid-cell resumes that cell from its last snapshot;
//! because [`Simulator::restore`] is bit-identical to never having stopped,
//! the merged `results.json` of an interrupted-and-resumed sweep is
//! byte-identical to an uninterrupted one.
//!
//! Cells whose kernel cannot be lowered at a thread count, or whose program
//! names a register outside the shrunken per-thread window
//! ([`SimError::RegisterWindow`]), are recorded as `infeasible` rather than
//! aborting the sweep — the design space legitimately contains such points.
//!
//! Execution is *batched*: the flat cell list is planned into super-jobs of
//! up to `batch` cells that share one `(workload, threads)` pair — and
//! therefore one predecoded [`Program`] — and each worker interleaves the
//! `step()` loops of its super-job's cells in fixed quanta. Workers steal
//! whole super-jobs, so the grid costs one program build and one queue
//! claim per group instead of per cell. Batching is pure scheduling: every
//! cell still simulates on its own `Simulator`, so `results.json` and every
//! cache entry are byte-identical whatever `batch` is.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::{fmt, fs};

use smt_checkpoint::{Reader, Writer};
use smt_core::config::defaults;
use smt_core::{
    config_identity, program_identity, FetchPolicy, PredictorKind, SimConfig, SimError, Simulator,
    Snapshot,
};
use smt_corpus::Corpus;
use smt_isa::Program;
use smt_mem::CacheKind;
use smt_trace::{CpiBreakdown, CpiStack};
use smt_workloads::{workload, Scale, WorkloadKind};

use crate::json::object_to_json;
use crate::Cell;

/// One program source a cell can run: a built-in benchmark or a named
/// workload of the on-disk corpus ([`SweepOptions::corpus`]).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum WorkRef {
    /// A built-in benchmark.
    Builtin(WorkloadKind),
    /// A corpus workload, by manifest name.
    Corpus(String),
}

impl WorkRef {
    /// Display name: the builtin's canonical name, or the corpus name
    /// (corpus names are already lowercase by manifest rule).
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            WorkRef::Builtin(k) => k.name().to_string(),
            WorkRef::Corpus(n) => n.clone(),
        }
    }

    /// The lowercase spelling used inside cell ids.
    #[must_use]
    pub fn id_part(&self) -> String {
        self.name().to_lowercase()
    }

    /// Parses one name: built-in benchmarks match case-insensitively,
    /// anything else that is a legal corpus identifier is a corpus
    /// reference (resolved against the attached corpus at run time).
    ///
    /// # Errors
    ///
    /// An explanation when `s` is neither.
    pub fn parse(s: &str) -> Result<WorkRef, String> {
        if let Some(kind) = WorkloadKind::ALL
            .iter()
            .find(|k| k.name().eq_ignore_ascii_case(s))
        {
            return Ok(WorkRef::Builtin(*kind));
        }
        if smt_corpus::manifest::valid_name(s) {
            return Ok(WorkRef::Corpus(s.to_string()));
        }
        Err(format!(
            "workload {s:?} is neither a built-in benchmark nor a legal corpus name"
        ))
    }
}

impl From<WorkloadKind> for WorkRef {
    fn from(kind: WorkloadKind) -> Self {
        WorkRef::Builtin(kind)
    }
}

/// What a cell runs: one program on every thread (uniform — the
/// homogeneous-multitasking model of the paper), or one program *per*
/// thread (a heterogeneous mix, spelled `a+b` in ids and the serve
/// protocol). A mix's arity must equal the cell's thread count.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct WorkSpec {
    refs: Vec<WorkRef>,
}

impl WorkSpec {
    /// A uniform workload (every thread runs the same program).
    #[must_use]
    pub fn uniform(r: impl Into<WorkRef>) -> Self {
        WorkSpec {
            refs: vec![r.into()],
        }
    }

    /// A named corpus workload, uniform across threads.
    #[must_use]
    pub fn corpus(name: &str) -> Self {
        WorkSpec::uniform(WorkRef::Corpus(name.to_string()))
    }

    /// A heterogeneous per-thread mix. A single-element mix collapses
    /// to the uniform spec (the two are the same machine).
    #[must_use]
    pub fn mix(refs: Vec<WorkRef>) -> Self {
        assert!(!refs.is_empty(), "a work spec needs at least one program");
        WorkSpec { refs }
    }

    /// The per-thread program references (length 1 = uniform).
    #[must_use]
    pub fn refs(&self) -> &[WorkRef] {
        &self.refs
    }

    /// Whether this is a per-thread mix.
    #[must_use]
    pub fn is_mix(&self) -> bool {
        self.refs.len() > 1
    }

    /// Canonical display name: single name, or `'+'`-joined mix.
    #[must_use]
    pub fn name(&self) -> String {
        self.refs
            .iter()
            .map(WorkRef::name)
            .collect::<Vec<_>>()
            .join("+")
    }

    /// The lowercase `'+'`-joined spelling used inside cell ids.
    #[must_use]
    pub fn id_part(&self) -> String {
        self.refs
            .iter()
            .map(WorkRef::id_part)
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Parses `a` or `a+b+c` (the wire spelling of the serve protocol).
    ///
    /// # Errors
    ///
    /// An explanation when any component fails [`WorkRef::parse`].
    pub fn parse(s: &str) -> Result<WorkSpec, String> {
        let refs = s
            .split('+')
            .map(WorkRef::parse)
            .collect::<Result<Vec<_>, _>>()?;
        if refs.is_empty() {
            return Err("empty workload name".into());
        }
        Ok(WorkSpec { refs })
    }
}

impl From<WorkloadKind> for WorkSpec {
    fn from(kind: WorkloadKind) -> Self {
        WorkSpec::uniform(kind)
    }
}

impl fmt::Display for WorkSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// The declarative sweep space: the cross product of every field.
#[derive(Clone, Debug)]
pub struct Grid {
    /// Workloads to sweep: built-in benchmarks, corpus kernels, or
    /// per-thread mixes.
    pub workloads: Vec<WorkSpec>,
    /// Fetch policies.
    pub policies: Vec<FetchPolicy>,
    /// Branch-predictor families.
    pub predictors: Vec<PredictorKind>,
    /// Resident thread counts.
    pub threads: Vec<usize>,
    /// Threads fetched per cycle (fetch ports).
    pub fetch_threads: Vec<usize>,
    /// Fetch-block widths in instructions.
    pub fetch_widths: Vec<usize>,
    /// Scheduling-unit depths in entries.
    pub su_depths: Vec<usize>,
    /// Cache organizations.
    pub caches: Vec<CacheKind>,
    /// Speculation-depth limits (0 = unlimited).
    pub spec_depths: Vec<usize>,
}

impl Grid {
    /// Small grid for CI smoke runs: two benchmarks across every policy and
    /// thread count at the default machine point (24 cells, including the
    /// infeasible 8-thread corners if a kernel does not fit the partition).
    #[must_use]
    pub fn smoke() -> Self {
        Grid {
            workloads: vec![WorkloadKind::Sieve.into(), WorkloadKind::Ll3.into()],
            policies: POLICIES.to_vec(),
            predictors: vec![PredictorKind::SharedBtb],
            threads: vec![1, 2, 4, 8],
            fetch_threads: vec![1],
            fetch_widths: vec![defaults::FETCH_WIDTH],
            su_depths: vec![32],
            caches: vec![CacheKind::SetAssociative],
            spec_depths: vec![defaults::SPEC_DEPTH],
        }
    }

    /// The paper's full evaluation space.
    #[must_use]
    pub fn paper() -> Self {
        Grid {
            workloads: WorkloadKind::ALL.iter().map(|&k| k.into()).collect(),
            policies: POLICIES.to_vec(),
            predictors: vec![PredictorKind::SharedBtb],
            threads: vec![1, 2, 4, 6, 8],
            fetch_threads: vec![1],
            fetch_widths: vec![defaults::FETCH_WIDTH],
            su_depths: vec![16, 32, 48],
            caches: vec![CacheKind::SetAssociative, CacheKind::DirectMapped],
            spec_depths: vec![defaults::SPEC_DEPTH],
        }
    }

    /// The front-end design space beyond the paper: every fetch policy
    /// (including ICOUNT), every predictor family, one and two fetch ports,
    /// and 4- vs 8-wide fetch blocks, over the two workloads whose
    /// saturation knee moves the most (Matrix and LL7). Cells with more
    /// fetch ports than resident threads are legitimately infeasible.
    #[must_use]
    pub fn frontend() -> Self {
        Grid {
            workloads: vec![WorkloadKind::Matrix.into(), WorkloadKind::Ll7.into()],
            policies: vec![
                FetchPolicy::TrueRoundRobin,
                FetchPolicy::MaskedRoundRobin,
                FetchPolicy::ConditionalSwitch,
                FetchPolicy::Icount,
            ],
            predictors: PredictorKind::ALL.to_vec(),
            threads: vec![1, 2, 4, 8],
            fetch_threads: vec![1, 2],
            fetch_widths: vec![4, 8],
            su_depths: vec![32],
            caches: vec![CacheKind::SetAssociative],
            spec_depths: vec![defaults::SPEC_DEPTH],
        }
    }

    /// The heterogeneous-mix study: two corpus kernels solo (for the
    /// interference baselines), two 2-program mixes pairing a cache-hungry
    /// streamer with a compute-bound kernel, and one 4-program mix —
    /// each under round-robin and ICOUNT fetch so the fairness question
    /// has an answer in the same results file. Mixes only materialize at
    /// the thread count matching their arity ([`Grid::cells`] skips the
    /// rest), so the grid flattens to 14 cells.
    #[must_use]
    pub fn hetero() -> Self {
        let mpd = WorkRef::Builtin(WorkloadKind::Mpd);
        let ll7 = WorkRef::Builtin(WorkloadKind::Ll7);
        let matmul = WorkRef::Corpus("matmul".into());
        let memstress = WorkRef::Corpus("memstress".into());
        Grid {
            workloads: vec![
                WorkSpec::corpus("quicksort"),
                WorkSpec::corpus("matmul"),
                WorkSpec::mix(vec![mpd.clone(), matmul.clone()]),
                WorkSpec::mix(vec![memstress.clone(), ll7.clone()]),
                WorkSpec::mix(vec![mpd, matmul, memstress, ll7]),
            ],
            policies: vec![FetchPolicy::TrueRoundRobin, FetchPolicy::Icount],
            predictors: vec![PredictorKind::SharedBtb],
            threads: vec![2, 4],
            fetch_threads: vec![1],
            fetch_widths: vec![defaults::FETCH_WIDTH],
            su_depths: vec![32],
            caches: vec![CacheKind::SetAssociative],
            spec_depths: vec![defaults::SPEC_DEPTH],
        }
    }

    /// Flattens the grid into cells, in a deterministic order (workload
    /// outermost, cache geometry innermost). Per-thread mixes pair only
    /// with the thread count matching their arity — the other thread
    /// counts are not holes to record but points that do not exist.
    #[must_use]
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut out = Vec::new();
        for work in &self.workloads {
            for &policy in &self.policies {
                for &predictor in &self.predictors {
                    for &threads in &self.threads {
                        if work.is_mix() && work.refs().len() != threads {
                            continue;
                        }
                        for &fetch_threads in &self.fetch_threads {
                            for &fetch_width in &self.fetch_widths {
                                for &su_depth in &self.su_depths {
                                    for &cache in &self.caches {
                                        for &spec_depth in &self.spec_depths {
                                            out.push(CellSpec {
                                                work: work.clone(),
                                                policy,
                                                predictor,
                                                threads,
                                                fetch_threads,
                                                fetch_width,
                                                su_depth,
                                                cache,
                                                spec_depth,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

const POLICIES: [FetchPolicy; 3] = [
    FetchPolicy::TrueRoundRobin,
    FetchPolicy::MaskedRoundRobin,
    FetchPolicy::ConditionalSwitch,
];

/// One point of the sweep space.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CellSpec {
    /// What the threads run: one program, or one per thread.
    pub work: WorkSpec,
    /// Fetch policy.
    pub policy: FetchPolicy,
    /// Branch-predictor family.
    pub predictor: PredictorKind,
    /// Resident threads.
    pub threads: usize,
    /// Threads fetched per cycle.
    pub fetch_threads: usize,
    /// Fetch-block width in instructions.
    pub fetch_width: usize,
    /// Scheduling-unit depth in entries.
    pub su_depth: usize,
    /// Cache organization.
    pub cache: CacheKind,
    /// Speculation-depth limit: unresolved conditional branches a thread
    /// may have in flight before its fetch stalls (0 = unlimited).
    pub spec_depth: usize,
}

impl Default for CellSpec {
    /// The paper's default machine point running Sieve: every dimension
    /// matches what an absent field means in the serve protocol.
    fn default() -> Self {
        CellSpec {
            work: WorkloadKind::Sieve.into(),
            policy: FetchPolicy::default(),
            predictor: PredictorKind::default(),
            threads: defaults::THREADS,
            fetch_threads: defaults::FETCH_THREADS,
            fetch_width: defaults::FETCH_WIDTH,
            su_depth: defaults::SU_DEPTH,
            cache: CacheKind::default(),
            spec_depth: defaults::SPEC_DEPTH,
        }
    }
}

impl CellSpec {
    /// Lowers the spec to a full simulator configuration.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        SimConfig::default()
            .with_threads(self.threads)
            .with_fetch_policy(self.policy)
            .with_predictor(self.predictor)
            .with_fetch_threads(self.fetch_threads)
            .with_fetch_width(self.fetch_width)
            .with_su_depth(self.su_depth)
            .with_cache_kind(self.cache)
            .with_spec_depth(self.spec_depth)
    }

    /// Stable, filesystem-safe cell name, e.g. `sieve-trr-t4-su32-sa`.
    ///
    /// Front-end dimensions appear only when they differ from the default
    /// machine (`-gsh`/`-pbtb`, `-ft2`, `-fw8`), so every id from before
    /// those axes existed — and every cell cached under one — is unchanged.
    #[must_use]
    pub fn id(&self) -> String {
        let policy = match self.policy {
            FetchPolicy::TrueRoundRobin => "trr",
            FetchPolicy::MaskedRoundRobin => "mrr",
            FetchPolicy::ConditionalSwitch => "cs",
            FetchPolicy::Icount => "ic",
        };
        let cache = match self.cache {
            CacheKind::SetAssociative => "sa",
            CacheKind::DirectMapped => "dm",
        };
        let mut id = format!(
            "{}-{policy}-t{}-su{}-{cache}",
            self.work.id_part(),
            self.threads,
            self.su_depth,
        );
        if self.predictor != PredictorKind::SharedBtb {
            id.push('-');
            id.push_str(self.predictor.abbrev());
        }
        if self.fetch_threads != defaults::FETCH_THREADS {
            id.push_str(&format!("-ft{}", self.fetch_threads));
        }
        if self.fetch_width != defaults::FETCH_WIDTH {
            id.push_str(&format!("-fw{}", self.fetch_width));
        }
        if self.spec_depth != defaults::SPEC_DEPTH {
            id.push_str(&format!("-sd{}", self.spec_depth));
        }
        id
    }
}

impl fmt::Display for CellSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id())
    }
}

/// Terminal state of one cell.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CellStatus {
    /// Simulated to completion and verified against the workload checker.
    Done,
    /// The kernel does not fit this configuration point (lowering failed or
    /// the register window is too small) — a legitimate hole in the space.
    Infeasible,
}

impl CellStatus {
    /// Stable wire/cache spelling (`done` / `infeasible`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CellStatus::Done => "done",
            CellStatus::Infeasible => "infeasible",
        }
    }

    /// Inverse of [`as_str`](Self::as_str); anything else is `None`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "done" => Some(CellStatus::Done),
            "infeasible" => Some(CellStatus::Infeasible),
            _ => None,
        }
    }
}

/// One cell's persisted measurement (or infeasibility record).
#[derive(Clone, PartialEq, Debug)]
pub struct CellRecord {
    /// The cell's stable name ([`CellSpec::id`]).
    pub id: String,
    /// Code version the record was produced under.
    pub code_version: String,
    /// [`config_identity`] of the lowered configuration.
    pub config_hash: u64,
    /// [`program_identity`] of the built kernel; 0 when lowering failed.
    pub program_hash: u64,
    /// Terminal state.
    pub status: CellStatus,
    /// Total cycles (0 if infeasible).
    pub cycles: u64,
    /// Architecturally committed instructions (0 if infeasible).
    pub committed: u64,
    /// Instructions per cycle (0 if infeasible).
    pub ipc: f64,
    /// Data-cache hit rate in percent (0 if infeasible).
    pub hit_rate: f64,
    /// Branch-prediction accuracy in percent (0 if infeasible).
    pub branch_accuracy: f64,
    /// Scheduling-unit stall cycles (0 if infeasible).
    pub su_stalls: u64,
    /// Why the cell is infeasible; empty for done cells.
    pub reason: String,
}

impl CellRecord {
    /// Serializes the record as `key=value` lines (the cell-cache format;
    /// the repository has no JSON *parser*, so the cache uses a format that
    /// is trivial to read back).
    #[must_use]
    pub fn to_lines(&self) -> String {
        // Floats use `{:?}` (shortest round-trip form): a parsed-back value
        // is bit-equal to the original, so a cache hit serializes into
        // results.json byte-identically to a fresh run.
        format!(
            "id={}\ncode_version={}\nconfig_hash={:#018x}\nprogram_hash={:#018x}\n\
             status={}\ncycles={}\ncommitted={}\nipc={:?}\nhit_rate={:?}\n\
             branch_accuracy={:?}\nsu_stalls={}\nreason={}\n",
            self.id,
            self.code_version,
            self.config_hash,
            self.program_hash,
            self.status.as_str(),
            self.cycles,
            self.committed,
            self.ipc,
            self.hit_rate,
            self.branch_accuracy,
            self.su_stalls,
            self.reason.replace('\n', " "),
        )
    }

    /// Parses a record back from its `key=value` form. Any missing or
    /// malformed field yields `None` — the caller treats the record as
    /// absent and re-runs the cell (fail closed).
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        let mut kv = HashMap::new();
        for line in text.lines() {
            let (k, v) = line.split_once('=')?;
            kv.insert(k, v);
        }
        let hex = |k: &str| {
            kv.get(k)
                .and_then(|v| v.strip_prefix("0x"))
                .and_then(|v| u64::from_str_radix(v, 16).ok())
        };
        let int = |k: &str| kv.get(k).and_then(|v| v.parse::<u64>().ok());
        let float = |k: &str| kv.get(k).and_then(|v| v.parse::<f64>().ok());
        Some(CellRecord {
            id: (*kv.get("id")?).to_string(),
            code_version: (*kv.get("code_version")?).to_string(),
            config_hash: hex("config_hash")?,
            program_hash: hex("program_hash")?,
            status: CellStatus::parse(kv.get("status")?)?,
            cycles: int("cycles")?,
            committed: int("committed")?,
            ipc: float("ipc")?,
            hit_rate: float("hit_rate")?,
            branch_accuracy: float("branch_accuracy")?,
            su_stalls: int("su_stalls")?,
            reason: (*kv.get("reason")?).to_string(),
        })
    }

    /// The record as a JSON object (one element of `results.json`).
    #[must_use]
    pub fn to_json(&self, spec: &CellSpec) -> String {
        object_to_json(&[
            ("id", Cell::Text(self.id.clone())),
            ("workload", Cell::Text(spec.work.name())),
            ("policy", Cell::Text(format!("{:?}", spec.policy))),
            ("predictor", Cell::Text(format!("{:?}", spec.predictor))),
            ("threads", Cell::Int(spec.threads as u64)),
            ("fetch_threads", Cell::Int(spec.fetch_threads as u64)),
            ("fetch_width", Cell::Int(spec.fetch_width as u64)),
            ("su_depth", Cell::Int(spec.su_depth as u64)),
            ("cache", Cell::Text(format!("{:?}", spec.cache))),
            ("spec_depth", Cell::Int(spec.spec_depth as u64)),
            (
                "config_hash",
                Cell::Text(format!("{:#018x}", self.config_hash)),
            ),
            (
                "program_hash",
                Cell::Text(format!("{:#018x}", self.program_hash)),
            ),
            ("status", Cell::Text(self.status.as_str().to_string())),
            ("cycles", Cell::Int(self.cycles)),
            ("committed", Cell::Int(self.committed)),
            ("ipc", Cell::Float(self.ipc)),
            ("hit_rate", Cell::Float(self.hit_rate)),
            ("branch_accuracy", Cell::Float(self.branch_accuracy)),
            ("su_stalls", Cell::Int(self.su_stalls)),
            ("reason", Cell::Text(self.reason.clone())),
        ])
    }
}

/// Sweep knobs beyond the grid itself.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Problem scale the kernels are built at.
    pub scale: Scale,
    /// Worker threads (cells are work-stolen off a shared queue).
    pub workers: usize,
    /// Snapshot in-flight simulations every this many cycles; `None`
    /// disables mid-cell checkpointing (cells then resume from scratch).
    pub checkpoint_every: Option<u64>,
    /// Cache key component: records written under a different code version
    /// are invalid. Defaults to this crate's version; tests override it to
    /// prove stale caches fail closed.
    pub code_version: String,
    /// Cells per super-job; `None` lets the planner pick (see
    /// [`default_batch`]). `Some(1)` recovers strictly per-cell execution.
    pub batch: Option<usize>,
    /// The on-disk workload corpus, when one is attached. Cells that
    /// reference a corpus kernel by name resolve against this; without
    /// one, such cells record as infeasible with a "no corpus" reason.
    pub corpus: Option<Arc<Corpus>>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            scale: Scale::Paper,
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            checkpoint_every: None,
            code_version: env!("CARGO_PKG_VERSION").to_string(),
            batch: None,
            corpus: None,
        }
    }
}

/// What a sweep did, for reporting and for the resume tests.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SweepSummary {
    /// Cells in the grid.
    pub total: usize,
    /// Cells actually simulated this invocation.
    pub executed: usize,
    /// Cells satisfied from the on-disk cache.
    pub cached: usize,
    /// Cells recorded infeasible (cached or fresh).
    pub infeasible: usize,
    /// Cells that resumed from a mid-flight snapshot instead of cycle 0.
    pub resumed: usize,
    /// Cycles stepped by this invocation (cache hits contribute nothing;
    /// a resumed cell counts only the cycles it actually re-simulated).
    pub simulated_cycles: u64,
    /// Cells-per-super-job the run actually used (the `--batch` value or
    /// the planner's choice).
    pub batch: usize,
    /// Where the merged results were written.
    pub results_path: PathBuf,
}

/// Planner default for cells per super-job: aim for at least four
/// super-jobs per worker so work stealing can still balance a skewed grid,
/// while letting big grids amortize one program build and queue claim over
/// many cells. [`plan_batches`] additionally never mixes programs within a
/// job, so the effective size is capped by each `(workload, threads)`
/// group.
#[must_use]
pub fn default_batch(cells: usize, workers: usize) -> usize {
    (cells / (workers.max(1) * 4)).max(1)
}

/// Plans the flat cell list into super-jobs: cells are grouped by
/// `(workload, threads)` — the key of [`Programs`], so every cell of a job
/// shares one built kernel — in first-appearance order, and each group is
/// chunked into jobs of at most `batch` cells. Returns indices into
/// `specs`; every index appears exactly once.
#[must_use]
pub fn plan_batches(specs: &[CellSpec], batch: usize) -> Vec<Vec<usize>> {
    let batch = batch.max(1);
    let mut groups: Vec<((WorkSpec, usize), Vec<usize>)> = Vec::new();
    for (i, s) in specs.iter().enumerate() {
        let key = (s.work.clone(), s.threads);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(i),
            None => groups.push((key, vec![i])),
        }
    }
    groups
        .into_iter()
        .flat_map(|(_, v)| {
            v.chunks(batch)
                .map(<[usize]>::to_vec)
                .collect::<Vec<Vec<usize>>>()
        })
        .collect()
}

/// The built kernel(s) of a cell — one program for a uniform workload,
/// one per thread for a mix — or why lowering failed at this thread
/// count.
pub(crate) type Built = Arc<Result<Vec<Program>, String>>;

/// Kernel memo shared by the workers: the program text depends only on
/// `(work, threads)` at a fixed scale, and both cache validation and
/// execution need it.
struct Programs {
    scale: Scale,
    corpus: Option<Arc<Corpus>>,
    built: Mutex<HashMap<(WorkSpec, usize), Built>>,
}

impl Programs {
    fn new(scale: Scale, corpus: Option<Arc<Corpus>>) -> Self {
        Programs {
            scale,
            corpus,
            built: Mutex::new(HashMap::new()),
        }
    }

    /// Builds one program reference. Built-ins take the thread count the
    /// partition must fit; corpus kernels are SPMD over a runtime thread
    /// id and assemble identically at every thread count.
    fn build_ref(&self, r: &WorkRef, threads: usize) -> Result<Program, String> {
        match r {
            WorkRef::Builtin(kind) => workload(*kind, self.scale)
                .build(threads)
                .map_err(|e| e.to_string()),
            WorkRef::Corpus(name) => {
                let corpus = self
                    .corpus
                    .as_deref()
                    .ok_or_else(|| format!("workload {name:?} needs a corpus (--corpus)"))?;
                let w = corpus
                    .get(name)
                    .ok_or_else(|| format!("no workload {name:?} in the corpus"))?;
                w.build(self.scale).map_err(|e| e.to_string())
            }
        }
    }

    fn get(&self, work: &WorkSpec, threads: usize) -> Built {
        let mut built = self.built.lock().expect("program memo poisoned");
        if let Some(b) = built.get(&(work.clone(), threads)) {
            return Arc::clone(b);
        }
        let result = if work.is_mix() {
            if work.refs().len() == threads {
                // Each mix slot is a single-threaded tenant of its own
                // address-space segment.
                work.refs()
                    .iter()
                    .map(|r| self.build_ref(r, 1))
                    .collect::<Result<Vec<_>, _>>()
            } else {
                Err(format!(
                    "mix of {} programs cannot run on {threads} threads",
                    work.refs().len()
                ))
            }
        } else {
            self.build_ref(&work.refs()[0], threads).map(|p| vec![p])
        };
        let b: Built = Arc::new(result);
        built.insert((work.clone(), threads), Arc::clone(&b));
        b
    }
}

/// Writes `bytes` to `path` atomically (tmp file + rename), so a kill at
/// any instant leaves either the old file or the new one — never a torn
/// write. The tmp name carries a process id and sequence number: within
/// one sweep workers touch distinct paths, but several *processes*
/// sharing a store (the serve daemon's scale-out mode) can produce the
/// same cell concurrently, and a shared tmp name would let one writer
/// rename away — or truncate under — the other's half-written file.
/// Orphaned tmp files from a killed writer are inert: nothing loads them.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let base = path.file_name().and_then(|n| n.to_str()).unwrap_or("write");
    let tmp = path.with_file_name(format!(
        "{base}.{}-{}.tmp",
        std::process::id(),
        SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
    ));
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path)
}

fn cell_path(out: &Path, id: &str) -> PathBuf {
    out.join("cells").join(format!("{id}.cell"))
}

fn ckpt_path(out: &Path, id: &str) -> PathBuf {
    out.join("ckpt").join(format!("{id}.ckpt"))
}

/// Persists one in-flight snapshot: the code version (snapshots do not
/// survive code changes) followed by the snapshot wire format, which
/// carries its own magic, version, identity hashes, and checksum.
fn save_ckpt(out: &Path, id: &str, code_version: &str, snap: &Snapshot) -> io::Result<()> {
    let mut w = Writer::new();
    w.put_bytes(code_version.as_bytes());
    w.put_bytes(&snap.to_bytes());
    write_atomic(&ckpt_path(out, id), &w.into_bytes())
}

/// Loads a cell's in-flight snapshot if one exists and was written under
/// the same code version. Any parse failure means "no checkpoint" — the
/// cell just starts from cycle 0, which is always correct.
fn load_ckpt(out: &Path, id: &str, code_version: &str) -> Option<Snapshot> {
    let bytes = fs::read(ckpt_path(out, id)).ok()?;
    let mut r = Reader::new(&bytes);
    let version = r.take_bytes().ok()?;
    if version != code_version.as_bytes() {
        return None;
    }
    let snap = Snapshot::from_bytes(r.take_bytes().ok()?).ok()?;
    r.finish().ok()?;
    Some(snap)
}

/// Writes a mid-flight snapshot for `spec` exactly as a killed invocation
/// would have left it. Test hook for the resume path: the next
/// [`run_sweep`] over `out` picks the cell up from this snapshot instead
/// of cycle 0 (and counts it in [`SweepSummary::resumed`]).
///
/// # Errors
///
/// Fails on filesystem errors creating the checkpoint directory or file.
pub fn plant_checkpoint(
    out: &Path,
    spec: &CellSpec,
    code_version: &str,
    snap: &Snapshot,
) -> io::Result<()> {
    fs::create_dir_all(out.join("ckpt"))?;
    save_ckpt(out, &spec.id(), code_version, snap)
}

/// Loads the cached record for `spec` if it exists and its full key —
/// code version, configuration hash, and program hash — matches what this
/// invocation would produce. Anything else is treated as a miss.
fn load_valid_cell(
    out: &Path,
    spec: &CellSpec,
    code_version: &str,
    config_hash: u64,
    program_hash: u64,
) -> Option<CellRecord> {
    let text = fs::read_to_string(cell_path(out, &spec.id())).ok()?;
    let rec = CellRecord::parse(&text)?;
    (rec.id == spec.id()
        && rec.code_version == code_version
        && rec.config_hash == config_hash
        && rec.program_hash == program_hash)
        .then_some(rec)
}

pub(crate) fn infeasible_record(
    spec: &CellSpec,
    code_version: &str,
    config_hash: u64,
    program_hash: u64,
    reason: String,
) -> CellRecord {
    CellRecord {
        id: spec.id(),
        code_version: code_version.to_string(),
        config_hash,
        program_hash,
        status: CellStatus::Infeasible,
        cycles: 0,
        committed: 0,
        ipc: 0.0,
        hit_rate: 0.0,
        branch_accuracy: 0.0,
        su_stalls: 0,
        reason,
    }
}

/// How many cycles one cell runs before its super-job rotates to the next
/// cell (and before a progress tick is emitted). Large enough that the
/// rotation is free against the per-cycle simulation cost, small enough
/// that a short cell finishes (and its cache entry lands on disk) without
/// waiting out a long sibling.
pub const BATCH_QUANTUM: u64 = 512;

/// One progress observation, emitted after every [`BATCH_QUANTUM`] cycles
/// a cell simulates (the `smt-serve` daemon forwards these to subscribed
/// clients as live telemetry).
#[derive(Clone, Copy, Debug)]
pub struct ProgressTick<'a> {
    /// The cell's stable id.
    pub id: &'a str,
    /// Current simulated cycle.
    pub cycle: u64,
    /// Instructions architecturally committed so far.
    pub committed: u64,
}

/// One cell mid-flight inside a super-job.
struct Running<'a> {
    spec: CellSpec,
    id: String,
    config: SimConfig,
    sim: Simulator<'a>,
    resumed: bool,
    /// Cycle the simulator held when this invocation picked the cell up
    /// (non-zero after a snapshot resume) — the delta to the final cycle is
    /// what this run actually simulated.
    start_cycle: u64,
    /// Live CPI-stack accountant, when the caller asked for telemetry.
    /// Only attached to cells starting at cycle 0: the accountant's slot
    /// invariant needs to observe every decode, so a snapshot resume (with
    /// instructions already in flight) runs untraced.
    cpi: Option<CpiStack>,
}

/// Per-cell outcome of scheduling one cell (or super-job of cells):
/// the record that was produced or fetched, plus how it was produced.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// The cell.
    pub spec: CellSpec,
    /// Its terminal record (identical whether simulated or cached).
    pub rec: CellRecord,
    /// Whether the cell was simulated (vs. satisfied from cache).
    pub ran: bool,
    /// Whether it resumed from a mid-flight snapshot.
    pub resumed: bool,
    /// Cycles this invocation stepped for the cell.
    pub stepped: u64,
    /// Live CPI-stack breakdown; present only when telemetry was
    /// requested and the cell actually simulated from cycle 0.
    pub cpi: Option<CpiBreakdown>,
}

/// The reusable scheduling core of the sweep engine: one result-store
/// directory plus the execution knobs and the shared program memo.
///
/// Everything that executes cells — the batch `sweep` binary through
/// [`run_sweep`], and the `smt-serve` daemon's worker pool — goes through
/// this handle, so the cache-first/resume/infeasibility semantics (and
/// therefore the produced bytes) are identical no matter who asks. The
/// handle is `Sync`: workers share one `&Scheduler` across threads, and
/// multiple *processes* can safely share one store directory because every
/// write is atomic tmp+rename.
pub struct Scheduler {
    out: PathBuf,
    opts: SweepOptions,
    programs: Programs,
}

impl Scheduler {
    /// Opens (creating if needed) the store layout under `out`.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors creating the `cells`/`ckpt`
    /// subdirectories.
    pub fn new(out: &Path, opts: SweepOptions) -> io::Result<Self> {
        fs::create_dir_all(out.join("cells"))?;
        fs::create_dir_all(out.join("ckpt"))?;
        Ok(Scheduler {
            out: out.to_path_buf(),
            programs: Programs::new(opts.scale, opts.corpus.clone()),
            opts,
        })
    }

    /// Checks that every program reference of `work` can resolve under
    /// this scheduler — builtin names always do; corpus names need an
    /// attached corpus that knows them. The serve daemon calls this at
    /// admission so a typo'd workload name becomes a typed protocol error
    /// instead of an infeasible record polluting the shared store.
    ///
    /// # Errors
    ///
    /// An explanation naming the unresolvable reference.
    pub fn resolve(&self, work: &WorkSpec) -> Result<(), String> {
        for r in work.refs() {
            if let WorkRef::Corpus(name) = r {
                let corpus = self
                    .opts
                    .corpus
                    .as_deref()
                    .ok_or_else(|| format!("workload {name:?} needs a corpus (--corpus)"))?;
                if corpus.get(name).is_none() {
                    return Err(format!(
                        "no workload {name:?} in the corpus (have: {})",
                        corpus.names().collect::<Vec<_>>().join(", ")
                    ));
                }
            }
        }
        Ok(())
    }

    /// The execution knobs this scheduler runs with.
    #[must_use]
    pub fn opts(&self) -> &SweepOptions {
        &self.opts
    }

    /// The store directory.
    #[must_use]
    pub fn out(&self) -> &Path {
        &self.out
    }

    /// The identity hashes a record for `spec` must carry to be valid
    /// under this scheduler: `(config hash, program hash)`. Builds (or
    /// reuses the memoized) program; a kernel that fails to lower hashes
    /// as 0, exactly as its infeasible record is written.
    pub(crate) fn identities(&self, spec: &CellSpec) -> (u64, u64, Built) {
        let built = self.programs.get(&spec.work, spec.threads);
        let program_hash = match built.as_ref() {
            // A uniform cell hashes its single program exactly as before
            // mixes existed (existing caches stay valid); a mix hashes
            // the ordered vector of per-program identities.
            Ok(ps) => match ps.as_slice() {
                [p] => program_identity(p),
                ps => smt_checkpoint::stable_hash(
                    &ps.iter().map(program_identity).collect::<Vec<u64>>(),
                ),
            },
            Err(_) => 0,
        };
        (config_identity(&spec.config()), program_hash, built)
    }

    /// Cache-only lookup: the cell's record if the store holds one whose
    /// full key (code version, config hash, program hash) matches what
    /// this scheduler would produce. Never simulates.
    #[must_use]
    pub fn probe(&self, spec: &CellSpec) -> Option<CellRecord> {
        let (config_hash, program_hash, _) = self.identities(spec);
        load_valid_cell(
            &self.out,
            spec,
            &self.opts.code_version,
            config_hash,
            program_hash,
        )
    }

    /// Produces one cell: from cache if valid, else by simulation
    /// (resuming from a mid-flight snapshot when one exists). `on_tick`
    /// fires after every [`BATCH_QUANTUM`] simulated cycles; `cpi`
    /// requests a live CPI-stack breakdown on freshly simulated cells.
    ///
    /// # Panics
    ///
    /// Panics if the simulation faults, exceeds its cycle watchdog, fails
    /// its workload check, or the store is unwritable — the same contract
    /// as the batch sweep, whose results must never contain broken runs.
    pub fn run_cell(
        &self,
        spec: &CellSpec,
        cpi: bool,
        on_tick: &mut dyn FnMut(ProgressTick<'_>),
    ) -> CellOutcome {
        self.run_batch(&[0], std::slice::from_ref(spec), cpi, on_tick)
            .pop()
            .expect("a one-cell batch produces one outcome")
    }

    /// Steps `cell` for up to one quantum, checkpointing on the same
    /// cadence a dedicated per-cell loop would. Returns whether the cell
    /// finished.
    fn advance(&self, cell: &mut Running<'_>, on_tick: &mut dyn FnMut(ProgressTick<'_>)) -> bool {
        let id = &cell.id;
        for _ in 0..BATCH_QUANTUM {
            if cell.sim.finished() {
                break;
            }
            assert!(
                cell.sim.cycle() < cell.sim.config().max_cycles,
                "{id}: watchdog: exceeded {} cycles",
                cell.sim.config().max_cycles
            );
            match cell.cpi.as_mut() {
                Some(stack) => cell.sim.step_traced(stack),
                None => cell.sim.step(),
            }
            .unwrap_or_else(|e| panic!("{id}: simulation failed: {e}"));
            if let Some(every) = self.opts.checkpoint_every {
                if cell.sim.cycle() % every == 0 && !cell.sim.finished() {
                    save_ckpt(
                        &self.out,
                        id,
                        &self.opts.code_version,
                        &cell.sim.checkpoint(),
                    )
                    .unwrap_or_else(|e| panic!("{id}: cannot write checkpoint: {e}"));
                }
            }
        }
        on_tick(ProgressTick {
            id,
            cycle: cell.sim.cycle(),
            committed: cell.sim.stats().committed_total(),
        });
        cell.sim.finished()
    }

    /// Verifies one program's architectural answer against the memory
    /// words of its (possibly thread-local) address space.
    pub(crate) fn check_ref(&self, r: &WorkRef, words: &[u64]) -> Result<(), String> {
        match r {
            WorkRef::Builtin(kind) => workload(*kind, self.opts.scale)
                .check(words)
                .map_err(|e| e.to_string()),
            WorkRef::Corpus(name) => {
                let corpus = self
                    .opts
                    .corpus
                    .as_deref()
                    .ok_or_else(|| format!("workload {name:?} needs a corpus"))?;
                let w = corpus
                    .get(name)
                    .ok_or_else(|| format!("no workload {name:?} in the corpus"))?;
                w.verify(words, self.opts.scale)
            }
        }
    }

    /// Drains a finished cell: finalizes statistics, verifies the
    /// architectural answer, drops the now-dead snapshot, and builds the
    /// record. Returns `(record, cycles simulated, cpi breakdown)`.
    fn finalize(
        &self,
        mut cell: Running<'_>,
        program_hash: u64,
    ) -> (CellRecord, u64, Option<CpiBreakdown>) {
        let id = &cell.id;
        // The machine is drained; `run` performs no steps and finalizes
        // the statistics (cache counters, FU busy cycles).
        let stats = cell
            .sim
            .run()
            .unwrap_or_else(|e| panic!("{id}: finalize failed: {e}"));
        let words = cell.sim.memory().words();
        if cell.spec.work.is_mix() {
            // Every tenant is verified against its own address-space
            // segment, exactly as if it had run alone.
            for (tid, r) in cell.spec.work.refs().iter().enumerate() {
                let (base, span) = cell.sim.thread_segment(tid);
                let local = &words[(base / 8) as usize..((base + span) / 8) as usize];
                self.check_ref(r, local)
                    .unwrap_or_else(|e| panic!("{id}: thread {tid} wrong answer: {e}"));
            }
        } else {
            self.check_ref(&cell.spec.work.refs()[0], words)
                .unwrap_or_else(|e| panic!("{id}: wrong answer: {e}"));
        }
        let _ = fs::remove_file(ckpt_path(&self.out, id));
        let rec = CellRecord {
            id: cell.id.clone(),
            code_version: self.opts.code_version.clone(),
            config_hash: config_identity(&cell.config),
            program_hash,
            status: CellStatus::Done,
            cycles: stats.cycles,
            committed: stats.committed_total(),
            ipc: stats.ipc(),
            hit_rate: stats.cache.hit_rate(),
            branch_accuracy: stats.branches.accuracy(),
            su_stalls: stats.su_stall_cycles,
            reason: String::new(),
        };
        (
            rec,
            stats.cycles - cell.start_cycle,
            cell.cpi.map(CpiStack::finish),
        )
    }

    /// Produces (from cache or by simulation) the records for one
    /// super-job: cells sharing a single built program, their `step()`
    /// loops interleaved in [`BATCH_QUANTUM`] slices on this one thread.
    fn run_batch(
        &self,
        idxs: &[usize],
        specs: &[CellSpec],
        cpi: bool,
        on_tick: &mut dyn FnMut(ProgressTick<'_>),
    ) -> Vec<CellOutcome> {
        let out = &self.out;
        let opts = &self.opts;
        let mut done = Vec::with_capacity(idxs.len());
        let mut running: Vec<Running> = Vec::new();
        // The planner groups by (workload, threads), so one memo lookup
        // serves the whole job.
        let first = &specs[idxs[0]];
        let (_, program_hash, built) = self.identities(first);
        let persist = |spec: &CellSpec, rec: CellRecord, resumed: bool, stepped: u64, cpi| {
            write_atomic(&cell_path(out, &spec.id()), rec.to_lines().as_bytes())
                .unwrap_or_else(|e| panic!("{}: cannot persist cell: {e}", spec.id()));
            CellOutcome {
                spec: spec.clone(),
                rec,
                ran: true,
                resumed,
                stepped,
                cpi,
            }
        };
        for &i in idxs {
            let spec = &specs[i];
            debug_assert_eq!((&spec.work, spec.threads), (&first.work, first.threads));
            let config = spec.config();
            let config_hash = config_identity(&config);
            if let Some(rec) =
                load_valid_cell(out, spec, &opts.code_version, config_hash, program_hash)
            {
                done.push(CellOutcome {
                    spec: spec.clone(),
                    rec,
                    ran: false,
                    resumed: false,
                    stepped: 0,
                    cpi: None,
                });
                continue;
            }
            let programs = match built.as_ref() {
                Err(e) => {
                    let rec = infeasible_record(
                        spec,
                        &opts.code_version,
                        config_hash,
                        0,
                        format!("kernel does not lower at {} threads: {e}", spec.threads),
                    );
                    done.push(persist(spec, rec, false, 0, None));
                    continue;
                }
                Ok(ps) => ps,
            };
            // Uniform cells replicate one program across the partition
            // (the pre-mix construction paths, so their snapshots and
            // identity hashes are unchanged); a mix places one
            // single-threaded program per thread.
            let mix: Vec<&Program> = programs.iter().collect();
            let id = spec.id();
            let restored = load_ckpt(out, &id, &opts.code_version).and_then(|snap| match mix[..] {
                [p] => Simulator::restore(config.clone(), p, &snap).ok(),
                _ => Simulator::restore_mix(config.clone(), &mix, &snap).ok(),
            });
            match restored {
                Some(sim) => running.push(Running {
                    spec: spec.clone(),
                    id,
                    config,
                    start_cycle: sim.cycle(),
                    sim,
                    resumed: true,
                    cpi: None,
                }),
                None => {
                    let fresh = match mix[..] {
                        [p] => Simulator::try_new(config.clone(), p),
                        _ => Simulator::try_new_mix(config.clone(), &mix),
                    };
                    match fresh {
                        Ok(sim) => running.push(Running {
                            spec: spec.clone(),
                            id,
                            cpi: cpi.then(|| CpiStack::new(config.trace_shape().width)),
                            config,
                            sim,
                            resumed: false,
                            start_cycle: 0,
                        }),
                        // Config rejections are holes in the space too: e.g.
                        // two fetch ports with a single resident thread.
                        Err(e @ (SimError::RegisterWindow { .. } | SimError::Config(_))) => {
                            let rec = infeasible_record(
                                spec,
                                &opts.code_version,
                                config_hash,
                                program_hash,
                                e.to_string(),
                            );
                            done.push(persist(spec, rec, false, 0, None));
                        }
                        Err(e) => panic!("{id}: simulator rejected the cell: {e}"),
                    }
                }
            }
        }
        // Interleave: rotate through the live cells one quantum at a
        // time. Completion order does not matter — run_sweep sorts by
        // cell id.
        while !running.is_empty() {
            let mut i = 0;
            while i < running.len() {
                if self.advance(&mut running[i], on_tick) {
                    let cell = running.swap_remove(i);
                    let resumed = cell.resumed;
                    let spec = cell.spec.clone();
                    let (rec, stepped, breakdown) = self.finalize(cell, program_hash);
                    done.push(persist(&spec, rec, resumed, stepped, breakdown));
                } else {
                    i += 1;
                }
            }
        }
        done
    }
}

/// Renders the merged results of a sweep: one JSON object per cell, sorted
/// by cell id, independent of worker scheduling — so equal inputs always
/// produce byte-equal files.
#[must_use]
pub fn results_json(cells: &[(CellSpec, CellRecord)]) -> String {
    let mut out = String::from("[\n");
    for (i, (spec, rec)) in cells.iter().enumerate() {
        out.push_str(&rec.to_json(spec));
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out.push('\n');
    out
}

/// Runs (or resumes) the sweep over `grid` into `out`, writing one cell
/// file per point plus a merged, deterministically ordered `results.json`.
///
/// # Errors
///
/// Fails on filesystem errors creating the output layout or writing the
/// merged results.
///
/// # Panics
///
/// Panics if any cell's simulation faults or fails its workload check.
pub fn run_sweep(grid: &Grid, out: &Path, opts: &SweepOptions) -> io::Result<SweepSummary> {
    let sched = Scheduler::new(out, opts.clone())?;
    let specs = grid.cells();
    let batch = opts
        .batch
        .unwrap_or_else(|| default_batch(specs.len(), opts.workers));
    let jobs = plan_batches(&specs, batch);
    let next = AtomicUsize::new(0);
    let executed = AtomicUsize::new(0);
    let cached = AtomicUsize::new(0);
    let resumed = AtomicUsize::new(0);
    let stepped = AtomicU64::new(0);
    let workers = opts.workers.clamp(1, jobs.len().max(1));
    // Work stealing: each worker repeatedly claims the next unclaimed
    // super-job, so a worker stuck on one long batch never strands the
    // queue.
    let mut cells: Vec<(CellSpec, CellRecord)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let (next, executed, cached, resumed, stepped) =
                    (&next, &executed, &cached, &resumed, &stepped);
                let (specs, jobs, sched) = (&specs, &jobs, &sched);
                s.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else { break };
                        for o in sched.run_batch(job, specs, false, &mut |_| {}) {
                            executed.fetch_add(usize::from(o.ran), Ordering::Relaxed);
                            cached.fetch_add(usize::from(!o.ran), Ordering::Relaxed);
                            resumed.fetch_add(usize::from(o.resumed), Ordering::Relaxed);
                            stepped.fetch_add(o.stepped, Ordering::Relaxed);
                            mine.push((o.spec, o.rec));
                        }
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    cells.sort_by(|a, b| a.1.id.cmp(&b.1.id));
    let results_path = out.join("results.json");
    write_atomic(&results_path, results_json(&cells).as_bytes())?;
    Ok(SweepSummary {
        total: specs.len(),
        executed: executed.into_inner(),
        cached: cached.into_inner(),
        infeasible: cells
            .iter()
            .filter(|(_, r)| r.status == CellStatus::Infeasible)
            .count(),
        resumed: resumed.into_inner(),
        simulated_cycles: stepped.into_inner(),
        batch,
        results_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CellSpec {
        CellSpec {
            work: WorkloadKind::Sieve.into(),
            policy: FetchPolicy::TrueRoundRobin,
            predictor: PredictorKind::SharedBtb,
            threads: 4,
            fetch_threads: 1,
            fetch_width: 4,
            su_depth: 32,
            cache: CacheKind::SetAssociative,
            spec_depth: 0,
        }
    }

    #[test]
    fn cell_ids_encode_every_dimension() {
        assert_eq!(spec().id(), "sieve-trr-t4-su32-sa");
        assert_eq!(
            CellSpec {
                spec_depth: 2,
                ..spec()
            }
            .id(),
            "sieve-trr-t4-su32-sa-sd2",
            "the limit appears only when engaged, so existing ids are stable"
        );
        let other = CellSpec {
            policy: FetchPolicy::ConditionalSwitch,
            cache: CacheKind::DirectMapped,
            threads: 8,
            su_depth: 16,
            work: WorkloadKind::Ll12.into(),
            ..spec()
        };
        assert_eq!(other.id(), "ll12-cs-t8-su16-dm");
    }

    #[test]
    fn mix_and_corpus_specs_spell_their_ids_with_plus_joins() {
        let solo = CellSpec {
            work: WorkSpec::corpus("quicksort"),
            threads: 2,
            ..spec()
        };
        assert_eq!(solo.id(), "quicksort-trr-t2-su32-sa");
        let mixed = CellSpec {
            work: WorkSpec::mix(vec![
                WorkRef::Builtin(WorkloadKind::Mpd),
                WorkRef::Corpus("matmul".into()),
            ]),
            threads: 2,
            policy: FetchPolicy::Icount,
            ..spec()
        };
        assert_eq!(mixed.id(), "mpd+matmul-ic-t2-su32-sa");
    }

    #[test]
    fn work_specs_parse_their_own_spelling() {
        for s in ["sieve", "quicksort", "mpd+matmul", "memstress+ll7"] {
            let w = WorkSpec::parse(s).expect(s);
            assert_eq!(w.id_part(), s, "parse/id round trip");
        }
        assert_eq!(
            WorkSpec::parse("SIEVE").unwrap().refs()[0],
            WorkRef::Builtin(WorkloadKind::Sieve),
            "builtins match case-insensitively"
        );
        assert!(WorkSpec::parse("not-a-name!").is_err());
        assert!(WorkSpec::parse("sieve+").is_err(), "empty mix slot");
    }

    #[test]
    fn hetero_grid_pairs_mixes_only_with_their_arity() {
        let cells = Grid::hetero().cells();
        // 2 solo workloads x 2 policies x {2,4} threads = 8 cells, plus
        // 2 two-program mixes and 1 four-program mix at 2 policies each.
        assert_eq!(cells.len(), 14);
        for c in &cells {
            if c.work.is_mix() {
                assert_eq!(c.work.refs().len(), c.threads);
            }
        }
        let ids: std::collections::HashSet<String> = cells.iter().map(CellSpec::id).collect();
        assert_eq!(ids.len(), cells.len(), "ids are unique");
    }

    #[test]
    fn front_end_dimensions_suffix_the_id_only_off_default() {
        let cell = CellSpec {
            policy: FetchPolicy::Icount,
            predictor: PredictorKind::Gshare,
            fetch_threads: 2,
            fetch_width: 8,
            ..spec()
        };
        assert_eq!(cell.id(), "sieve-ic-t4-su32-sa-gsh-ft2-fw8");
        let pbtb = CellSpec {
            predictor: PredictorKind::PartitionedBtb,
            ..spec()
        };
        assert_eq!(pbtb.id(), "sieve-trr-t4-su32-sa-pbtb");
    }

    #[test]
    fn grid_flattens_to_the_full_cross_product() {
        let g = Grid::smoke();
        let cells = g.cells();
        assert_eq!(cells.len(), 2 * 3 * 4);
        let ids: std::collections::HashSet<String> = cells.iter().map(CellSpec::id).collect();
        assert_eq!(ids.len(), cells.len(), "ids are unique");
    }

    #[test]
    fn frontend_grid_spans_the_new_axes_with_unique_ids() {
        let cells = Grid::frontend().cells();
        assert_eq!(cells.len(), 2 * 4 * 3 * 4 * 2 * 2);
        let ids: std::collections::HashSet<String> = cells.iter().map(CellSpec::id).collect();
        assert_eq!(ids.len(), cells.len(), "ids are unique");
    }

    #[test]
    fn batches_partition_the_grid_and_never_mix_programs() {
        let specs = Grid::smoke().cells();
        for batch in [1, 3, 100] {
            let jobs = plan_batches(&specs, batch);
            let mut seen: Vec<usize> = jobs.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..specs.len()).collect::<Vec<_>>());
            for job in &jobs {
                assert!(job.len() <= batch);
                let key = |i: &usize| (specs[*i].work.clone(), specs[*i].threads);
                assert!(job.iter().all(|i| key(i) == key(&job[0])));
            }
        }
    }

    #[test]
    fn default_batch_keeps_workers_oversubscribed() {
        // 990-cell paper grid on 8 workers: jobs stay well above 4/worker.
        let b = default_batch(990, 8);
        assert!(b >= 1 && 990 / b >= 8 * 4, "batch {b}");
        assert_eq!(default_batch(3, 8), 1, "tiny grids fall back to per-cell");
        assert_eq!(default_batch(0, 0), 1, "degenerate inputs still plan");
    }

    #[test]
    fn records_round_trip_through_the_cell_format() {
        let rec = CellRecord {
            id: spec().id(),
            code_version: "1.2.3".into(),
            config_hash: 0xdead_beef_0badu64,
            program_hash: 0x1234,
            status: CellStatus::Done,
            cycles: 987_654,
            committed: 123_456,
            ipc: 1.234_567_890_123,
            hit_rate: 99.017_234,
            branch_accuracy: 87.5,
            su_stalls: 42,
            reason: String::new(),
        };
        let parsed = CellRecord::parse(&rec.to_lines()).expect("round trip");
        assert_eq!(parsed, rec);
        // Bit-exact float round trip is what makes cache hits serialize
        // byte-identically into results.json.
        assert_eq!(parsed.ipc.to_bits(), rec.ipc.to_bits());
    }

    #[test]
    fn malformed_records_fail_closed() {
        assert_eq!(CellRecord::parse(""), None);
        assert_eq!(CellRecord::parse("id=x\nstatus=done"), None);
        let rec = infeasible_record(&spec(), "v", 1, 0, "no fit".into());
        let mangled = rec.to_lines().replace("status=infeasible", "status=maybe");
        assert_eq!(CellRecord::parse(&mangled), None);
    }

    #[test]
    fn reasons_survive_equals_signs_and_newlines() {
        let rec = infeasible_record(&spec(), "v", 1, 0, "window=21 < needed\nregs=32".into());
        let parsed = CellRecord::parse(&rec.to_lines()).expect("round trip");
        assert_eq!(parsed.reason, "window=21 < needed regs=32");
    }
}
