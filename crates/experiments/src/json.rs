//! Minimal JSON writer for the result tables.
//!
//! The container this repository builds in has no access to crates.io, so
//! the `--json` output of the `report` binary is serialized by hand. The
//! format mirrors what `serde_json::to_string_pretty` produced for the same
//! structures (two-space indent, `untagged` cells), keeping downstream
//! consumers of `results/*.json` working.

use std::fmt::Write as _;

use crate::{Cell, Row, Table};

/// Escapes a string per RFC 8259.
fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a float the way `serde_json` (ryu) does: shortest round-trip
/// representation, with a trailing `.0` kept on integral values. Non-finite
/// values serialize as `null`, matching `serde_json`'s lenient writers.
fn float_into(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e16 {
        let _ = write!(out, "{v:.1}");
    } else {
        let _ = write!(out, "{v}");
    }
}

fn cell_into(out: &mut String, cell: &Cell) {
    match cell {
        Cell::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Cell::Float(v) => float_into(out, *v),
        Cell::Text(s) => escape_into(out, s),
        Cell::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

fn row_into(out: &mut String, row: &Row, indent: usize) {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    let _ = write!(out, "{pad}{{\n{inner}\"label\": ");
    escape_into(out, &row.label);
    let _ = write!(out, ",\n{inner}\"values\": [");
    for (i, cell) in row.values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        cell_into(out, cell);
    }
    let _ = write!(out, "]\n{pad}}}");
}

fn table_into(out: &mut String, table: &Table, indent: usize) {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    let _ = write!(out, "{pad}{{\n{inner}\"id\": ");
    escape_into(out, &table.id);
    let _ = write!(out, ",\n{inner}\"title\": ");
    escape_into(out, &table.title);
    let _ = write!(out, ",\n{inner}\"columns\": [");
    for (i, c) in table.columns.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        escape_into(out, c);
    }
    let _ = write!(out, "],\n{inner}\"rows\": [\n");
    for (i, row) in table.rows.iter().enumerate() {
        row_into(out, row, indent + 2);
        out.push_str(if i + 1 < table.rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = write!(out, "{inner}]\n{pad}}}");
}

/// Serializes one table as pretty-printed JSON.
#[must_use]
pub fn table_to_json(table: &Table) -> String {
    let mut out = String::new();
    table_into(&mut out, table, 0);
    out
}

/// Serializes a slice of tables as a pretty-printed JSON array.
#[must_use]
pub fn tables_to_json(tables: &[Table]) -> String {
    let mut out = String::from("[\n");
    for (i, t) in tables.iter().enumerate() {
        table_into(&mut out, t, 1);
        out.push_str(if i + 1 < tables.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out
}

/// Serializes a flat string → number map (for the perf trajectory file).
#[must_use]
pub fn object_to_json(fields: &[(&str, Cell)]) -> String {
    let mut out = String::from("{\n");
    for (i, (k, v)) in fields.iter().enumerate() {
        out.push_str("  ");
        escape_into(&mut out, k);
        out.push_str(": ");
        cell_into(&mut out, v);
        out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_serialize_flat() {
        let row = Row {
            label: "r".into(),
            values: vec![Cell::Int(1), Cell::Float(0.5), Cell::Bool(false)],
        };
        let mut out = String::new();
        row_into(&mut out, &row, 0);
        assert!(out.contains("\"label\": \"r\""), "{out}");
        assert!(out.contains("[1, 0.5, false]"), "{out}");
    }

    #[test]
    fn bools_are_bare_literals() {
        let json = object_to_json(&[("on", Cell::Bool(true)), ("off", Cell::Bool(false))]);
        assert!(json.contains("\"on\": true"), "{json}");
        assert!(json.contains("\"off\": false"), "{json}");
        assert!(!json.contains("\"true\""), "{json}");
    }

    #[test]
    fn floats_keep_trailing_zero() {
        let mut out = String::new();
        float_into(&mut out, 100.0);
        assert_eq!(out, "100.0");
        out.clear();
        float_into(&mut out, 1.25);
        assert_eq!(out, "1.25");
        out.clear();
        float_into(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn tables_form_a_json_array() {
        let mut t = Table::new("Figure 0", "demo", &["a"]);
        t.push_row("r1", vec![Cell::Int(3)]);
        let json = tables_to_json(&[t.clone(), t]);
        assert!(json.starts_with("[\n"), "{json}");
        assert!(json.ends_with(']'), "{json}");
        assert_eq!(json.matches("\"Figure 0\"").count(), 2);
    }
}
