//! Minimal JSON writer, parser, and line-delimited stream framing.
//!
//! The container this repository builds in has no access to crates.io, so
//! the `--json` output of the `report` binary is serialized by hand. The
//! format mirrors what `serde_json::to_string_pretty` produced for the same
//! structures (two-space indent, `untagged` cells), keeping downstream
//! consumers of `results/*.json` working.
//!
//! The parser half ([`Value`], [`parse_value`]) exists for the `smt-serve`
//! wire protocol: one JSON object per `\n`-terminated line. It is strict
//! RFC 8259 with two protocol-motivated limits — nesting depth and line
//! length are bounded so adversarial input cannot recurse or buffer the
//! reader into the ground. [`JsonLineReader`]/[`write_json_line`] frame
//! values over any `Read`/`Write` (in practice a `TcpStream`), enforcing
//! those limits on the way in.
//!
//! Byte-identity note: numbers are serialized by [`float_into`] in the
//! shortest round-trip form and parsed back with Rust's correctly rounded
//! `str::parse`, so a float that travels `write → parse → write` is
//! byte-identical — the property the sweep server relies on to serve
//! cached cells that re-serialize into `results.json` exactly as a local
//! batch run would.

use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

use crate::{Cell, Row, Table};

/// Escapes a string per RFC 8259.
fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a float the way `serde_json` (ryu) does: shortest round-trip
/// representation, with a trailing `.0` kept on integral values. Non-finite
/// values serialize as `null`, matching `serde_json`'s lenient writers.
fn float_into(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e16 {
        let _ = write!(out, "{v:.1}");
    } else {
        let _ = write!(out, "{v}");
    }
}

fn cell_into(out: &mut String, cell: &Cell) {
    match cell {
        Cell::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Cell::Float(v) => float_into(out, *v),
        Cell::Text(s) => escape_into(out, s),
        Cell::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

fn row_into(out: &mut String, row: &Row, indent: usize) {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    let _ = write!(out, "{pad}{{\n{inner}\"label\": ");
    escape_into(out, &row.label);
    let _ = write!(out, ",\n{inner}\"values\": [");
    for (i, cell) in row.values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        cell_into(out, cell);
    }
    let _ = write!(out, "]\n{pad}}}");
}

fn table_into(out: &mut String, table: &Table, indent: usize) {
    let pad = "  ".repeat(indent);
    let inner = "  ".repeat(indent + 1);
    let _ = write!(out, "{pad}{{\n{inner}\"id\": ");
    escape_into(out, &table.id);
    let _ = write!(out, ",\n{inner}\"title\": ");
    escape_into(out, &table.title);
    let _ = write!(out, ",\n{inner}\"columns\": [");
    for (i, c) in table.columns.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        escape_into(out, c);
    }
    let _ = write!(out, "],\n{inner}\"rows\": [\n");
    for (i, row) in table.rows.iter().enumerate() {
        row_into(out, row, indent + 2);
        out.push_str(if i + 1 < table.rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = write!(out, "{inner}]\n{pad}}}");
}

/// Serializes one table as pretty-printed JSON.
#[must_use]
pub fn table_to_json(table: &Table) -> String {
    let mut out = String::new();
    table_into(&mut out, table, 0);
    out
}

/// Serializes a slice of tables as a pretty-printed JSON array.
#[must_use]
pub fn tables_to_json(tables: &[Table]) -> String {
    let mut out = String::from("[\n");
    for (i, t) in tables.iter().enumerate() {
        table_into(&mut out, t, 1);
        out.push_str(if i + 1 < tables.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out
}

/// Serializes a flat string → number map (for the perf trajectory file).
#[must_use]
pub fn object_to_json(fields: &[(&str, Cell)]) -> String {
    let mut out = String::from("{\n");
    for (i, (k, v)) in fields.iter().enumerate() {
        out.push_str("  ");
        escape_into(&mut out, k);
        out.push_str(": ");
        cell_into(&mut out, v);
        out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
    }
    out.push('}');
    out
}

/// Maximum nesting depth [`parse_value`] accepts. Deep enough for any
/// structure this repository exchanges, shallow enough that a crafted
/// `[[[[…]]]]` cannot exhaust the stack.
pub const MAX_DEPTH: usize = 32;

/// Maximum bytes in one protocol line (request or response). Oversized
/// lines are a typed error at the framing layer, never a buffered blob.
pub const MAX_LINE: usize = 1 << 20;

/// A parsed JSON value.
///
/// Numbers keep their lexical class: an integral token without `.`/`e`
/// that fits `i64` parses as [`Value::Int`], everything else as
/// [`Value::Float`]. Objects preserve key order (serialization is
/// insertion-ordered, like every writer in this module).
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integral number.
    Int(i64),
    /// Non-integral (or i64-overflowing) number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, in source key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other variants or a
    /// missing key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A non-negative integer payload, if this is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Any numeric payload as `f64` (ints convert losslessly up to 2^53).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(xs) => Some(xs),
            _ => None,
        }
    }

    /// Serializes compactly on one line (no interior newlines, so the
    /// result is always a legal protocol frame).
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Value::Float(v) => float_into(out, *v),
            Value::Str(s) => escape_into(out, s),
            Value::Array(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write_into(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        i64::try_from(v).map_or(Value::Float(v as f64), Value::Int)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Why a parse failed: a human-readable reason and the byte offset it was
/// detected at. The message is safe to echo back over the protocol.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// What went wrong.
    pub reason: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.reason, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing content (other than
/// whitespace) is an error.
///
/// # Errors
///
/// Returns a [`JsonError`] naming the defect and its byte offset for any
/// input that is not a single well-formed value within [`MAX_DEPTH`].
pub fn parse_value(src: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        src,
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    src: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &str) -> JsonError {
        JsonError {
            reason: reason.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.src[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat("null", Value::Null),
            Some(b't') => self.eat("true", Value::Bool(true)),
            Some(b'f') => self.eat("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.pos += 1; // consume '['
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.pos += 1; // consume '{'
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: runs of plain characters copy as one slice.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The slice boundaries sit on ASCII delimiters, so this is
            // always a char boundary of the UTF-8 source.
            out.push_str(&self.src[start..self.pos]);
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(_) => {
                    // Escape sequence.
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if !self.src[self.pos..].starts_with("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else if (0xdc00..0xe000).contains(&hi) {
                                return Err(self.err("unpaired surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                            // hex4 leaves pos past the digits; skip the
                            // shared `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
            }
        }
    }

    /// Reads exactly four hex digits, returning their value and leaving
    /// `pos` after them.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let digits = self
            .src
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let v = u32::from_str_radix(digits, 16)
            .map_err(|_| self.err("invalid unicode escape digits"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits()?;
        if int_digits > 1
            && self.bytes[start + usize::from(self.src.as_bytes()[start] == b'-')] == b'0'
        {
            return Err(self.err("leading zero"));
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = &self.src[start..self.pos];
        if integral {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }

    /// Consumes one or more digits.
    fn digits(&mut self) -> Result<usize, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected digit"));
        }
        Ok(self.pos - start)
    }
}

/// What [`JsonLineReader::next_value`] produced for one frame.
#[derive(Debug)]
pub enum Frame {
    /// A well-formed value.
    Value(Value),
    /// The line was not valid JSON (or not valid UTF-8); the reason is
    /// safe to echo back. The stream is still positioned on a line
    /// boundary, so the connection can continue.
    Malformed(String),
    /// The line exceeded [`MAX_LINE`] bytes. The reader does *not* skip
    /// the rest of the line (that could mean buffering an unbounded
    /// stream); the caller should report an error and drop the
    /// connection.
    Oversized,
}

/// Reads `\n`-delimited JSON values off any buffered byte stream,
/// enforcing the protocol's line-length cap before any allocation
/// proportional to attacker input.
pub struct JsonLineReader<R: BufRead> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: BufRead> JsonLineReader<R> {
    /// Wraps a buffered reader.
    pub fn new(inner: R) -> Self {
        JsonLineReader {
            inner,
            buf: Vec::new(),
        }
    }

    /// The wrapped reader.
    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    /// Reads the next frame. `Ok(None)` is a clean end-of-stream; blank
    /// lines are skipped.
    ///
    /// # Errors
    ///
    /// Propagates transport errors from the underlying reader.
    pub fn next_value(&mut self) -> io::Result<Option<Frame>> {
        loop {
            self.buf.clear();
            // Bounded read_until: pull from the BufRead's internal buffer
            // chunk by chunk so a line longer than MAX_LINE is detected
            // without ever holding more than MAX_LINE + one chunk.
            let mut saw_newline = false;
            while !saw_newline {
                let chunk = self.inner.fill_buf()?;
                if chunk.is_empty() {
                    break; // EOF
                }
                let take = match chunk.iter().position(|&b| b == b'\n') {
                    Some(i) => {
                        saw_newline = true;
                        i + 1
                    }
                    None => chunk.len(),
                };
                if self.buf.len() + take > MAX_LINE {
                    self.inner.consume(take);
                    return Ok(Some(Frame::Oversized));
                }
                self.buf.extend_from_slice(&chunk[..take]);
                self.inner.consume(take);
            }
            if self.buf.is_empty() {
                return Ok(None); // clean EOF
            }
            while matches!(self.buf.last(), Some(b'\n' | b'\r')) {
                self.buf.pop();
            }
            if self.buf.is_empty() {
                if saw_newline {
                    continue; // blank line: skip
                }
                return Ok(None);
            }
            let Ok(text) = std::str::from_utf8(&self.buf) else {
                return Ok(Some(Frame::Malformed("line is not valid UTF-8".into())));
            };
            return Ok(Some(match parse_value(text) {
                Ok(v) => Frame::Value(v),
                Err(e) => Frame::Malformed(e.to_string()),
            }));
        }
    }
}

/// Writes one value as a `\n`-terminated frame and flushes, so a peer
/// blocked on a read always sees the line.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_json_line<W: Write>(w: &mut W, v: &Value) -> io::Result<()> {
    let mut line = v.to_line();
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_serialize_flat() {
        let row = Row {
            label: "r".into(),
            values: vec![Cell::Int(1), Cell::Float(0.5), Cell::Bool(false)],
        };
        let mut out = String::new();
        row_into(&mut out, &row, 0);
        assert!(out.contains("\"label\": \"r\""), "{out}");
        assert!(out.contains("[1, 0.5, false]"), "{out}");
    }

    #[test]
    fn bools_are_bare_literals() {
        let json = object_to_json(&[("on", Cell::Bool(true)), ("off", Cell::Bool(false))]);
        assert!(json.contains("\"on\": true"), "{json}");
        assert!(json.contains("\"off\": false"), "{json}");
        assert!(!json.contains("\"true\""), "{json}");
    }

    #[test]
    fn floats_keep_trailing_zero() {
        let mut out = String::new();
        float_into(&mut out, 100.0);
        assert_eq!(out, "100.0");
        out.clear();
        float_into(&mut out, 1.25);
        assert_eq!(out, "1.25");
        out.clear();
        float_into(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn tables_form_a_json_array() {
        let mut t = Table::new("Figure 0", "demo", &["a"]);
        t.push_row("r1", vec![Cell::Int(3)]);
        let json = tables_to_json(&[t.clone(), t]);
        assert!(json.starts_with("[\n"), "{json}");
        assert!(json.ends_with(']'), "{json}");
        assert_eq!(json.matches("\"Figure 0\"").count(), 2);
    }

    #[test]
    fn parser_handles_the_core_grammar() {
        let v = parse_value(r#"{"a": [1, -2.5, true, null], "b": {"c": "x"}}"#).expect("parses");
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0], Value::Int(1));
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1],
            Value::Float(-2.5)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        assert_eq!(parse_value("42").unwrap(), Value::Int(42));
        assert_eq!(parse_value("1e3").unwrap(), Value::Float(1000.0));
    }

    #[test]
    fn parser_round_trips_escapes_and_unicode() {
        let v = parse_value(r#""a\"b\\c\ndé😀""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{e9}\u{1f600}"));
        // write → parse → write is a fixpoint.
        let line = v.to_line();
        assert_eq!(parse_value(&line).unwrap().to_line(), line);
    }

    #[test]
    fn parser_round_trips_shortest_form_floats_bit_exactly() {
        for &f in &[1.234_567_890_123_4, 0.1, 1.0 / 3.0, 2.5e-10, 1e300] {
            let mut line = String::new();
            float_into(&mut line, f);
            let Value::Float(back) = parse_value(&line).unwrap() else {
                panic!("{line} did not parse as a float");
            };
            assert_eq!(back.to_bits(), f.to_bits(), "{line}");
        }
        // Integral floats keep their `.0` and parse back as floats.
        assert_eq!(parse_value("100.0").unwrap(), Value::Float(100.0));
    }

    #[test]
    fn parser_rejects_malformed_input_with_offsets() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a" 1}"#,
            "tru",
            "01",
            "1.",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 lone\"",
            "[1] trailing",
            "nan",
            "--1",
            "\u{7}",
        ] {
            assert!(parse_value(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn parser_caps_nesting_depth() {
        let deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 2),
            "]".repeat(MAX_DEPTH + 2)
        );
        let err = parse_value(&deep).expect_err("too deep");
        assert!(err.reason.contains("deep"), "{err}");
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse_value(&ok).is_ok(), "at the cap still parses");
    }

    #[test]
    fn line_reader_frames_values_blank_lines_and_garbage() {
        let stream = b"{\"a\":1}\n\n   \nnot json\n[2]\n".to_vec();
        let mut r = JsonLineReader::new(std::io::Cursor::new(stream));
        let Frame::Value(v) = r.next_value().unwrap().unwrap() else {
            panic!("first frame is a value");
        };
        assert_eq!(v.get("a").unwrap(), &Value::Int(1));
        // Truly blank lines are skipped; a spaces-only line reaches the
        // parser and comes back malformed (empty input is not a value).
        let Frame::Malformed(_) = r.next_value().unwrap().unwrap() else {
            panic!("whitespace-only line is malformed JSON");
        };
        let Frame::Malformed(_) = r.next_value().unwrap().unwrap() else {
            panic!("garbage line is malformed");
        };
        let Frame::Value(v) = r.next_value().unwrap().unwrap() else {
            panic!("stream recovers on the next line");
        };
        assert_eq!(v.as_array().unwrap(), &[Value::Int(2)]);
        assert!(r.next_value().unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn line_reader_rejects_oversized_lines_without_buffering_them() {
        let mut stream = vec![b'['; MAX_LINE + 10];
        stream.push(b'\n');
        stream.extend_from_slice(b"{\"ok\":true}\n");
        let mut r = JsonLineReader::new(std::io::Cursor::new(stream));
        let Frame::Oversized = r.next_value().unwrap().unwrap() else {
            panic!("oversized line is flagged");
        };
    }

    #[test]
    fn final_line_without_newline_still_parses() {
        let mut r = JsonLineReader::new(std::io::Cursor::new(b"{\"a\":1}".to_vec()));
        let Frame::Value(v) = r.next_value().unwrap().unwrap() else {
            panic!("unterminated final line parses");
        };
        assert_eq!(v.get("a").unwrap(), &Value::Int(1));
        assert!(r.next_value().unwrap().is_none());
    }

    #[test]
    fn write_json_line_is_parse_inverse() {
        let v = Value::Object(vec![
            ("s".into(), Value::Str("x\ny".into())),
            ("n".into(), Value::Float(2.25)),
            ("i".into(), Value::Int(-3)),
            ("b".into(), Value::Bool(true)),
            ("z".into(), Value::Null),
            ("a".into(), Value::Array(vec![Value::Int(1)])),
        ]);
        let mut buf = Vec::new();
        write_json_line(&mut buf, &v).unwrap();
        assert!(buf.ends_with(b"\n"));
        let mut r = JsonLineReader::new(std::io::Cursor::new(buf));
        let Frame::Value(back) = r.next_value().unwrap().unwrap() else {
            panic!("round trip");
        };
        assert_eq!(back, v);
    }
}
