//! Pipeline-trace exporter: run one workload with the full `smt-trace`
//! instrumentation attached and emit the result in a viewer-ready format.
//!
//! ```text
//! trace --workload matrix --threads 4 --format cpistack
//! trace --workload ll7 --policy cond --format konata --out ll7.kanata
//! trace --workload sieve --window 100..400 --format chrome --out t.json
//! trace --workload matrix --policy icount --predictor gshare \
//!     --fetch-threads 2 --fetch-width 8
//! ```
//!
//! Formats:
//!
//! * `cpistack` (default) — the slot-bandwidth attribution table plus the
//!   occupancy histograms, printed as text;
//! * `konata` — pipeline-viewer text for [Konata](https://github.com/shioyadan/Konata);
//! * `chrome` — Chrome `trace_event` JSON for `chrome://tracing` / Perfetto.
//!
//! `--window a..b` restricts lifecycle recording to instructions decoded in
//! cycles `[a, b]` (and bounds the occupancy counter series to that span),
//! which keeps the export small on paper-scale runs. The architectural
//! result of the run is always verified against the workload's reference
//! checker before anything is written.

use std::io::Write as _;

use smt_core::{FetchPolicy, PredictorKind, SimConfig, Simulator};
use smt_trace::{export, Tracer};
use smt_workloads::{workload, Scale, WorkloadKind};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_workload(name: &str) -> WorkloadKind {
    WorkloadKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            let names: Vec<&str> = WorkloadKind::ALL.iter().map(|k| k.name()).collect();
            die(&format!(
                "unknown workload `{name}` (expected one of {})",
                names.join(", ")
            ))
        })
}

fn parse_policy(name: &str) -> FetchPolicy {
    match name.to_ascii_lowercase().as_str() {
        "trr" | "true-round-robin" => FetchPolicy::TrueRoundRobin,
        "mrr" | "masked-round-robin" => FetchPolicy::MaskedRoundRobin,
        "cond" | "conditional-switch" => FetchPolicy::ConditionalSwitch,
        "ic" | "icount" => FetchPolicy::Icount,
        other => die(&format!(
            "unknown fetch policy `{other}` (expected trr, mrr, cond, or icount)"
        )),
    }
}

fn parse_predictor(name: &str) -> PredictorKind {
    match name.to_ascii_lowercase().as_str() {
        "shared" | "shared-btb" => PredictorKind::SharedBtb,
        "gshare" => PredictorKind::Gshare,
        "partitioned" | "partitioned-btb" => PredictorKind::PartitionedBtb,
        other => die(&format!(
            "unknown predictor `{other}` (expected shared, gshare, or partitioned)"
        )),
    }
}

fn parse_window(spec: &str) -> (u64, u64) {
    let parse = |s: &str| {
        s.parse::<u64>()
            .unwrap_or_else(|_| die(&format!("--window bound `{s}` is not a cycle number")))
    };
    match spec.split_once("..") {
        Some((a, b)) if !a.is_empty() && !b.is_empty() => {
            let (start, end) = (parse(a), parse(b));
            if start > end {
                die(&format!("--window {spec} is empty (start > end)"));
            }
            (start, end)
        }
        _ => die(&format!("--window takes `start..end`, got `{spec}`")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("trace: {msg}");
    std::process::exit(2);
}

/// Lifecycle records kept when no `--window` bounds the run (youngest win).
const DEFAULT_CAP: usize = 1 << 20;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kind = parse_workload(&flag_value(&args, "--workload").unwrap_or_else(|| "matrix".into()));
    let policy = parse_policy(&flag_value(&args, "--policy").unwrap_or_else(|| "trr".into()));
    let threads: usize = flag_value(&args, "--threads").map_or(4, |s| {
        s.parse()
            .unwrap_or_else(|_| die("--threads takes a positive integer"))
    });
    let scale = match flag_value(&args, "--scale").as_deref() {
        None | Some("test") => Scale::Test,
        Some("paper") => Scale::Paper,
        Some(other) => die(&format!("unknown scale `{other}` (expected test or paper)")),
    };
    let window = flag_value(&args, "--window").map(|s| parse_window(&s));
    let format = flag_value(&args, "--format").unwrap_or_else(|| "cpistack".into());
    if !matches!(format.as_str(), "konata" | "chrome" | "cpistack") {
        die(&format!(
            "unknown format `{format}` (expected konata, chrome, or cpistack)"
        ));
    }
    let out_path = flag_value(&args, "--out");

    let w = workload(kind, scale);
    let program = w.build(threads).unwrap_or_else(|e| {
        die(&format!(
            "{} does not build at {threads} threads: {e}",
            w.name()
        ))
    });
    let predictor =
        flag_value(&args, "--predictor").map_or(PredictorKind::SharedBtb, |s| parse_predictor(&s));
    let fetch_threads: usize = flag_value(&args, "--fetch-threads").map_or(1, |s| {
        s.parse()
            .unwrap_or_else(|_| die("--fetch-threads takes a positive integer"))
    });
    let fetch_width: usize = flag_value(&args, "--fetch-width").map_or(4, |s| {
        s.parse()
            .unwrap_or_else(|_| die("--fetch-width takes a positive integer"))
    });
    let config = SimConfig::default()
        .with_threads(threads)
        .with_fetch_policy(policy)
        .with_predictor(predictor)
        .with_fetch_threads(fetch_threads)
        .with_fetch_width(fetch_width);
    if let Err(e) = config.validate() {
        die(&format!("invalid configuration: {e}"));
    }
    // The CPI stack wants the whole run; the lifecycle ring is the memory
    // bound when no window narrows it.
    let mut tracer = Tracer::new(config.trace_shape(), DEFAULT_CAP);
    if let Some((start, end)) = window {
        tracer = tracer.with_window(start, end);
    }

    let mut sim = Simulator::new(config, &program);
    let stats = sim
        .run_traced(&mut tracer)
        .unwrap_or_else(|e| die(&format!("simulation faulted: {e}")));
    w.check(sim.memory().words())
        .unwrap_or_else(|e| die(&format!("architectural result mismatch: {e}")));
    eprintln!(
        "[trace] {} x{threads} {policy:?}: {} cycles, IPC {:.3}, {} lifecycle records ({} dropped)",
        w.name(),
        stats.cycles,
        stats.ipc(),
        tracer.lifecycle.records().len(),
        tracer.lifecycle.dropped(),
    );

    let output = match format.as_str() {
        "konata" => export::konata::export(&tracer.lifecycle),
        "chrome" => export::chrome::export(&tracer.lifecycle, tracer.occupancy.series()),
        _ => {
            let occupancy = tracer.occupancy.render();
            let breakdown = tracer.into_breakdown();
            format!("{}\n{occupancy}", breakdown.render())
        }
    };
    match out_path {
        Some(path) => {
            let mut f = std::fs::File::create(&path)
                .unwrap_or_else(|e| die(&format!("cannot create {path}: {e}")));
            f.write_all(output.as_bytes())
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            eprintln!("[trace] wrote {path} ({} bytes)", output.len());
        }
        None => print!("{output}"),
    }
}
