//! Internal debugging aid: run a workload with tracing attached and, if it
//! fails to finish, dump the machine state *plus* the last-K-cycle
//! instruction lifecycles, the occupancy telemetry, and the CPI stack —
//! enough to see what the machine was doing when it wedged, not just where
//! it stopped.
//!
//! ```text
//! debug_stuck [ll3|ll5|laplace|sieve] [threads] [--cycles N] [--last K]
//! ```

use smt_core::{SimConfig, Simulator};
use smt_trace::Tracer;
use smt_workloads::{workload, Scale, WorkloadKind};

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kind = match args.first().map(String::as_str) {
        Some("ll3") => WorkloadKind::Ll3,
        Some("ll5") => WorkloadKind::Ll5,
        Some("laplace") => WorkloadKind::Laplace,
        _ => WorkloadKind::Sieve,
    };
    let threads: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let max_cycles = flag_value(&args, "--cycles").unwrap_or(200_000);
    let last_k = flag_value(&args, "--last").unwrap_or(64) as usize;

    let w = workload(kind, Scale::Test);
    let program = w.build(threads).unwrap();
    let config = SimConfig::default().with_threads(threads);
    // The ring keeps the youngest records, so a stuck run leaves exactly
    // the lifecycle window leading up to the wedge.
    let mut tracer = Tracer::new(config.trace_shape(), last_k);
    let mut sim = Simulator::new(config, &program);
    for _ in 0..max_cycles {
        if sim.finished() {
            println!("finished at cycle {}", sim.cycle());
            println!("{}", tracer.occupancy.render());
            println!("{}", tracer.into_breakdown().render());
            return;
        }
        sim.step_traced(&mut tracer).unwrap();
    }
    println!("STUCK at cycle {}:\n{}", sim.cycle(), sim.dump());
    println!(
        "last {} decoded instructions:\n{}",
        tracer.lifecycle.records().len(),
        tracer.lifecycle.render()
    );
    println!("{}", tracer.occupancy.render());
    println!("{}", tracer.into_breakdown().render());
}
