//! Internal debugging aid: run a workload for N cycles and dump state.
use smt_core::{SimConfig, Simulator};
use smt_workloads::{workload, Scale, WorkloadKind};

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("ll3") => WorkloadKind::Ll3,
        Some("ll5") => WorkloadKind::Ll5,
        Some("laplace") => WorkloadKind::Laplace,
        _ => WorkloadKind::Sieve,
    };
    let threads: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let w = workload(kind, Scale::Test);
    let program = w.build(threads).unwrap();
    let mut sim = Simulator::new(SimConfig::default().with_threads(threads), &program);
    for _ in 0..200_000u64 {
        if sim.finished() {
            println!("finished at cycle {}", sim.cycle());
            return;
        }
        sim.step().unwrap();
    }
    println!("STUCK:\n{}", sim.dump());
}
