//! Corpus conformance checker and heterogeneous-mix study.
//!
//! Default mode assembles every kernel in the on-disk workload corpus and
//! proves it sound: each program is oracle-verified (lockstep against the
//! functional reference) at 1, 2, and 4 threads, its architectural memory
//! is checked against the manifest's result predicate, every 2-kernel
//! pairing and one 4-way mix is verified under the per-thread mix oracle,
//! and each mixed run's per-thread memory segment is re-checked against
//! the owning kernel's predicate. Any failure exits nonzero.
//!
//! `--report` runs the cross-program interference / fairness study and
//! prints the markdown tables EXPERIMENTS.md embeds: per-thread IPC under
//! True Round Robin vs ICOUNT, solo-vs-mixed D-cache hit rates, and CPI
//! stacks per mix. Every reported number comes from a run whose final
//! memory passed the manifest predicates.
//!
//! ```text
//! cargo run --release -p smt-experiments --bin corpus_check -- --corpus corpus
//! cargo run --release -p smt-experiments --bin corpus_check -- \
//!     --corpus corpus --report --scale test
//! ```

use std::process::ExitCode;

use smt_core::{FetchPolicy, SimConfig, SimStats, Simulator};
use smt_corpus::{Corpus, CorpusWorkload};
use smt_isa::Program;
use smt_oracle::{verify, verify_mix};
use smt_trace::{CpiBreakdown, CpiStack, SlotCause};
use smt_workloads::Scale;

/// Generous for corpus kernels (tens of thousands of cycles at test
/// scale); a hung kernel fails fast instead of wedging CI.
const MAX_CYCLES: u64 = 50_000_000;

fn config(threads: usize, policy: FetchPolicy) -> SimConfig {
    SimConfig::default()
        .with_threads(threads)
        .with_fetch_policy(policy)
        .with_max_cycles(MAX_CYCLES)
}

/// Runs `programs[tid]` on thread `tid` and checks each thread's memory
/// segment against its kernel's manifest predicate. Returns the run's
/// stats and (optionally) the CPI stack.
fn run_mix_checked(
    kernels: &[&CorpusWorkload],
    programs: &[&Program],
    cfg: SimConfig,
    scale: Scale,
    want_cpi: bool,
) -> Result<(SimStats, Option<CpiBreakdown>), String> {
    let block = cfg.block_size as u32;
    let mut sim = Simulator::try_new_mix(cfg, programs).map_err(|e| e.to_string())?;
    let (stats, cpi) = if want_cpi {
        let mut cpi = CpiStack::new(block);
        let stats = sim.run_traced(&mut cpi).map_err(|e| e.to_string())?;
        (stats, Some(cpi.finish()))
    } else {
        (sim.run().map_err(|e| e.to_string())?, None)
    };
    let words = sim.memory().words();
    for (tid, kernel) in kernels.iter().enumerate() {
        let (base, span) = sim.thread_segment(tid);
        let local = &words[(base / 8) as usize..((base + span) / 8) as usize];
        kernel
            .verify(local, scale)
            .map_err(|e| format!("thread {tid} ({}): {e}", kernel.name()))?;
    }
    Ok((stats, cpi))
}

/// Solo-runs one kernel at one thread with the manifest check attached.
fn run_solo_checked(
    kernel: &CorpusWorkload,
    program: &Program,
    policy: FetchPolicy,
    scale: Scale,
) -> Result<SimStats, String> {
    let mut sim = Simulator::try_new(config(1, policy), program).map_err(|e| e.to_string())?;
    let stats = sim.run().map_err(|e| e.to_string())?;
    kernel
        .verify(sim.memory().words(), scale)
        .map_err(|e| format!("{}: {e}", kernel.name()))?;
    Ok(stats)
}

/// Conformance pass: every kernel solo at 1/2/4 threads under the
/// lockstep oracle and the manifest predicate, then every pair and one
/// 4-way mix under the mix oracle. Returns the number of verifications.
fn check(corpus: &Corpus, scale: Scale) -> Result<usize, String> {
    let mut runs = 0;
    let built: Vec<(&CorpusWorkload, Program)> = corpus
        .workloads()
        .iter()
        .map(|w| {
            w.build(scale)
                .map(|p| (w, p))
                .map_err(|e| format!("{}: {e}", w.name()))
        })
        .collect::<Result<_, _>>()?;

    for (kernel, program) in &built {
        for threads in [1usize, 2, 4] {
            verify(program, config(threads, FetchPolicy::TrueRoundRobin))
                .map_err(|d| format!("{} at {threads} threads: oracle: {d}", kernel.name()))?;
            runs += 1;
        }
        run_solo_checked(kernel, program, FetchPolicy::TrueRoundRobin, scale)?;
        runs += 1;
    }

    // Every unordered pair at 2 threads, plus the first four kernels as
    // one 4-way mix — each slot's commit stream checked against a solo
    // reference run of its own program, then the manifest predicates.
    let mut mixes: Vec<Vec<usize>> = Vec::new();
    for i in 0..built.len() {
        for j in i + 1..built.len() {
            mixes.push(vec![i, j]);
        }
    }
    if built.len() >= 4 {
        mixes.push(vec![0, 1, 2, 3]);
    }
    for mix in &mixes {
        let kernels: Vec<&CorpusWorkload> = mix.iter().map(|&i| built[i].0).collect();
        let programs: Vec<&Program> = mix.iter().map(|&i| &built[i].1).collect();
        let label = || {
            kernels
                .iter()
                .map(|k| k.name())
                .collect::<Vec<_>>()
                .join("+")
        };
        verify_mix(
            &programs,
            config(programs.len(), FetchPolicy::TrueRoundRobin),
        )
        .map_err(|d| format!("mix {}: oracle: {d}", label()))?;
        run_mix_checked(
            &kernels,
            &programs,
            config(programs.len(), FetchPolicy::TrueRoundRobin),
            scale,
            false,
        )
        .map_err(|e| format!("mix {}: {e}", label()))?;
        runs += 2;
    }
    Ok(runs)
}

/// The studied mixes: two 2-way and two 4-way slot lists over corpus
/// kernel names (arity fixes the thread count).
const STUDY_MIXES: [&[&str]; 4] = [
    &["quicksort", "matmul"],
    &["memstress", "chase"],
    &["quicksort", "matmul", "memstress", "chase"],
    &["matmul", "blur3", "primes", "quicksort"],
];

const POLICIES: [FetchPolicy; 2] = [FetchPolicy::TrueRoundRobin, FetchPolicy::Icount];

fn fmt_pct(x: f64) -> String {
    format!("{x:.1}")
}

/// Interference / fairness study over [`STUDY_MIXES`], emitted as the
/// markdown tables EXPERIMENTS.md embeds.
fn report(corpus: &Corpus, scale: Scale) -> Result<String, String> {
    use std::fmt::Write as _;
    let mut out = String::new();

    // Solo baselines (1 thread, TRR): hit rate and cycles per kernel.
    let mut solo: Vec<(&CorpusWorkload, Program, SimStats)> = Vec::new();
    for names in STUDY_MIXES {
        for name in names {
            if solo.iter().any(|(k, _, _)| k.name() == *name) {
                continue;
            }
            let kernel = corpus
                .get(name)
                .ok_or_else(|| format!("no workload {name} in the corpus"))?;
            let program = kernel.build(scale).map_err(|e| format!("{name}: {e}"))?;
            let stats = run_solo_checked(kernel, &program, FetchPolicy::TrueRoundRobin, scale)?;
            solo.push((kernel, program, stats));
        }
    }

    let _ = writeln!(out, "### Solo baselines (1 thread, TrueRR)\n");
    let _ = writeln!(out, "| Kernel | Cycles | IPC | D-cache hit rate |");
    let _ = writeln!(out, "|---|---|---|---|");
    for (kernel, _, stats) in &solo {
        let _ = writeln!(
            out,
            "| {} | {} | {:.2} | {} % |",
            kernel.name(),
            stats.cycles,
            stats.ipc(),
            fmt_pct(stats.cache.hit_rate()),
        );
    }

    let _ = writeln!(
        out,
        "\n### Mix fairness: per-thread IPC, TrueRR vs ICOUNT\n"
    );
    let _ = writeln!(
        out,
        "| Mix | T | Policy | IPC | Per-thread IPC | vs solo | min/max |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");

    let mut interference: Vec<String> = Vec::new();
    let mut stacks: Vec<String> = Vec::new();
    for names in STUDY_MIXES {
        let threads = names.len();
        let picked: Vec<&(&CorpusWorkload, Program, SimStats)> = names
            .iter()
            .map(|n| {
                solo.iter()
                    .find(|(k, _, _)| k.name() == *n)
                    .expect("solo pass covered every studied kernel")
            })
            .collect();
        let kernels: Vec<&CorpusWorkload> = picked.iter().map(|(k, _, _)| *k).collect();
        let programs: Vec<&Program> = picked.iter().map(|(_, p, _)| p).collect();
        let label = names.join("+");

        for policy in POLICIES {
            let (stats, cpi) =
                run_mix_checked(&kernels, &programs, config(threads, policy), scale, true)
                    .map_err(|e| format!("mix {label} under {policy}: {e}"))?;
            let per = stats.per_thread_ipc();
            let (lo, hi) = per.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &x| {
                (lo.min(x), hi.max(x))
            });
            let per_s = per
                .iter()
                .map(|x| format!("{x:.2}"))
                .collect::<Vec<_>>()
                .join(" / ");
            // Relative progress: each thread's share of throughput over
            // its solo IPC. Short kernels finish early and idle, so a low
            // ratio can mean "done", not "starved" — the cycle counts in
            // the solo table disambiguate.
            let rel_s = per
                .iter()
                .zip(&picked)
                .map(|(x, t)| format!("{:.2}", x / t.2.ipc()))
                .collect::<Vec<_>>()
                .join(" / ");
            let _ = writeln!(
                out,
                "| {label} | {threads} | {policy} | {:.2} | {per_s} | {rel_s} | {:.2} |",
                stats.ipc(),
                if hi > 0.0 { lo / hi } else { 0.0 },
            );

            if policy == FetchPolicy::TrueRoundRobin {
                // Interference row: mixed hit rate vs the solo runs'
                // pooled (access-weighted) hit rate.
                let (solo_hits, solo_accesses) = picked.iter().fold((0u64, 0u64), |(h, a), t| {
                    (h + t.2.cache.hits, a + t.2.cache.accesses)
                });
                let pooled = if solo_accesses == 0 {
                    0.0
                } else {
                    100.0 * solo_hits as f64 / solo_accesses as f64
                };
                let mixed = stats.cache.hit_rate();
                interference.push(format!(
                    "| {label} | {threads} | {} % | {} % | {:+.1} pp |",
                    fmt_pct(pooled),
                    fmt_pct(mixed),
                    mixed - pooled,
                ));
            }

            let cpi = cpi.expect("want_cpi was set");
            stacks.push(render_stack_row(&label, threads, policy, &cpi));
        }
    }

    let _ = writeln!(out, "\n### Cross-program D-cache interference (TrueRR)\n");
    let _ = writeln!(
        out,
        "| Mix | T | Pooled solo hit rate | Mixed hit rate | Interference |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    for row in &interference {
        let _ = writeln!(out, "{row}");
    }

    let _ = writeln!(out, "\n### Mix CPI stacks (share of fetch slots, %)\n");
    let _ = writeln!(
        out,
        "| Mix | T | Policy | CPI | committed | fragment | fetch-starve | sync | d-cache | squash | other |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|---|");
    for row in &stacks {
        let _ = writeln!(out, "{row}");
    }
    Ok(out)
}

/// One CPI-stack table row: the major slot-loss groups as percentages of
/// all fetch slots.
fn render_stack_row(label: &str, threads: usize, policy: FetchPolicy, b: &CpiBreakdown) -> String {
    let pct = |causes: &[SlotCause]| -> f64 { causes.iter().map(|&c| b.share_pct(c)).sum() };
    let committed = pct(&[SlotCause::Committed]);
    let fragment = pct(&[SlotCause::Fragment]);
    let starve = pct(&[SlotCause::FetchStarved]);
    let sync = pct(&[SlotCause::SyncWait]);
    let dcache = pct(&[SlotCause::DCacheMiss, SlotCause::DCachePort]);
    let squash = pct(&[SlotCause::SquashDiscard]);
    let other = (100.0 - committed - fragment - starve - sync - dcache - squash).max(0.0);
    format!(
        "| {label} | {threads} | {policy} | {:.2} | {} | {} | {} | {} | {} | {} | {} |",
        b.cpi(),
        fmt_pct(committed),
        fmt_pct(fragment),
        fmt_pct(starve),
        fmt_pct(sync),
        fmt_pct(dcache),
        fmt_pct(squash),
        fmt_pct(other),
    )
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = flag_value(&args, "--corpus").unwrap_or_else(|| "corpus".to_string());
    let scale = match flag_value(&args, "--scale").as_deref() {
        None | Some("test") => Scale::Test,
        Some("paper") => Scale::Paper,
        Some(other) => panic!("--scale takes test|paper, not {other}"),
    };
    let corpus = match Corpus::load(&dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("corpus_check: cannot load {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.iter().any(|a| a == "--report") {
        match report(&corpus, scale) {
            Ok(md) => {
                print!("{md}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("corpus_check: report failed: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        match check(&corpus, scale) {
            Ok(runs) => {
                println!(
                    "corpus_check: {} kernels, {runs} verified runs (solo oracle at 1/2/4 \
                     threads, all pairs + one 4-way mix under the mix oracle), all clean",
                    corpus.workloads().len(),
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("corpus_check: FAILED: {e}");
                ExitCode::FAILURE
            }
        }
    }
}
