//! Resumable parallel design-space sweep over a declarative grid.
//!
//! Every finished cell lands in `<out>/cells/` keyed by the stable hashes
//! of its configuration and program plus the code version; in-flight
//! simulations snapshot to `<out>/ckpt/` every `--checkpoint-every`
//! cycles. Re-running the same command over the same `--out` directory is
//! the resume path: cached cells are reused, half-finished cells continue
//! from their last snapshot, and the merged `results.json` comes out
//! byte-identical to an uninterrupted run.
//!
//! Workers execute super-jobs of up to `--batch` cells sharing one built
//! program (default: planner-sized from the grid and worker count);
//! batching only affects scheduling, never results.
//!
//! ```text
//! cargo run --release -p smt-experiments --bin sweep -- --out target/sweep
//! cargo run --release -p smt-experiments --bin sweep -- \
//!     --out target/sweep --grid smoke --scale test --checkpoint-every 5000
//! cargo run --release -p smt-experiments --bin sweep -- \
//!     --out target/hetero --grid hetero --scale test
//! ```
//!
//! `--grid hetero` sweeps corpus kernels and heterogeneous per-thread
//! mixes; it loads the workload corpus from `corpus/` unless `--corpus
//! <dir>` points elsewhere.
//!
//! `--search <workload>` switches from exhaustive sweeping to the
//! deterministic Pareto search: seeded hill climbing over the
//! microarchitectural axes, maximizing IPC against the hardware-cost
//! model, with warm-forked measurements by default (`--warmup 0` forces
//! exact cold runs). It writes `search_trajectory.json` (byte-identical
//! across re-runs) and `search_frontier.json` into `--out`:
//!
//! ```text
//! cargo run --release -p smt-experiments --bin sweep -- \
//!     --out target/search --search sieve --threads 4 --seed 7 \
//!     --warmup 20000 --space full --scale test
//! ```

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use smt_corpus::Corpus;
use smt_experiments::explore::{run_search, EvalMode, SearchSpace};
use smt_experiments::sweep::{run_sweep, Grid, Scheduler, SweepOptions, WorkSpec};
use smt_search::SearchParams;
use smt_workloads::Scale;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out = PathBuf::from(
        flag_value(&args, "--out").expect("--out <dir> is required (cache and results live there)"),
    );
    let grid_name = flag_value(&args, "--grid");
    let grid = match grid_name.as_deref() {
        None | Some("smoke") => Grid::smoke(),
        Some("paper") => Grid::paper(),
        Some("frontend") => Grid::frontend(),
        Some("hetero") => Grid::hetero(),
        Some(other) => panic!("--grid takes smoke|paper|frontend|hetero, not {other}"),
    };
    let scale = match flag_value(&args, "--scale").as_deref() {
        None | Some("test") => Scale::Test,
        Some("paper") => Scale::Paper,
        Some(other) => panic!("--scale takes test|paper, not {other}"),
    };
    let mut opts = SweepOptions {
        scale,
        ..SweepOptions::default()
    };
    if let Some(w) = flag_value(&args, "--workers") {
        opts.workers = w.parse().expect("--workers takes a positive integer");
        assert!(opts.workers > 0, "--workers takes a positive integer");
    }
    if let Some(n) = flag_value(&args, "--checkpoint-every") {
        let n: u64 = n.parse().expect("--checkpoint-every takes a cycle count");
        assert!(n > 0, "--checkpoint-every takes a positive cycle count");
        opts.checkpoint_every = Some(n);
    }
    // Cells per super-job; unset, the planner sizes jobs from the grid and
    // worker count. `--batch 1` forces strictly per-cell execution.
    if let Some(b) = flag_value(&args, "--batch") {
        let b: usize = b.parse().expect("--batch takes a positive cell count");
        assert!(b > 0, "--batch takes a positive cell count");
        opts.batch = Some(b);
    }
    // Normally the crate version; overridable so the stale-cache path can
    // be exercised from the command line.
    if let Some(v) = flag_value(&args, "--code-version") {
        opts.code_version = v;
    }
    // The hetero grid names corpus kernels, so it defaults the corpus to
    // the repository's `corpus/` directory; any grid accepts an explicit
    // `--corpus <dir>`.
    let corpus_dir = flag_value(&args, "--corpus")
        .or_else(|| matches!(grid_name.as_deref(), Some("hetero")).then(|| "corpus".to_string()));
    if let Some(dir) = corpus_dir {
        let corpus = Corpus::load(&dir)
            .unwrap_or_else(|e| panic!("--corpus {dir}: cannot load the workload corpus: {e}"));
        opts.corpus = Some(Arc::new(corpus));
    }

    if let Some(workload) = flag_value(&args, "--search") {
        let work = WorkSpec::parse(&workload).unwrap_or_else(|e| panic!("--search: {e}"));
        let threads: usize = flag_value(&args, "--threads").map_or(4, |t| {
            t.parse().expect("--threads takes a positive integer")
        });
        let space = match flag_value(&args, "--space").as_deref() {
            None | Some("smoke") => SearchSpace::smoke(work, threads),
            Some("full") => SearchSpace::full(work, threads),
            Some(other) => panic!("--space takes smoke|full, not {other}"),
        };
        let warmup: u64 = flag_value(&args, "--warmup")
            .map_or(20_000, |w| w.parse().expect("--warmup takes a cycle count"));
        let mode = if warmup == 0 {
            EvalMode::Full
        } else {
            EvalMode::Warm { warmup }
        };
        let params = SearchParams {
            seed: flag_value(&args, "--seed")
                .map_or(0, |s| s.parse().expect("--seed takes an integer")),
            ..SearchParams::default()
        };
        let began = Instant::now();
        let sched = Scheduler::new(&out, opts).expect("cannot open the result store");
        let report = run_search(&sched, &space, mode, &params).expect("search I/O failed");
        println!(
            "search: {} evaluations, {} climb steps, {}-point frontier ({mode} mode) in {:.1}s",
            report.outcome.evaluations.len(),
            report.outcome.steps.len(),
            report.frontier.len(),
            began.elapsed().as_secs_f64(),
        );
        for (spec, rec) in &report.frontier {
            println!(
                "search: frontier {} ipc={:.3} cost={}",
                spec.id(),
                rec.ipc,
                smt_experiments::explore::hardware_cost(spec),
            );
        }
        println!("search: trajectory at {}", report.trajectory_path.display());
        println!("search: frontier at {}", report.frontier_path.display());
        return;
    }

    let began = Instant::now();
    let summary = run_sweep(&grid, &out, &opts).expect("sweep I/O failed");
    let secs = began.elapsed().as_secs_f64();
    println!(
        "sweep: {} cells ({} executed, {} cached, {} resumed mid-flight, {} infeasible) \
         in {:.1}s with {} workers",
        summary.total,
        summary.executed,
        summary.cached,
        summary.resumed,
        summary.infeasible,
        secs,
        opts.workers,
    );
    println!(
        "sweep: {} cells, {} simulated cycles in {secs:.2}s = {:.2} Mcycles/s \
         ({} cache hits, batch={})",
        summary.total,
        summary.simulated_cycles,
        summary.simulated_cycles as f64 / secs / 1.0e6,
        summary.cached,
        summary.batch,
    );
    println!("sweep: results at {}", summary.results_path.display());
}
