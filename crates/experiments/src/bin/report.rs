//! Regenerates every table and figure of the paper's evaluation.
//!
//! By default the demanded simulations are first *recorded* (no execution),
//! then prewarmed in parallel across OS threads, and finally the tables are
//! generated serially from the warmed cache — byte-identical to a fully
//! serial run, just faster. See `runner.rs` for the mechanism.
//!
//! ```text
//! cargo run --release -p smt-experiments --bin report            # paper scale
//! cargo run --release -p smt-experiments --bin report -- --test  # tiny inputs
//! cargo run --release -p smt-experiments --bin report -- --json results.json
//! cargo run --release -p smt-experiments --bin report -- --serial  # no threads
//! cargo run --release -p smt-experiments --bin report -- --workers 8
//! cargo run --release -p smt-experiments --bin report -- --perf results/report_perf.json
//! ```

use std::io::Write as _;
use std::time::Instant;

use smt_experiments::runner::Runner;
use smt_experiments::{figures, json, Cell};
use smt_workloads::Scale;

fn write_file(path: &str, contents: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", dir.display()));
        }
    }
    let mut f = std::fs::File::create(path).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
    f.write_all(contents.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--test") {
        Scale::Test
    } else {
        Scale::Paper
    };
    let serial = args.iter().any(|a| a == "--serial");
    let json_path = flag_value(&args, "--json");
    let perf_path = flag_value(&args, "--perf");

    let start = Instant::now();
    let mut runner = Runner::new(scale);
    let workers = if serial {
        1
    } else if let Some(n) = flag_value(&args, "--workers") {
        n.parse().expect("--workers takes a positive integer")
    } else {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    };
    if workers > 1 {
        // Recording pass: collect every simulation the generators demand.
        let mut recorder = Runner::recorder(scale);
        for (_, generator) in figures::all() {
            let _ = generator(&mut recorder);
        }
        let jobs = recorder.into_recorded();
        eprintln!(
            "[report] prewarming {} demanded simulations on {workers} workers …",
            jobs.len()
        );
        runner.prewarm(&jobs, workers);
        eprintln!(
            "[report]   prewarmed {} unique runs in {:.1}s",
            runner.runs(),
            start.elapsed().as_secs_f64()
        );
    }

    let mut tables = Vec::new();
    for (name, generator) in figures::all() {
        eprintln!("[report] generating {name} …");
        let gen_start = Instant::now();
        let table = generator(&mut runner);
        eprintln!(
            "[report]   {name} done in {:.1}s ({} simulations so far)",
            gen_start.elapsed().as_secs_f64(),
            runner.runs()
        );
        println!("{table}");
        tables.push(table);
    }
    let wall = start.elapsed().as_secs_f64();
    let cycles = runner.sim_cycles();
    eprintln!(
        "[report] total verified simulations: {} ({} simulated cycles, {:.1}s wall, \
         {:.0} simulated cycles/s)",
        runner.runs(),
        cycles,
        wall,
        cycles as f64 / wall
    );

    if let Some(path) = json_path {
        write_file(&path, &json::tables_to_json(&tables));
        eprintln!("[report] wrote {path}");
    }
    if let Some(path) = perf_path {
        let perf = json::object_to_json(&[
            ("scale", Cell::Text(format!("{scale:?}"))),
            ("serial", Cell::Bool(serial)),
            ("workers", Cell::Int(workers as u64)),
            ("simulations", Cell::Int(runner.runs())),
            ("simulated_cycles", Cell::Int(cycles)),
            ("wall_seconds", Cell::Float(wall)),
            (
                "simulated_cycles_per_second",
                Cell::Float(cycles as f64 / wall),
            ),
        ]);
        write_file(&path, &perf);
        eprintln!("[report] wrote {path}");
    }
}
