//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p smt-experiments --bin report            # paper scale
//! cargo run --release -p smt-experiments --bin report -- --test  # tiny inputs
//! cargo run --release -p smt-experiments --bin report -- --json results.json
//! ```

use std::io::Write as _;

use smt_experiments::figures;
use smt_experiments::runner::Runner;
use smt_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--test") { Scale::Test } else { Scale::Paper };
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mut runner = Runner::new(scale);
    let mut tables = Vec::new();
    for (name, generator) in figures::all() {
        eprintln!("[report] generating {name} …");
        let start = std::time::Instant::now();
        let table = generator(&mut runner);
        eprintln!(
            "[report]   {name} done in {:.1}s ({} simulations so far)",
            start.elapsed().as_secs_f64(),
            runner.runs()
        );
        println!("{table}");
        tables.push(table);
    }
    eprintln!("[report] total verified simulations: {}", runner.runs());

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&tables).expect("tables serialize");
        let mut f = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
        f.write_all(json.as_bytes()).expect("write JSON");
        eprintln!("[report] wrote {path}");
    }
}
