//! Differential fuzzer: constrained-random programs, every front end,
//! every thread count, checked instruction-by-instruction against the
//! functional reference by the lockstep oracle.
//!
//! Each seed generates one program [`Plan`]; the plan is lowered per thread
//! count and verified under every [`FRONTENDS`] point — all four fetch
//! policies, every predictor family, and the two-port/wide-fetch shapes.
//! Each seed also drives a heterogeneous column: a [`MixPlan`] of 2 and 4
//! *different* generated programs, one per thread, verified per thread
//! against solo reference runs under [`MIX_FRONTENDS`].
//! Any divergence is greedily minimized (segments are masked off while the
//! failure reproduces — for mixes, across the concatenated per-thread
//! masks) and reported as a `(seed, mask)` pair that regenerates the exact
//! failing program — then the process exits nonzero.
//!
//! ```text
//! cargo run --release -p smt-experiments --bin fuzz                    # 200 seeds
//! cargo run --release -p smt-experiments --bin fuzz -- --seeds 500
//! cargo run --release -p smt-experiments --bin fuzz -- --start-seed 1000 --seeds 100
//! cargo run --release -p smt-experiments --bin fuzz -- --workers 4
//! cargo run --release -p smt-experiments --bin fuzz -- --trace-on-divergence
//! cargo run --release -p smt-experiments --bin fuzz -- --checkpoint-every 50
//! ```
//!
//! With `--checkpoint-every N`, every verification interrupts the machine
//! each N cycles, round-trips it through the snapshot wire format, and
//! resumes the restored copy — so each random program also exercises
//! checkpoint/restore, and a splice that perturbs the commit stream is a
//! divergence like any other.
//!
//! With `--trace-on-divergence`, each minimized failure is re-run with a
//! windowed lifecycle recorder and the report gains the per-instruction
//! fetch/decode/issue/writeback/retire timeline around the diverging
//! cycle — the pipeline's view of the bug, not just its first symptom.

use std::fmt;
use std::time::Instant;

use smt_core::{FetchPolicy, PredictorKind, SimConfig, Simulator};
use smt_isa::Program;
use smt_oracle::{
    verify, verify_mix, verify_mix_with_checkpoints, verify_with_checkpoints, Divergence, Report,
};
use smt_testkit::progen::{GenConfig, MixPlan, Plan};
use smt_testkit::shrink;
use smt_trace::Tracer;

/// One front-end shape: fetch policy × predictor family × ports × width.
#[derive(Clone, Copy, PartialEq, Eq)]
struct FrontEnd {
    policy: FetchPolicy,
    predictor: PredictorKind,
    fetch_threads: usize,
    fetch_width: usize,
}

impl fmt::Display for FrontEnd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} ports={} width={}",
            self.policy, self.predictor, self.fetch_threads, self.fetch_width
        )
    }
}

const fn fe(
    policy: FetchPolicy,
    predictor: PredictorKind,
    fetch_threads: usize,
    fetch_width: usize,
) -> FrontEnd {
    FrontEnd {
        policy,
        predictor,
        fetch_threads,
        fetch_width,
    }
}

/// The verified front ends: the three original single-port policies, the
/// ICOUNT policy, each alternative predictor family, and the two-port /
/// 8-wide shapes (which also cross the families).
const FRONTENDS: [FrontEnd; 8] = [
    fe(FetchPolicy::TrueRoundRobin, PredictorKind::SharedBtb, 1, 4),
    fe(
        FetchPolicy::MaskedRoundRobin,
        PredictorKind::SharedBtb,
        1,
        4,
    ),
    fe(
        FetchPolicy::ConditionalSwitch,
        PredictorKind::SharedBtb,
        1,
        4,
    ),
    fe(FetchPolicy::Icount, PredictorKind::SharedBtb, 1, 4),
    fe(FetchPolicy::TrueRoundRobin, PredictorKind::Gshare, 1, 4),
    fe(
        FetchPolicy::TrueRoundRobin,
        PredictorKind::PartitionedBtb,
        1,
        4,
    ),
    fe(FetchPolicy::Icount, PredictorKind::Gshare, 2, 8),
    fe(
        FetchPolicy::ConditionalSwitch,
        PredictorKind::PartitionedBtb,
        2,
        8,
    ),
];
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Front ends for the heterogeneous-mix column: every fetch policy
/// appears once, crossed with varied predictor families and one two-port
/// / 8-wide shape, at a quarter of the homogeneous matrix's cost.
const MIX_FRONTENDS: [FrontEnd; 4] = [
    fe(FetchPolicy::TrueRoundRobin, PredictorKind::SharedBtb, 1, 4),
    fe(FetchPolicy::Icount, PredictorKind::Gshare, 1, 4),
    fe(
        FetchPolicy::MaskedRoundRobin,
        PredictorKind::PartitionedBtb,
        1,
        4,
    ),
    fe(
        FetchPolicy::ConditionalSwitch,
        PredictorKind::SharedBtb,
        2,
        8,
    ),
];

/// Thread counts for the mix column: a mix of `t` programs only exists at
/// `t` threads, and one thread is the homogeneous case.
const MIX_THREADS: [usize; 2] = [2, 4];

/// Generous for generated programs (thousands of cycles each), tight
/// enough that a livelocked machine fails fast as a harness divergence.
const FUZZ_MAX_CYCLES: u64 = 2_000_000;

fn config(frontend: FrontEnd, threads: usize) -> SimConfig {
    SimConfig::default()
        .with_threads(threads)
        .with_fetch_policy(frontend.policy)
        .with_predictor(frontend.predictor)
        // A machine cannot have more fetch ports than resident threads;
        // clamping keeps the two-port shapes verifiable at one thread.
        .with_fetch_threads(frontend.fetch_threads.min(threads))
        .with_fetch_width(frontend.fetch_width)
        .with_max_cycles(FUZZ_MAX_CYCLES)
}

/// One divergence, fully reproducible from the fields.
struct Failure {
    seed: u64,
    frontend: FrontEnd,
    threads: usize,
    report: String,
}

/// Cycles either side of the divergence covered by the lifecycle window.
const TRACE_SPAN: u64 = 32;

/// Re-runs `program` with a lifecycle recorder windowed around the
/// diverging cycle and renders the captured timeline. The rerun may end in
/// a fault or hang (that can be the divergence itself); the window is
/// whatever was recorded up to that point.
fn lifecycle_window(program: &Program, frontend: FrontEnd, threads: usize, cycle: u64) -> String {
    let cfg = config(frontend, threads);
    let (start, end) = (cycle.saturating_sub(TRACE_SPAN), cycle + TRACE_SPAN);
    let cap = usize::try_from((end - start + 1) * cfg.block_size as u64).unwrap_or(4096);
    let mut tracer = Tracer::new(cfg.trace_shape(), cap).with_window(start, end);
    let mut sim = Simulator::new(cfg, program);
    let outcome = sim.run_traced(&mut tracer);
    let mut out = format!("lifecycle window, instructions decoded in cycles {start}..={end}:\n");
    out.push_str(&tracer.lifecycle.render());
    if let Err(e) = outcome {
        out.push_str(&format!("(traced rerun ended early: {e})\n"));
    }
    out
}

/// Runs the oracle, optionally splicing a snapshot round-trip into the
/// machine every `checkpoint_every` cycles.
fn run_verify(
    program: &Program,
    cfg: SimConfig,
    checkpoint_every: Option<u64>,
) -> Result<Report, Box<Divergence>> {
    match checkpoint_every {
        Some(every) => verify_with_checkpoints(program, cfg, every),
        None => verify(program, cfg),
    }
}

/// The mix counterpart of [`run_verify`]: `programs[tid]` runs on thread
/// `tid`, each checked against a solo reference run of its own program.
fn run_verify_mix(
    programs: &[Program],
    cfg: SimConfig,
    checkpoint_every: Option<u64>,
) -> Result<Report, Box<Divergence>> {
    let refs: Vec<&Program> = programs.iter().collect();
    match checkpoint_every {
        Some(every) => verify_mix_with_checkpoints(&refs, cfg, every),
        None => verify_mix(&refs, cfg),
    }
}

/// Verifies one seed at every (policy, thread count) point. Returns the
/// number of verifications done and the first failure, minimized.
fn fuzz_seed(
    seed: u64,
    gen_cfg: &GenConfig,
    trace: bool,
    checkpoint_every: Option<u64>,
) -> (u64, Option<Failure>) {
    let plan = Plan::generate(seed, gen_cfg);
    let mut runs = 0;
    for threads in THREAD_COUNTS {
        let program = plan
            .build_full(threads)
            .unwrap_or_else(|e| panic!("seed {seed}: plan must lower at {threads} threads: {e}"));
        for frontend in FRONTENDS {
            runs += 1;
            if let Err(d) = run_verify(&program, config(frontend, threads), checkpoint_every) {
                return (
                    runs,
                    Some(minimize(
                        &plan,
                        frontend,
                        threads,
                        &d,
                        trace,
                        checkpoint_every,
                    )),
                );
            }
        }
    }
    // The heterogeneous column: every thread runs a *different* generated
    // program, checked per thread against a solo reference run.
    for threads in MIX_THREADS {
        let mix = MixPlan::generate(seed, threads, gen_cfg);
        let programs = mix
            .build_full()
            .unwrap_or_else(|e| panic!("seed {seed}: mix must lower at {threads} slots: {e}"));
        for frontend in MIX_FRONTENDS {
            runs += 1;
            if let Err(d) = run_verify_mix(&programs, config(frontend, threads), checkpoint_every) {
                return (
                    runs,
                    Some(minimize_mix(&mix, frontend, &d, trace, checkpoint_every)),
                );
            }
        }
    }
    (runs, None)
}

/// Shrinks the failing plan under the failing (policy, threads) point and
/// formats the repro report.
fn minimize(
    plan: &Plan,
    frontend: FrontEnd,
    threads: usize,
    original: &smt_oracle::Divergence,
    trace: bool,
    checkpoint_every: Option<u64>,
) -> Failure {
    // Minimize under the same verifier that failed: a checkpoint-specific
    // bug would vanish under the plain one.
    let mask = shrink::minimize(plan.mask_len(), |mask| {
        plan.build(mask, threads)
            .is_ok_and(|p| run_verify(&p, config(frontend, threads), checkpoint_every).is_err())
    });
    let minimized = plan
        .build(&mask, threads)
        .expect("minimizer only keeps buildable masks");
    let divergence = match run_verify(&minimized, config(frontend, threads), checkpoint_every) {
        Err(d) => *d,
        // The minimizer's last accepted mask failed moments ago; a pass here
        // would mean nondeterminism, which is itself worth reporting loudly.
        Ok(_) => original.clone(),
    };
    let mask_bits: String = mask.iter().map(|&b| if b { '1' } else { '0' }).collect();
    let mut listing = String::new();
    for (pc, insn) in minimized.text().iter().enumerate() {
        listing.push_str(&format!("    {pc:4}: {insn}\n"));
    }
    let window = if trace {
        lifecycle_window(&minimized, frontend, threads, divergence.cycle)
    } else {
        String::new()
    };
    let report = format!(
        "seed {seed} diverges under {frontend} with {threads} thread(s)\n\
         minimized mask: {mask_bits}  ({desc})\n\
         repro: Plan::generate({seed}, &GenConfig::default()).build(&mask, {threads})\n\
         {divergence}\n\
         minimized program ({len} instructions):\n{listing}{window}",
        seed = plan.seed,
        desc = plan.describe(&mask),
        len = minimized.text().len(),
    );
    Failure {
        seed: plan.seed,
        frontend,
        threads,
        report,
    }
}

/// Shrinks a failing mix under its failing front end: the minimizer works
/// on the concatenation of the per-slot masks, so segments vanish from
/// every thread's program at once until only the interacting parts remain.
fn minimize_mix(
    mix: &MixPlan,
    frontend: FrontEnd,
    original: &smt_oracle::Divergence,
    trace: bool,
    checkpoint_every: Option<u64>,
) -> Failure {
    let threads = mix.plans.len();
    let mask = shrink::minimize(mix.mask_len(), |mask| {
        mix.build(mask).is_ok_and(|ps| {
            run_verify_mix(&ps, config(frontend, threads), checkpoint_every).is_err()
        })
    });
    let minimized = mix
        .build(&mask)
        .expect("minimizer only keeps buildable masks");
    let divergence = match run_verify_mix(&minimized, config(frontend, threads), checkpoint_every) {
        Err(d) => *d,
        Ok(_) => original.clone(),
    };
    let mask_bits: String = mask.iter().map(|&b| if b { '1' } else { '0' }).collect();
    let mut listing = String::new();
    for (slot, p) in minimized.iter().enumerate() {
        listing.push_str(&format!(
            "  thread {slot} program ({} instructions):\n",
            p.text().len()
        ));
        for (pc, insn) in p.text().iter().enumerate() {
            listing.push_str(&format!("    {pc:4}: {insn}\n"));
        }
    }
    let window = if trace {
        lifecycle_window_mix(&minimized, frontend, threads, divergence.cycle)
    } else {
        String::new()
    };
    let report = format!(
        "seed {seed} (heterogeneous mix) diverges under {frontend} with {threads} thread(s)\n\
         minimized concatenated mask: {mask_bits}  ({desc})\n\
         repro: MixPlan::generate({seed}, {threads}, &GenConfig::default()).build(&mask)\n\
         {divergence}\n{listing}{window}",
        seed = mix.seed,
        desc = mix.describe(&mask),
    );
    Failure {
        seed: mix.seed,
        frontend,
        threads,
        report,
    }
}

/// [`lifecycle_window`] for a mix: the traced rerun restarts the machine
/// with the per-thread programs.
fn lifecycle_window_mix(
    programs: &[Program],
    frontend: FrontEnd,
    threads: usize,
    cycle: u64,
) -> String {
    let cfg = config(frontend, threads);
    let (start, end) = (cycle.saturating_sub(TRACE_SPAN), cycle + TRACE_SPAN);
    let cap = usize::try_from((end - start + 1) * cfg.block_size as u64).unwrap_or(4096);
    let mut tracer = Tracer::new(cfg.trace_shape(), cap).with_window(start, end);
    let refs: Vec<&Program> = programs.iter().collect();
    let mut sim = match Simulator::try_new_mix(cfg, &refs) {
        Ok(sim) => sim,
        Err(e) => return format!("(no lifecycle window: mix rebuild failed: {e})\n"),
    };
    let outcome = sim.run_traced(&mut tracer);
    let mut out = format!("lifecycle window, instructions decoded in cycles {start}..={end}:\n");
    out.push_str(&tracer.lifecycle.render());
    if let Err(e) = outcome {
        out.push_str(&format!("(traced rerun ended early: {e})\n"));
    }
    out
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seeds: u64 =
        flag_value(&args, "--seeds").map_or(200, |v| v.parse().expect("--seeds takes a count"));
    let start: u64 = flag_value(&args, "--start-seed")
        .map_or(0, |v| v.parse().expect("--start-seed takes a seed"));
    let workers: usize = flag_value(&args, "--workers").map_or_else(
        || {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        },
        |v| v.parse().expect("--workers takes a positive integer"),
    );
    let workers = workers.clamp(1, seeds.max(1) as usize);
    let trace = args.iter().any(|a| a == "--trace-on-divergence");
    let checkpoint_every: Option<u64> = flag_value(&args, "--checkpoint-every").map(|v| {
        let n = v.parse().expect("--checkpoint-every takes a cycle count");
        assert!(n > 0, "--checkpoint-every takes a positive cycle count");
        n
    });
    let gen_cfg = GenConfig::default();

    let began = Instant::now();
    // Round-robin sharding: seed cost varies (plan size, minimization), so
    // interleaving balances better than contiguous chunks.
    let per_worker: Vec<(u64, Vec<Failure>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers as u64)
            .map(|w| {
                let gen_cfg = &gen_cfg;
                s.spawn(move || {
                    let mut runs = 0;
                    let mut failures = Vec::new();
                    let mut seed = start + w;
                    while seed < start + seeds {
                        let (r, failure) = fuzz_seed(seed, gen_cfg, trace, checkpoint_every);
                        runs += r;
                        failures.extend(failure);
                        seed += workers as u64;
                    }
                    (runs, failures)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fuzz worker panicked"))
            .collect()
    });
    let elapsed = began.elapsed();

    let total_runs: u64 = per_worker.iter().map(|(r, _)| r).sum();
    let mut failures: Vec<Failure> = per_worker.into_iter().flat_map(|(_, f)| f).collect();
    failures.sort_by_key(|f| f.seed);

    let secs = elapsed.as_secs_f64();
    let splices = checkpoint_every.map_or(String::new(), |n| {
        format!(", snapshot round-trip every {n} cycles")
    });
    println!(
        "fuzz: {total_runs} verifications over {seeds} seeds x {} front ends x {:?} threads \
         (+ mixes: {} front ends x {:?} slots) \
         in {secs:.1}s ({:.0} programs/sec, {workers} workers{splices})",
        FRONTENDS.len(),
        THREAD_COUNTS,
        MIX_FRONTENDS.len(),
        MIX_THREADS,
        f64::from(u32::try_from(total_runs).unwrap_or(u32::MAX)) / secs.max(1e-9),
    );
    if failures.is_empty() {
        println!("fuzz: no divergences");
        return;
    }
    for f in &failures {
        eprintln!(
            "\n=== FAILURE: seed {} / {} / {} thread(s) ===\n{}",
            f.seed, f.frontend, f.threads, f.report
        );
    }
    eprintln!("fuzz: {} diverging seed(s)", failures.len());
    std::process::exit(1);
}
