//! Memoizing simulation runner used by the figure generators.
//!
//! The paper's figures share many configuration points (the 4-thread
//! True-RR default appears in nearly every one), so the runner caches
//! results keyed by the swept dimensions. Every run is *verified* against
//! the workload's reference checker before being cached — a figure can
//! never be generated from a wrong-answer simulation.

use std::collections::HashMap;

use smt_core::{CommitPolicy, FetchPolicy, SimConfig, SimStats, Simulator};
use smt_isa::FuClass;
use smt_mem::CacheKind;
use smt_uarch::FuConfig;
use smt_workloads::{workload, Scale, WorkloadKind};

/// The dimensions the paper sweeps, as a hashable cache key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RunKey {
    /// Benchmark.
    pub kind: WorkloadKind,
    /// Resident threads.
    pub threads: usize,
    /// Fetch policy.
    pub fetch: FetchPolicy,
    /// Commit policy.
    pub commit: CommitPolicy,
    /// Cache organization.
    pub cache: CacheKind,
    /// Scheduling-unit depth in entries.
    pub su_depth: usize,
    /// Whether the enhanced ("++") functional-unit complement is used.
    pub enhanced_fu: bool,
}

impl RunKey {
    /// The paper's default configuration point for `kind`: 4 threads,
    /// True Round Robin, flexible commit, 4-way cache, 32-entry SU,
    /// default functional units.
    #[must_use]
    pub fn default_point(kind: WorkloadKind) -> Self {
        RunKey {
            kind,
            threads: 4,
            fetch: FetchPolicy::TrueRoundRobin,
            commit: CommitPolicy::Flexible,
            cache: CacheKind::SetAssociative,
            su_depth: 32,
            enhanced_fu: false,
        }
    }

    /// The single-threaded base case of the same benchmark.
    #[must_use]
    pub fn base_case(kind: WorkloadKind) -> Self {
        RunKey { threads: 1, ..Self::default_point(kind) }
    }

    /// Lowers the key to a full simulator configuration.
    #[must_use]
    pub fn to_config(self) -> SimConfig {
        let fu = if self.enhanced_fu {
            FuConfig::paper_enhanced()
        } else {
            FuConfig::paper_default()
        };
        SimConfig::default()
            .with_threads(self.threads)
            .with_fetch_policy(self.fetch)
            .with_commit_policy(self.commit)
            .with_cache_kind(self.cache)
            .with_su_depth(self.su_depth)
            .with_fu(fu)
    }
}

/// Measurements kept from one verified run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Total cycles.
    pub cycles: u64,
    /// Data-cache hit rate in percent.
    pub hit_rate: f64,
    /// Branch-prediction accuracy in percent.
    pub branch_accuracy: f64,
    /// Scheduling-unit stall cycles.
    pub su_stalls: u64,
    /// Full statistics (for Table 3's functional-unit usage etc.).
    pub stats: SimStats,
}

/// Memoizing, self-verifying runner.
pub struct Runner {
    scale: Scale,
    cache: HashMap<RunKey, RunOutcome>,
    runs: u64,
}

impl Runner {
    /// Creates a runner at the given problem scale.
    #[must_use]
    pub fn new(scale: Scale) -> Self {
        Runner { scale, cache: HashMap::new(), runs: 0 }
    }

    /// The problem scale in use.
    #[must_use]
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Number of actual (non-memoized) simulations performed.
    #[must_use]
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Runs (or recalls) the simulation at `key`.
    ///
    /// # Panics
    ///
    /// Panics if the simulation errors or its architectural result fails the
    /// workload checker — a figure must never be built from a broken run.
    pub fn run(&mut self, key: RunKey) -> RunOutcome {
        if let Some(hit) = self.cache.get(&key) {
            return hit.clone();
        }
        let w = workload(key.kind, self.scale);
        let program = w.build(key.threads).expect("kernel fits the partition");
        let mut sim = Simulator::new(key.to_config(), &program);
        let stats = sim
            .run()
            .unwrap_or_else(|e| panic!("{} at {key:?}: {e}", w.name()));
        w.check(sim.memory().words())
            .unwrap_or_else(|e| panic!("{} at {key:?}: wrong answer: {e}", w.name()));
        let outcome = RunOutcome {
            cycles: stats.cycles,
            hit_rate: stats.cache.hit_rate(),
            branch_accuracy: stats.branches.accuracy(),
            su_stalls: stats.su_stall_cycles,
            stats,
        };
        self.runs += 1;
        self.cache.insert(key, outcome.clone());
        outcome
    }

    /// Cycles at `key` (convenience).
    pub fn cycles(&mut self, key: RunKey) -> u64 {
        self.run(key).cycles
    }

    /// The paper's Table 3 metric at `key`: percentage of cycles the *extra*
    /// unit of `class` was occupied.
    pub fn extra_fu_usage(&mut self, key: RunKey, class: FuClass) -> f64 {
        let o = self.run(key);
        o.stats.fu.extra_unit_pct(class, o.cycles)
    }

    /// Runs a benchmark under an arbitrary configuration (for the ablation
    /// and extension tables whose knobs lie outside [`RunKey`]). Not
    /// memoized, but verified like every other run.
    ///
    /// # Panics
    ///
    /// Panics if the simulation errors or fails its result check.
    pub fn run_config(&mut self, kind: WorkloadKind, config: SimConfig) -> RunOutcome {
        let w = workload(kind, self.scale);
        let program = w.build(config.threads).expect("kernel fits the partition");
        let mut sim = Simulator::new(config, &program);
        let stats = sim.run().unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        w.check(sim.memory().words())
            .unwrap_or_else(|e| panic!("{}: wrong answer: {e}", w.name()));
        self.runs += 1;
        RunOutcome {
            cycles: stats.cycles,
            hit_rate: stats.cache.hit_rate(),
            branch_accuracy: stats.branches.accuracy(),
            su_stalls: stats.su_stall_cycles,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoization_avoids_reruns() {
        let mut r = Runner::new(Scale::Test);
        let key = RunKey::default_point(WorkloadKind::Sieve);
        let first = r.run(key);
        let again = r.run(key);
        assert_eq!(first.cycles, again.cycles);
        assert_eq!(r.runs(), 1);
    }

    #[test]
    fn default_and_base_points_differ_only_in_threads() {
        let d = RunKey::default_point(WorkloadKind::Ll1);
        let b = RunKey::base_case(WorkloadKind::Ll1);
        assert_eq!(d.threads, 4);
        assert_eq!(b.threads, 1);
        assert_eq!(d.fetch, b.fetch);
        assert_eq!(d.su_depth, b.su_depth);
    }

    #[test]
    fn key_lowers_to_validated_config() {
        let key = RunKey {
            kind: WorkloadKind::Matrix,
            threads: 6,
            fetch: FetchPolicy::ConditionalSwitch,
            commit: CommitPolicy::LowestOnly,
            cache: CacheKind::DirectMapped,
            su_depth: 48,
            enhanced_fu: true,
        };
        let cfg = key.to_config();
        cfg.validate().unwrap();
        assert_eq!(cfg.threads, 6);
        assert_eq!(cfg.cache.ways, 1);
        assert_eq!(cfg.fu.class(FuClass::Alu).count, 6);
    }
}
