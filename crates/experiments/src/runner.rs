//! Memoizing simulation runner used by the figure generators.
//!
//! The paper's figures share many configuration points (the 4-thread
//! True-RR default appears in nearly every one), so the runner caches
//! results keyed by the swept dimensions. Every run is *verified* against
//! the workload's reference checker before being cached — a figure can
//! never be generated from a wrong-answer simulation.
//!
//! # Parallel prewarming
//!
//! Generating the full report serially means hundreds of independent
//! simulations back to back. The runner therefore supports a three-step
//! parallel mode used by the `report` binary:
//!
//! 1. **Record** — run every generator against a [`Runner::recorder`],
//!    which executes nothing and instead collects the demanded [`Job`]s
//!    (dummy outcomes keep the generators' arithmetic well-defined);
//! 2. **Prewarm** — [`Runner::prewarm`] deduplicates the jobs and runs
//!    them across `std::thread::scope` workers, merging the verified
//!    outcomes into the memo caches;
//! 3. **Generate** — rerun the generators serially against the warmed
//!    runner. Every lookup hits the cache, so the emitted tables are
//!    byte-identical to a fully serial run (simulations are
//!    deterministic), only faster.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use smt_core::{CommitPolicy, FetchPolicy, SimConfig, SimStats, Simulator};
use smt_isa::{FuClass, Program};
use smt_mem::CacheKind;
use smt_trace::{CpiBreakdown, CpiStack, SlotCause};
use smt_uarch::FuConfig;
use smt_workloads::{workload, Scale, WorkloadKind};

/// The dimensions the paper sweeps, as a hashable cache key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RunKey {
    /// Benchmark.
    pub kind: WorkloadKind,
    /// Resident threads.
    pub threads: usize,
    /// Fetch policy.
    pub fetch: FetchPolicy,
    /// Commit policy.
    pub commit: CommitPolicy,
    /// Cache organization.
    pub cache: CacheKind,
    /// Scheduling-unit depth in entries.
    pub su_depth: usize,
    /// Whether the enhanced ("++") functional-unit complement is used.
    pub enhanced_fu: bool,
}

impl RunKey {
    /// The paper's default configuration point for `kind`: 4 threads,
    /// True Round Robin, flexible commit, 4-way cache, 32-entry SU,
    /// default functional units.
    #[must_use]
    pub fn default_point(kind: WorkloadKind) -> Self {
        RunKey {
            kind,
            threads: 4,
            fetch: FetchPolicy::TrueRoundRobin,
            commit: CommitPolicy::Flexible,
            cache: CacheKind::SetAssociative,
            su_depth: 32,
            enhanced_fu: false,
        }
    }

    /// The single-threaded base case of the same benchmark.
    #[must_use]
    pub fn base_case(kind: WorkloadKind) -> Self {
        RunKey {
            threads: 1,
            ..Self::default_point(kind)
        }
    }

    /// Lowers the key to a full simulator configuration.
    #[must_use]
    pub fn to_config(self) -> SimConfig {
        let fu = if self.enhanced_fu {
            FuConfig::paper_enhanced()
        } else {
            FuConfig::paper_default()
        };
        SimConfig::default()
            .with_threads(self.threads)
            .with_fetch_policy(self.fetch)
            .with_commit_policy(self.commit)
            .with_cache_kind(self.cache)
            .with_su_depth(self.su_depth)
            .with_fu(fu)
    }
}

/// Measurements kept from one verified run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Total cycles.
    pub cycles: u64,
    /// Data-cache hit rate in percent.
    pub hit_rate: f64,
    /// Branch-prediction accuracy in percent.
    pub branch_accuracy: f64,
    /// Scheduling-unit stall cycles.
    pub su_stalls: u64,
    /// Full statistics (for Table 3's functional-unit usage etc.).
    pub stats: SimStats,
}

/// One simulation demanded by a figure generator, captured by the
/// recording pass and replayed in parallel by [`Runner::prewarm`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Job {
    /// A memoized sweep point ([`Runner::run`]).
    Key(RunKey),
    /// An arbitrary-configuration run ([`Runner::run_config`]). The
    /// configuration is boxed to keep the enum small next to [`RunKey`].
    Config(WorkloadKind, Box<SimConfig>),
    /// A traced run accumulating the CPI stack ([`Runner::run_cpi`]).
    Cpi(RunKey),
}

/// The result of one prewarm job, matching the [`Job`] variant.
enum WarmOutcome {
    Plain(Box<RunOutcome>),
    Cpi(Box<CpiBreakdown>),
}

/// Memo of built (and predecoded) kernels keyed `(kind, threads)`. The
/// paper's sweeps revisit the same kernel at the same thread count under
/// hundreds of machine configurations; the program text depends only on
/// `(kind, threads)` at a fixed scale, so each is built once and shared —
/// across the serial paths and the prewarm workers alike. One cache serves
/// exactly one [`Runner`] (and hence one scale); the scale is deliberately
/// not part of the key.
#[derive(Default, Debug)]
struct ProgramCache {
    built: Mutex<HashMap<(WorkloadKind, usize), Arc<Program>>>,
}

impl ProgramCache {
    /// The built kernel for `(kind, threads)`, building and caching it on
    /// first demand.
    fn get(&self, scale: Scale, kind: WorkloadKind, threads: usize) -> Arc<Program> {
        let mut built = self.built.lock().expect("program cache poisoned");
        Arc::clone(built.entry((kind, threads)).or_insert_with(|| {
            Arc::new(
                workload(kind, scale)
                    .build(threads)
                    .expect("kernel fits the partition"),
            )
        }))
    }

    /// Number of distinct kernels built so far.
    fn len(&self) -> usize {
        self.built.lock().expect("program cache poisoned").len()
    }
}

/// Builds, runs, and verifies one simulation. Shared by the serial paths
/// and the prewarm workers.
///
/// # Panics
///
/// Panics if the simulation errors or its architectural result fails the
/// workload checker — a figure must never be built from a broken run.
fn execute(
    scale: Scale,
    kind: WorkloadKind,
    config: &SimConfig,
    programs: &ProgramCache,
) -> RunOutcome {
    let w = workload(kind, scale);
    let program = programs.get(scale, kind, config.threads);
    let mut sim = Simulator::new(config.clone(), &program);
    let stats = sim
        .run()
        .unwrap_or_else(|e| panic!("{} under {config:?}: {e}", w.name()));
    w.check(sim.memory().words())
        .unwrap_or_else(|e| panic!("{} under {config:?}: wrong answer: {e}", w.name()));
    RunOutcome {
        cycles: stats.cycles,
        hit_rate: stats.cache.hit_rate(),
        branch_accuracy: stats.branches.accuracy(),
        su_stalls: stats.su_stall_cycles,
        stats,
    }
}

/// Like [`execute`], but with a [`CpiStack`] attached: returns the slot
/// attribution of the run instead of the raw counters. Verified the same
/// way, and the sum invariant (`slots == block_size × cycles`) is asserted
/// on every prewarmed/memoized breakdown.
fn execute_cpi(
    scale: Scale,
    kind: WorkloadKind,
    config: &SimConfig,
    programs: &ProgramCache,
) -> CpiBreakdown {
    let w = workload(kind, scale);
    let program = programs.get(scale, kind, config.threads);
    let mut sim = Simulator::new(config.clone(), &program);
    let mut cpi = CpiStack::new(config.block_size as u32);
    let stats = sim
        .run_traced(&mut cpi)
        .unwrap_or_else(|e| panic!("{} under {config:?}: {e}", w.name()));
    w.check(sim.memory().words())
        .unwrap_or_else(|e| panic!("{} under {config:?}: wrong answer: {e}", w.name()));
    let breakdown = cpi.finish();
    assert_eq!(
        breakdown.total_slots(),
        config.block_size as u64 * stats.cycles,
        "{}: CPI stack must account every slot",
        w.name()
    );
    breakdown
}

/// A placeholder outcome handed out while recording. `cycles` is 1 so the
/// generators' ratios and speedup formulas stay finite.
fn dummy_outcome() -> RunOutcome {
    RunOutcome {
        cycles: 1,
        hit_rate: 0.0,
        branch_accuracy: 0.0,
        su_stalls: 0,
        stats: SimStats::default(),
    }
}

/// Placeholder breakdown for the recording pass: one committed slot in one
/// one-wide cycle, so shares and CPIs stay finite.
fn dummy_breakdown() -> CpiBreakdown {
    let mut slots = [0u64; SlotCause::COUNT];
    slots[SlotCause::Committed.index()] = 1;
    CpiBreakdown {
        width: 1,
        cycles: 1,
        committed: 1,
        slots,
    }
}

/// Memoizing, self-verifying runner.
pub struct Runner {
    scale: Scale,
    cache: HashMap<RunKey, RunOutcome>,
    config_cache: HashMap<(WorkloadKind, SimConfig), RunOutcome>,
    cpi_cache: HashMap<RunKey, CpiBreakdown>,
    programs: ProgramCache,
    runs: u64,
    sim_cycles: u64,
    recording: Option<Vec<Job>>,
}

impl Runner {
    /// Creates a runner at the given problem scale.
    #[must_use]
    pub fn new(scale: Scale) -> Self {
        Runner {
            scale,
            cache: HashMap::new(),
            config_cache: HashMap::new(),
            cpi_cache: HashMap::new(),
            programs: ProgramCache::default(),
            runs: 0,
            sim_cycles: 0,
            recording: None,
        }
    }

    /// Creates a *recording* runner: [`Runner::run`] and
    /// [`Runner::run_config`] execute nothing, return dummy outcomes, and
    /// log the demanded [`Job`]s for [`Runner::into_recorded`].
    #[must_use]
    pub fn recorder(scale: Scale) -> Self {
        Runner {
            recording: Some(Vec::new()),
            ..Self::new(scale)
        }
    }

    /// The jobs demanded of a [`Runner::recorder`], in demand order
    /// (with duplicates; [`Runner::prewarm`] deduplicates).
    #[must_use]
    pub fn into_recorded(self) -> Vec<Job> {
        self.recording.unwrap_or_default()
    }

    /// The problem scale in use.
    #[must_use]
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Number of actual (non-memoized) simulations performed.
    #[must_use]
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Total simulated cycles across all actual runs (for throughput
    /// reporting).
    #[must_use]
    pub fn sim_cycles(&self) -> u64 {
        self.sim_cycles
    }

    /// Number of distinct `(kind, threads)` kernels built so far — every
    /// other run at the same point reuses the shared program.
    #[must_use]
    pub fn programs_built(&self) -> usize {
        self.programs.len()
    }

    /// Runs the deduplicated `jobs` across `workers` scoped threads and
    /// merges the verified outcomes into the memo caches. Jobs already
    /// cached are skipped. Subsequent [`Runner::run`]/[`Runner::run_config`]
    /// calls for these points are cache hits, so a generation pass after a
    /// prewarm emits exactly what a serial pass would.
    ///
    /// # Panics
    ///
    /// Panics if any worker's simulation errors or fails verification.
    pub fn prewarm(&mut self, jobs: &[Job], workers: usize) {
        let mut seen = HashSet::new();
        let pending: Vec<&Job> = jobs
            .iter()
            .filter(|job| seen.insert(*job))
            .filter(|job| match job {
                Job::Key(key) => !self.cache.contains_key(key),
                Job::Config(kind, cfg) => !self
                    .config_cache
                    .contains_key(&(*kind, cfg.as_ref().clone())),
                Job::Cpi(key) => !self.cpi_cache.contains_key(key),
            })
            .collect();
        if pending.is_empty() {
            return;
        }
        let workers = workers.clamp(1, pending.len());
        let scale = self.scale;
        let programs = &self.programs;
        // Shard round-robin: neighbouring jobs (same figure, similar cost)
        // spread across workers, which balances better than contiguous
        // chunks when one sweep's simulations dwarf another's.
        let outcomes: Vec<Vec<(&Job, WarmOutcome)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let shard: Vec<&Job> =
                        pending.iter().skip(w).step_by(workers).copied().collect();
                    s.spawn(move || {
                        shard
                            .into_iter()
                            .map(|job| {
                                let outcome = match job {
                                    Job::Key(key) => WarmOutcome::Plain(Box::new(execute(
                                        scale,
                                        key.kind,
                                        &key.to_config(),
                                        programs,
                                    ))),
                                    Job::Config(kind, cfg) => WarmOutcome::Plain(Box::new(
                                        execute(scale, *kind, cfg, programs),
                                    )),
                                    Job::Cpi(key) => WarmOutcome::Cpi(Box::new(execute_cpi(
                                        scale,
                                        key.kind,
                                        &key.to_config(),
                                        programs,
                                    ))),
                                };
                                (job, outcome)
                            })
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("prewarm worker panicked"))
                .collect()
        });
        for (job, outcome) in outcomes.into_iter().flatten() {
            self.runs += 1;
            match (job, outcome) {
                (Job::Key(key), WarmOutcome::Plain(o)) => {
                    self.sim_cycles += o.cycles;
                    self.cache.insert(*key, *o);
                }
                (Job::Config(kind, cfg), WarmOutcome::Plain(o)) => {
                    self.sim_cycles += o.cycles;
                    self.config_cache.insert((*kind, cfg.as_ref().clone()), *o);
                }
                (Job::Cpi(key), WarmOutcome::Cpi(b)) => {
                    self.sim_cycles += b.cycles;
                    self.cpi_cache.insert(*key, *b);
                }
                _ => unreachable!("job and outcome variants always match"),
            }
        }
    }

    /// Runs (or recalls) the simulation at `key`.
    ///
    /// # Panics
    ///
    /// Panics if the simulation errors or its architectural result fails the
    /// workload checker — a figure must never be built from a broken run.
    pub fn run(&mut self, key: RunKey) -> RunOutcome {
        if let Some(jobs) = &mut self.recording {
            jobs.push(Job::Key(key));
            return dummy_outcome();
        }
        if let Some(hit) = self.cache.get(&key) {
            return hit.clone();
        }
        let outcome = execute(self.scale, key.kind, &key.to_config(), &self.programs);
        self.runs += 1;
        self.sim_cycles += outcome.cycles;
        self.cache.insert(key, outcome.clone());
        outcome
    }

    /// Cycles at `key` (convenience).
    pub fn cycles(&mut self, key: RunKey) -> u64 {
        self.run(key).cycles
    }

    /// The paper's Table 3 metric at `key`: percentage of cycles the *extra*
    /// unit of `class` was occupied.
    pub fn extra_fu_usage(&mut self, key: RunKey, class: FuClass) -> f64 {
        let o = self.run(key);
        o.stats.fu.extra_unit_pct(class, o.cycles)
    }

    /// Runs (or recalls) the simulation at `key` with a [`CpiStack`]
    /// attached, returning the slot-bandwidth attribution. Traced runs are
    /// cycle-for-cycle identical to untraced ones (the golden tests prove
    /// it), so this shares the program cache but keeps its own memo — the
    /// untraced caches stay warm for the counter-based figures.
    ///
    /// # Panics
    ///
    /// Panics if the simulation errors, fails verification, or the stack
    /// does not sum to `block_size × cycles`.
    pub fn run_cpi(&mut self, key: RunKey) -> CpiBreakdown {
        if let Some(jobs) = &mut self.recording {
            jobs.push(Job::Cpi(key));
            return dummy_breakdown();
        }
        if let Some(hit) = self.cpi_cache.get(&key) {
            return hit.clone();
        }
        let breakdown = execute_cpi(self.scale, key.kind, &key.to_config(), &self.programs);
        self.runs += 1;
        self.sim_cycles += breakdown.cycles;
        self.cpi_cache.insert(key, breakdown.clone());
        breakdown
    }

    /// Runs a benchmark under an arbitrary configuration (for the ablation
    /// and extension tables whose knobs lie outside [`RunKey`]). Memoized
    /// on the full configuration and verified like every other run.
    ///
    /// # Panics
    ///
    /// Panics if the simulation errors or fails its result check.
    pub fn run_config(&mut self, kind: WorkloadKind, config: SimConfig) -> RunOutcome {
        if let Some(jobs) = &mut self.recording {
            jobs.push(Job::Config(kind, Box::new(config)));
            return dummy_outcome();
        }
        if let Some(hit) = self.config_cache.get(&(kind, config.clone())) {
            return hit.clone();
        }
        let outcome = execute(self.scale, kind, &config, &self.programs);
        self.runs += 1;
        self.sim_cycles += outcome.cycles;
        self.config_cache.insert((kind, config), outcome.clone());
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoization_avoids_reruns() {
        let mut r = Runner::new(Scale::Test);
        let key = RunKey::default_point(WorkloadKind::Sieve);
        let first = r.run(key);
        let again = r.run(key);
        assert_eq!(first.cycles, again.cycles);
        assert_eq!(r.runs(), 1);
    }

    #[test]
    fn programs_are_built_once_per_kind_and_thread_count() {
        let mut r = Runner::new(Scale::Test);
        let key = RunKey::default_point(WorkloadKind::Sieve);
        let masked = RunKey {
            fetch: FetchPolicy::MaskedRoundRobin,
            ..key
        };
        let base = RunKey::base_case(WorkloadKind::Sieve);
        let a = r.run(key);
        let b = r.run(masked);
        let c = r.run(base);
        assert_eq!(r.runs(), 3);
        assert_eq!(
            r.programs_built(),
            2,
            "two sweep points at 4 threads share one built kernel"
        );
        assert!(a.cycles > 0 && b.cycles > 0 && c.cycles > 0);
    }

    #[test]
    fn default_and_base_points_differ_only_in_threads() {
        let d = RunKey::default_point(WorkloadKind::Ll1);
        let b = RunKey::base_case(WorkloadKind::Ll1);
        assert_eq!(d.threads, 4);
        assert_eq!(b.threads, 1);
        assert_eq!(d.fetch, b.fetch);
        assert_eq!(d.su_depth, b.su_depth);
    }

    #[test]
    fn key_lowers_to_validated_config() {
        let key = RunKey {
            kind: WorkloadKind::Matrix,
            threads: 6,
            fetch: FetchPolicy::ConditionalSwitch,
            commit: CommitPolicy::LowestOnly,
            cache: CacheKind::DirectMapped,
            su_depth: 48,
            enhanced_fu: true,
        };
        let cfg = key.to_config();
        cfg.validate().unwrap();
        assert_eq!(cfg.threads, 6);
        assert_eq!(cfg.cache.ways, 1);
        assert_eq!(cfg.fu.class(FuClass::Alu).count, 6);
    }

    #[test]
    fn recorder_collects_jobs_without_running() {
        let mut r = Runner::recorder(Scale::Test);
        let key = RunKey::default_point(WorkloadKind::Sieve);
        let out = r.run(key);
        assert_eq!(out.cycles, 1, "recording returns a dummy outcome");
        let cfg = key.to_config().with_bypass(false);
        r.run_config(WorkloadKind::Sieve, cfg.clone());
        assert_eq!(r.runs(), 0);
        let jobs = r.into_recorded();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0], Job::Key(key));
        assert_eq!(jobs[1], Job::Config(WorkloadKind::Sieve, Box::new(cfg)));
    }

    #[test]
    fn prewarm_matches_serial_results() {
        let key = RunKey::default_point(WorkloadKind::Sieve);
        let other = RunKey { threads: 2, ..key };
        let cfg = key.to_config().with_bypass(false);

        let mut serial = Runner::new(Scale::Test);
        let expected = [
            serial.run(key).cycles,
            serial.run(other).cycles,
            serial.run_config(WorkloadKind::Sieve, cfg.clone()).cycles,
        ];

        let mut warmed = Runner::new(Scale::Test);
        let jobs = vec![
            Job::Key(key),
            Job::Key(key), // duplicate: deduplicated before sharding
            Job::Key(other),
            Job::Config(WorkloadKind::Sieve, Box::new(cfg.clone())),
        ];
        warmed.prewarm(&jobs, 3);
        assert_eq!(warmed.runs(), 3, "duplicates are not rerun");
        let runs_after_warm = warmed.runs();
        let got = [
            warmed.run(key).cycles,
            warmed.run(other).cycles,
            warmed.run_config(WorkloadKind::Sieve, cfg).cycles,
        ];
        assert_eq!(got, expected);
        assert_eq!(
            warmed.runs(),
            runs_after_warm,
            "generation pass is all cache hits"
        );
    }

    #[test]
    fn cpi_runs_memoize_and_prewarm() {
        let key = RunKey::default_point(WorkloadKind::Sieve);
        let mut serial = Runner::new(Scale::Test);
        let expected = serial.run_cpi(key);
        let again = serial.run_cpi(key);
        assert_eq!(serial.runs(), 1, "second demand is a cache hit");
        assert_eq!(expected.slots, again.slots);
        assert_eq!(expected.total_slots(), 4 * expected.cycles);

        let mut warmed = Runner::new(Scale::Test);
        warmed.prewarm(&[Job::Cpi(key), Job::Cpi(key)], 2);
        assert_eq!(warmed.runs(), 1, "duplicates are not rerun");
        let got = warmed.run_cpi(key);
        assert_eq!(warmed.runs(), 1, "generation pass is a cache hit");
        assert_eq!(got.slots, expected.slots);
    }

    #[test]
    fn cpi_recording_returns_a_finite_dummy() {
        let mut r = Runner::recorder(Scale::Test);
        let key = RunKey::default_point(WorkloadKind::Sieve);
        let b = r.run_cpi(key);
        assert!(b.cpi().is_finite());
        assert_eq!(r.runs(), 0);
        assert_eq!(r.into_recorded(), vec![Job::Cpi(key)]);
    }

    #[test]
    fn run_config_memoizes_on_the_full_configuration() {
        let mut r = Runner::new(Scale::Test);
        let cfg = RunKey::default_point(WorkloadKind::Sieve).to_config();
        let first = r.run_config(WorkloadKind::Sieve, cfg.clone());
        let again = r.run_config(WorkloadKind::Sieve, cfg.clone());
        assert_eq!(first.cycles, again.cycles);
        assert_eq!(r.runs(), 1);
        r.run_config(WorkloadKind::Sieve, cfg.with_bypass(false));
        assert_eq!(r.runs(), 2, "a different configuration is a real run");
    }
}
