//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Section 5).
//!
//! Each `fig*`/`table*` function in [`figures`] sweeps the configurations
//! the paper swept and returns a [`Table`] of raw numbers; the `report`
//! binary renders them all as Markdown (and JSON) for EXPERIMENTS.md.
//!
//! ```no_run
//! use smt_experiments::{figures, runner::Runner};
//! use smt_workloads::Scale;
//!
//! let mut runner = Runner::new(Scale::Test);
//! let table = figures::fig03_fetch_policy_group1(&mut runner);
//! println!("{table}");
//! ```

pub mod explore;
pub mod figures;
pub mod json;
pub mod runner;
pub mod sweep;

use std::fmt;

/// One cell of a result table.
#[derive(Clone, PartialEq, Debug)]
pub enum Cell {
    /// Cycle counts and other integers.
    Int(u64),
    /// Rates, percentages, speedups.
    Float(f64),
    /// Labels.
    Text(String),
    /// Flags (serialized as JSON `true`/`false`, not quoted strings).
    Bool(bool),
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Int(v) => write!(f, "{v}"),
            Cell::Float(v) => write!(f, "{v:.2}"),
            Cell::Text(s) => f.write_str(s),
            Cell::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
        }
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Float(v)
    }
}

impl From<&str> for Cell {
    fn from(v: &str) -> Self {
        Cell::Text(v.to_string())
    }
}

impl From<bool> for Cell {
    fn from(v: bool) -> Self {
        Cell::Bool(v)
    }
}

/// A labelled row.
#[derive(Clone, PartialEq, Debug)]
pub struct Row {
    /// Row label (benchmark or sweep point).
    pub label: String,
    /// One value per column.
    pub values: Vec<Cell>,
}

/// One regenerated table or figure.
#[derive(Clone, PartialEq, Debug)]
pub struct Table {
    /// Identifier matching the paper ("Figure 5", "Table 2", …).
    pub id: String,
    /// What the paper's caption says it shows.
    pub title: String,
    /// Column headers (the first column is the row label).
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<Cell>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match the {} columns",
            self.columns.len()
        );
        self.rows.push(Row {
            label: label.into(),
            values,
        });
    }

    /// Renders as a GitHub-flavoured Markdown table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "| | {} |", self.columns.join(" | "));
        let _ = writeln!(out, "|---|{}", "---|".repeat(self.columns.len()));
        for row in &self.rows {
            let cells: Vec<String> = row.values.iter().map(Cell::to_string).collect();
            let _ = writeln!(out, "| {} | {} |", row.label, cells.join(" | "));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("Figure 0", "demo", &["a", "b"]);
        t.push_row("row1", vec![Cell::Int(3), Cell::Float(1.5)]);
        let md = t.to_markdown();
        assert!(md.contains("| row1 | 3 | 1.50 |"), "{md}");
        assert!(md.contains("### Figure 0"), "{md}");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_is_enforced() {
        let mut t = Table::new("x", "y", &["a", "b"]);
        t.push_row("r", vec![Cell::Int(1)]);
    }
}
