//! Approximate design-space exploration: warm-forked evaluation plus a
//! deterministic Pareto search over the sweep dimensions.
//!
//! # Warmup forking
//!
//! A full sweep re-simulates every cell from a cold machine, so every
//! variant pays the same warmup cycles again. [`Explorer`] instead takes
//! **one** warm checkpoint per `(workload, threads)` pair: it runs the
//! *canonical* machine (`SimConfig::default()` at the cell's thread
//! count) for a fixed warmup, drains the pipeline to quiescence, and
//! captures a relaxed-identity snapshot ([`Simulator::checkpoint_warm`])
//! holding only configuration-independent architectural state — memory,
//! registers, per-thread PCs. Every microarchitectural variant then
//! forks from that snapshot ([`Simulator::fork_warm`]) and simulates
//! only the measurement window; caches, predictors, and queues restart
//! cold and re-warm under the variant's own geometry. The measured IPC
//! is approximate (the error bound is pinned by `tests/warmup_error.rs`
//! and studied in EXPERIMENTS.md); the architectural answer is still
//! exact, and every forked run re-verifies it.
//!
//! Warm measurements live in their own content-addressed namespace
//! (`<out>/cells-warm/<id>@w<warmup>.cell`, same key discipline as the
//! exact store: code version + config hash + program hash), and warm
//! snapshots under `<out>/warm/`. Neither ever mixes with the exact
//! `cells/` records.
//!
//! # Pareto search
//!
//! [`run_search`] drives the seeded hill-climbing engine of
//! [`smt_search`] over a [`SearchSpace`], maximizing measured IPC
//! against the [`hardware_cost`] model. The search is deterministic end
//! to end: the trajectory artifact (`search_trajectory.json`) is
//! byte-identical across re-runs — including a run resumed over a
//! store whose cells are already populated, because cell records
//! round-trip their floats bit-exactly.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::{fmt, fs};

use smt_checkpoint::{Reader, Writer};
use smt_core::config::{defaults, warm};
use smt_core::{
    program_identity, FetchPolicy, PredictorKind, SimConfig, SimError, Simulator, Snapshot,
};
use smt_isa::Program;
use smt_mem::CacheKind;
use smt_search::{Axis, Evaluation, Objectives, SearchOutcome, SearchParams};

use crate::json::object_to_json;
use crate::sweep::{write_atomic, CellRecord, CellSpec, CellStatus, Scheduler, WorkSpec};
use crate::Cell;

/// How a point's IPC is measured.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvalMode {
    /// Cold full run through the exact cell store (ground truth).
    Full,
    /// Fork from the shared warm checkpoint taken after this many
    /// canonical-machine cycles, and measure only the window after it.
    Warm {
        /// Warmup length in cycles on the canonical machine.
        warmup: u64,
    },
}

impl fmt::Display for EvalMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalMode::Full => f.write_str("full"),
            EvalMode::Warm { warmup } => write!(f, "warm({warmup})"),
        }
    }
}

/// The searched region: one workload at one thread count, crossed with
/// the microarchitectural axes. Thread count is deliberately *not* an
/// axis — warm forking shares architectural state, which is only valid
/// across configurations with identical software-visible shape.
#[derive(Clone, PartialEq, Debug)]
pub struct SearchSpace {
    /// What every point runs.
    pub work: WorkSpec,
    /// Resident threads (fixed across the space).
    pub threads: usize,
    /// Fetch-policy levels.
    pub policies: Vec<FetchPolicy>,
    /// Predictor-family levels.
    pub predictors: Vec<PredictorKind>,
    /// Fetch-port levels.
    pub fetch_threads: Vec<usize>,
    /// Fetch-width levels.
    pub fetch_widths: Vec<usize>,
    /// Scheduling-unit depth levels.
    pub su_depths: Vec<usize>,
    /// Cache-organization levels.
    pub caches: Vec<CacheKind>,
    /// Speculation-depth-limit levels (0 = unlimited).
    pub spec_depths: Vec<usize>,
}

fn policy_abbrev(p: FetchPolicy) -> &'static str {
    match p {
        FetchPolicy::TrueRoundRobin => "trr",
        FetchPolicy::MaskedRoundRobin => "mrr",
        FetchPolicy::ConditionalSwitch => "cs",
        FetchPolicy::Icount => "ic",
    }
}

fn cache_abbrev(c: CacheKind) -> &'static str {
    match c {
        CacheKind::SetAssociative => "sa",
        CacheKind::DirectMapped => "dm",
    }
}

impl SearchSpace {
    /// The full exploration region around the paper machine: every
    /// policy and predictor, one or two fetch ports, 4/8-wide fetch,
    /// three scheduling-unit depths, both cache organizations, and
    /// three speculation-depth limits (864 points — far more than a
    /// search should visit, which is the point).
    #[must_use]
    pub fn full(work: WorkSpec, threads: usize) -> Self {
        SearchSpace {
            work,
            threads,
            policies: vec![
                FetchPolicy::TrueRoundRobin,
                FetchPolicy::MaskedRoundRobin,
                FetchPolicy::ConditionalSwitch,
                FetchPolicy::Icount,
            ],
            predictors: PredictorKind::ALL.to_vec(),
            fetch_threads: vec![1, 2],
            fetch_widths: vec![4, 8],
            su_depths: vec![16, 32, 48],
            caches: vec![CacheKind::SetAssociative, CacheKind::DirectMapped],
            spec_depths: vec![0, 2, 4],
        }
    }

    /// A 16-point region small enough to enumerate exhaustively — the
    /// CI smoke space, where the searched frontier is checked against
    /// the brute-force one.
    #[must_use]
    pub fn smoke(work: WorkSpec, threads: usize) -> Self {
        SearchSpace {
            work,
            threads,
            policies: vec![FetchPolicy::TrueRoundRobin, FetchPolicy::Icount],
            predictors: vec![PredictorKind::SharedBtb],
            fetch_threads: vec![1],
            fetch_widths: vec![defaults::FETCH_WIDTH],
            su_depths: vec![16, 32],
            caches: vec![CacheKind::SetAssociative, CacheKind::DirectMapped],
            spec_depths: vec![0, 2],
        }
    }

    /// The axes in engine form, in the fixed order [`spec_at`]
    /// (Self::spec_at) consumes: policy, predictor, fetch ports, fetch
    /// width, SU depth, cache, speculation depth.
    #[must_use]
    pub fn axes(&self) -> Vec<Axis> {
        let nums = |name: &str, v: &[usize]| Axis {
            name: name.to_string(),
            levels: v.iter().map(ToString::to_string).collect(),
        };
        vec![
            Axis::new(
                "policy",
                &self
                    .policies
                    .iter()
                    .map(|&p| policy_abbrev(p))
                    .collect::<Vec<_>>(),
            ),
            Axis::new(
                "predictor",
                &self
                    .predictors
                    .iter()
                    .map(|p| p.abbrev())
                    .collect::<Vec<_>>(),
            ),
            nums("fetch_threads", &self.fetch_threads),
            nums("fetch_width", &self.fetch_widths),
            nums("su_depth", &self.su_depths),
            Axis::new(
                "cache",
                &self
                    .caches
                    .iter()
                    .map(|&c| cache_abbrev(c))
                    .collect::<Vec<_>>(),
            ),
            nums("spec_depth", &self.spec_depths),
        ]
    }

    /// Materializes the cell at one point (level index per axis, in
    /// [`axes`](Self::axes) order).
    #[must_use]
    pub fn spec_at(&self, point: &[usize]) -> CellSpec {
        assert_eq!(point.len(), 7, "a point indexes all seven axes");
        CellSpec {
            work: self.work.clone(),
            policy: self.policies[point[0]],
            predictor: self.predictors[point[1]],
            threads: self.threads,
            fetch_threads: self.fetch_threads[point[2]],
            fetch_width: self.fetch_widths[point[3]],
            su_depth: self.su_depths[point[4]],
            cache: self.caches[point[5]],
            spec_depth: self.spec_depths[point[6]],
        }
    }

    /// IPC ceiling for scalarization: no machine retires more than its
    /// total fetch bandwidth per cycle.
    #[must_use]
    pub fn value_bound(&self) -> f64 {
        let width = self.fetch_widths.iter().copied().max().unwrap_or(1);
        let ports = self.fetch_threads.iter().copied().max().unwrap_or(1);
        (width * ports) as f64
    }

    /// Cost of the most expensive point. [`hardware_cost`] is additive
    /// per dimension, so maximizing each axis independently is exact.
    #[must_use]
    pub fn cost_bound(&self) -> f64 {
        let lens = [
            self.policies.len(),
            self.predictors.len(),
            self.fetch_threads.len(),
            self.fetch_widths.len(),
            self.su_depths.len(),
            self.caches.len(),
            self.spec_depths.len(),
        ];
        let mut point = vec![0usize; lens.len()];
        for (ai, &len) in lens.iter().enumerate() {
            let mut best = (0, f64::NEG_INFINITY);
            for level in 0..len {
                point[ai] = level;
                let cost = hardware_cost(&self.spec_at(&point));
                if cost > best.1 {
                    best = (level, cost);
                }
            }
            point[ai] = best.0;
        }
        hardware_cost(&self.spec_at(&point))
    }
}

/// The deterministic hardware-cost model, in arbitrary but fixed "gate
/// units". Nothing here is calibrated silicon — it only has to rank
/// machines plausibly and reproducibly: scheduling-unit entries are CAM
/// (2 units each), fetch bandwidth is multiported I-cache width (2 per
/// instruction slot per port), set-associativity doubles the data-cache
/// tag/way cost, ICOUNT adds its counter network, and *unlimited*
/// speculation costs the full shadow-recovery structure that a depth
/// limit lets a design shrink. Integer arithmetic throughout, so the
/// returned float is exact and platform-independent.
#[must_use]
pub fn hardware_cost(spec: &CellSpec) -> f64 {
    let policy = match spec.policy {
        FetchPolicy::TrueRoundRobin => 0,
        FetchPolicy::MaskedRoundRobin | FetchPolicy::ConditionalSwitch => 1,
        FetchPolicy::Icount => 3,
    };
    let predictor = match spec.predictor {
        PredictorKind::SharedBtb => 8,
        PredictorKind::Gshare => 6,
        PredictorKind::PartitionedBtb => 12,
    };
    let cache = match spec.cache {
        CacheKind::SetAssociative => 16,
        CacheKind::DirectMapped => 8,
    };
    let speculation = if spec.spec_depth == 0 {
        8
    } else {
        spec.spec_depth.min(8)
    };
    let units = policy
        + predictor
        + cache
        + speculation
        + 2 * spec.su_depth
        + 2 * spec.fetch_width * spec.fetch_threads;
    units as f64
}

fn warm_cells_dir(out: &Path) -> PathBuf {
    out.join("cells-warm")
}

fn warm_snap_dir(out: &Path) -> PathBuf {
    out.join("warm")
}

/// Persists a warm snapshot with the same framing discipline as the
/// mid-flight cell checkpoints: code version first (warm state does not
/// survive code changes), then the warmup length it was taken after,
/// then the self-validating snapshot wire format.
fn save_warm(path: &Path, code_version: &str, warmup: u64, snap: &Snapshot) -> io::Result<()> {
    let mut w = Writer::new();
    w.put_bytes(code_version.as_bytes());
    w.put_u64(warmup);
    w.put_bytes(&snap.to_bytes());
    write_atomic(path, &w.into_bytes())
}

/// Loads a persisted warm snapshot; any mismatch or parse failure means
/// "no snapshot" and the caller regenerates (fail closed).
fn load_warm(path: &Path, code_version: &str, warmup: u64) -> Option<Snapshot> {
    let bytes = fs::read(path).ok()?;
    let mut r = Reader::new(&bytes);
    if r.take_bytes().ok()? != code_version.as_bytes() || r.take_u64().ok()? != warmup {
        return None;
    }
    let snap = Snapshot::from_bytes(r.take_bytes().ok()?).ok()?;
    r.finish().ok()?;
    snap.warm.is_some().then_some(snap)
}

/// The per-thread program-identity vector a snapshot for `programs`
/// must carry (mirrors the simulator's own identity shape: one element
/// for a uniform machine, one per thread for a mix).
fn expected_identities(programs: &[Program]) -> Vec<u64> {
    programs.iter().map(program_identity).collect()
}

/// Stateful evaluator over one search space: resolves points to cell
/// records — cache-first against the store, warm-forked or cold —
/// and remembers every record it produced for the frontier report.
pub struct Explorer<'a> {
    sched: &'a Scheduler,
    /// The region being explored.
    pub space: SearchSpace,
    mode: EvalMode,
    /// The shared warm snapshot (one per explorer: work and threads are
    /// fixed across the space).
    warm_snap: Option<Snapshot>,
    records: BTreeMap<Vec<usize>, (CellSpec, CellRecord)>,
}

impl<'a> Explorer<'a> {
    /// Opens the warm namespaces under the scheduler's store.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors creating the `cells-warm`/`warm`
    /// subdirectories.
    pub fn new(sched: &'a Scheduler, space: SearchSpace, mode: EvalMode) -> io::Result<Self> {
        fs::create_dir_all(warm_cells_dir(sched.out()))?;
        fs::create_dir_all(warm_snap_dir(sched.out()))?;
        Ok(Explorer {
            sched,
            space,
            mode,
            warm_snap: None,
            records: BTreeMap::new(),
        })
    }

    /// How this explorer measures IPC.
    #[must_use]
    pub fn mode(&self) -> EvalMode {
        self.mode
    }

    /// Evaluates one point: measured IPC (to maximize) against hardware
    /// cost (to minimize); infeasible cells report `feasible: false`.
    ///
    /// # Panics
    ///
    /// Panics if a simulation faults or a forked run produces a wrong
    /// architectural answer — approximation must never corrupt results.
    pub fn objectives(&mut self, point: &[usize]) -> Objectives {
        let spec = self.space.spec_at(point);
        let rec = match self.mode {
            EvalMode::Full => self.full_record(&spec),
            EvalMode::Warm { warmup } => self.warm_record(&spec, warmup),
        };
        let o = Objectives {
            value: rec.ipc,
            cost: hardware_cost(&spec),
            feasible: rec.status == CellStatus::Done,
        };
        self.records.insert(point.to_vec(), (spec, rec));
        o
    }

    /// The record a previous [`objectives`](Self::objectives) call
    /// produced for `point`.
    #[must_use]
    pub fn record(&self, point: &[usize]) -> Option<&(CellSpec, CellRecord)> {
        self.records.get(point)
    }

    fn full_record(&self, spec: &CellSpec) -> CellRecord {
        self.sched.run_cell(spec, false, &mut |_| {}).rec
    }

    /// One warm-forked measurement, cache-first against the warm
    /// namespace under the same full key as the exact store.
    fn warm_record(&mut self, spec: &CellSpec, warmup: u64) -> CellRecord {
        let wid = format!("{}@w{warmup}", spec.id());
        let path = warm_cells_dir(self.sched.out()).join(format!("{wid}.cell"));
        let code_version = self.sched.opts().code_version.clone();
        let (config_hash, program_hash, built) = self.sched.identities(spec);
        if let Some(rec) = fs::read_to_string(&path)
            .ok()
            .and_then(|text| CellRecord::parse(&text))
            .filter(|rec| {
                rec.id == wid
                    && rec.code_version == code_version
                    && rec.config_hash == config_hash
                    && rec.program_hash == program_hash
            })
        {
            return rec;
        }
        let programs = match built.as_ref() {
            Err(e) => {
                let rec = crate::sweep::infeasible_record(
                    spec,
                    &code_version,
                    config_hash,
                    0,
                    format!("kernel does not lower at {} threads: {e}", spec.threads),
                );
                return self.persist_warm(&path, wid, rec);
            }
            Ok(ps) => ps.clone(),
        };
        let snap = match self.shared_warm(&programs, warmup) {
            Ok(snap) => snap,
            Err(why) => {
                // The kernel is too short (or otherwise unable) to warm:
                // fall back to the exact cold run, re-recorded under the
                // warm id so the trajectory stays self-contained. The
                // fallback reason travels in the record.
                let mut rec = self.full_record(spec);
                rec.id.clone_from(&wid);
                rec.reason = format!("warm fallback: {why}");
                return self.persist_warm(&path, wid, rec);
            }
        };
        let refs: Vec<&Program> = programs.iter().collect();
        let forked = match refs[..] {
            [p] => Simulator::fork_warm(spec.config(), p, &snap),
            _ => Simulator::fork_warm_mix(spec.config(), &refs, &snap),
        };
        let mut sim = match forked {
            Ok(sim) => sim,
            Err(e @ (SimError::RegisterWindow { .. } | SimError::Config(_))) => {
                let rec = crate::sweep::infeasible_record(
                    spec,
                    &code_version,
                    config_hash,
                    program_hash,
                    e.to_string(),
                );
                return self.persist_warm(&path, wid, rec);
            }
            Err(e) => panic!("{wid}: warm fork rejected: {e}"),
        };
        let stats = sim
            .run()
            .unwrap_or_else(|e| panic!("{wid}: measurement window failed: {e}"));
        self.verify(&wid, spec, &sim);
        let rec = CellRecord {
            id: wid.clone(),
            code_version,
            config_hash,
            program_hash,
            status: CellStatus::Done,
            // Measurement-window numbers only: the fork starts its cycle
            // and stat counters at zero, so these exclude the warmup.
            cycles: stats.cycles,
            committed: stats.committed_total(),
            ipc: stats.ipc(),
            hit_rate: stats.cache.hit_rate(),
            branch_accuracy: stats.branches.accuracy(),
            su_stalls: stats.su_stall_cycles,
            reason: String::new(),
        };
        self.persist_warm(&path, wid, rec)
    }

    fn persist_warm(&self, path: &Path, wid: String, rec: CellRecord) -> CellRecord {
        write_atomic(path, rec.to_lines().as_bytes())
            .unwrap_or_else(|e| panic!("{wid}: cannot persist warm cell: {e}"));
        rec
    }

    /// The shared warm snapshot for this space's `(work, threads)`,
    /// memoized in memory and on disk.
    fn shared_warm(&mut self, programs: &[Program], warmup: u64) -> Result<Snapshot, String> {
        if let Some(snap) = &self.warm_snap {
            return Ok(snap.clone());
        }
        let code_version = &self.sched.opts().code_version;
        let path = warm_snap_dir(self.sched.out()).join(format!(
            "{}-t{}-w{warmup}.warm",
            self.space.work.id_part(),
            self.space.threads
        ));
        let expected = expected_identities(programs);
        let snap =
            match load_warm(&path, code_version, warmup).filter(|s| s.program_hashes == expected) {
                Some(snap) => snap,
                None => {
                    let snap = make_warm(programs, self.space.threads, warmup)?;
                    save_warm(&path, code_version, warmup, &snap)
                        .map_err(|e| format!("cannot persist warm snapshot: {e}"))?;
                    snap
                }
            };
        self.warm_snap = Some(snap.clone());
        Ok(snap)
    }

    /// Re-verifies a forked run's architectural answer, per tenant
    /// segment for mixes — the warm path approximates *measurement*,
    /// never correctness.
    fn verify(&self, wid: &str, spec: &CellSpec, sim: &Simulator<'_>) {
        let words = sim.memory().words();
        if spec.work.is_mix() {
            for (tid, r) in spec.work.refs().iter().enumerate() {
                let (base, span) = sim.thread_segment(tid);
                let local = &words[(base / 8) as usize..((base + span) / 8) as usize];
                self.sched.check_ref(r, local).unwrap_or_else(|e| {
                    panic!("{wid}: thread {tid} wrong answer after warm fork: {e}")
                });
            }
        } else {
            self.sched
                .check_ref(&spec.work.refs()[0], words)
                .unwrap_or_else(|e| panic!("{wid}: wrong answer after warm fork: {e}"));
        }
    }
}

/// Builds the shared warm checkpoint: canonical machine, `warmup`
/// cycles, drain to quiescence, relaxed-identity snapshot.
fn make_warm(programs: &[Program], threads: usize, warmup: u64) -> Result<Snapshot, String> {
    let config = SimConfig::default().with_threads(threads);
    let refs: Vec<&Program> = programs.iter().collect();
    let mut sim = match refs[..] {
        [p] => Simulator::try_new(config, p),
        _ => Simulator::try_new_mix(config, &refs),
    }
    .map_err(|e| format!("canonical warmup machine rejected: {e}"))?;
    for _ in 0..warmup {
        if sim.finished() {
            return Err(format!("kernel retired within the {warmup}-cycle warmup"));
        }
        sim.step().map_err(|e| format!("warmup failed: {e}"))?;
    }
    sim.drain().map_err(|e| format!("drain failed: {e}"))?;
    if sim.finished() {
        return Err(format!("kernel retired within the {warmup}-cycle warmup"));
    }
    sim.checkpoint_warm(&warm::relax_all())
        .map_err(|e| format!("warm checkpoint failed: {e}"))
}

/// What [`run_search`] produced and where it wrote the artifacts.
pub struct SearchReport {
    /// The engine's raw outcome (evaluations, climb log, frontier).
    pub outcome: SearchOutcome,
    /// The frontier as concrete cells with their records, in the
    /// engine's canonical order (ascending cost).
    pub frontier: Vec<(CellSpec, CellRecord)>,
    /// The reproducible trajectory artifact.
    pub trajectory_path: PathBuf,
    /// The human-facing frontier report.
    pub frontier_path: PathBuf,
    /// The digest the trajectory artifact embeds — equal across runs
    /// iff the artifacts are byte-equal.
    pub trajectory_hash: u64,
}

/// Renders the frontier report: one JSON object per frontier cell, in
/// ascending-cost order, with the same deterministic float rendering as
/// `results.json`.
#[must_use]
pub fn frontier_json(frontier: &[(CellSpec, CellRecord)]) -> String {
    let mut out = String::from("[\n");
    for (i, (spec, rec)) in frontier.iter().enumerate() {
        out.push_str(&object_to_json(&[
            ("id", Cell::Text(rec.id.clone())),
            ("workload", Cell::Text(spec.work.name())),
            ("policy", Cell::Text(policy_abbrev(spec.policy).into())),
            ("predictor", Cell::Text(spec.predictor.abbrev().into())),
            ("threads", Cell::Int(spec.threads as u64)),
            ("fetch_threads", Cell::Int(spec.fetch_threads as u64)),
            ("fetch_width", Cell::Int(spec.fetch_width as u64)),
            ("su_depth", Cell::Int(spec.su_depth as u64)),
            ("cache", Cell::Text(cache_abbrev(spec.cache).into())),
            ("spec_depth", Cell::Int(spec.spec_depth as u64)),
            ("ipc", Cell::Float(rec.ipc)),
            ("cost", Cell::Float(hardware_cost(spec))),
            ("cycles", Cell::Int(rec.cycles)),
            ("committed", Cell::Int(rec.committed)),
        ]));
        out.push_str(if i + 1 < frontier.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Runs the deterministic Pareto search over `space` on `sched`'s
/// store, writing `search_trajectory.json` (byte-identical across
/// re-runs, including resumed ones) and `search_frontier.json` into the
/// store directory. `params.value_bound`/`cost_bound` are overwritten
/// from the space so scalarization is a pure function of the region.
///
/// # Errors
///
/// Fails on filesystem errors; simulation faults panic (as everywhere
/// in the sweep layer).
pub fn run_search(
    sched: &Scheduler,
    space: &SearchSpace,
    mode: EvalMode,
    params: &SearchParams,
) -> io::Result<SearchReport> {
    let mut explorer = Explorer::new(sched, space.clone(), mode)?;
    let axes = space.axes();
    let params = SearchParams {
        value_bound: space.value_bound(),
        cost_bound: space.cost_bound(),
        ..*params
    };
    let outcome = smt_search::search(&axes, &params, |p| explorer.objectives(p));
    let frontier: Vec<(CellSpec, CellRecord)> = outcome
        .frontier
        .iter()
        .map(|e| {
            explorer
                .record(&e.point)
                .expect("every frontier point was evaluated")
                .clone()
        })
        .collect();
    let trajectory_path = sched.out().join("search_trajectory.json");
    write_atomic(
        &trajectory_path,
        smt_search::trajectory_json(&axes, &params, &outcome).as_bytes(),
    )?;
    let frontier_path = sched.out().join("search_frontier.json");
    write_atomic(&frontier_path, frontier_json(&frontier).as_bytes())?;
    Ok(SearchReport {
        trajectory_hash: smt_search::trajectory_digest(&axes, &params, &outcome),
        outcome,
        frontier,
        trajectory_path,
        frontier_path,
    })
}

/// Evaluates *every* point of `space` and returns all evaluations plus
/// the brute-force Pareto frontier — the ground truth the searched
/// frontier is compared against on small spaces.
///
/// # Errors
///
/// Fails on filesystem errors opening the warm namespaces.
pub fn run_exhaustive(
    sched: &Scheduler,
    space: &SearchSpace,
    mode: EvalMode,
) -> io::Result<(Vec<Evaluation>, Vec<Evaluation>)> {
    let mut explorer = Explorer::new(sched, space.clone(), mode)?;
    Ok(smt_search::exhaustive(&space.axes(), |p| {
        explorer.objectives(p)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_workloads::WorkloadKind;

    fn space() -> SearchSpace {
        SearchSpace::smoke(WorkloadKind::Sieve.into(), 2)
    }

    #[test]
    fn axes_and_points_map_onto_cells() {
        let s = space();
        let axes = s.axes();
        assert_eq!(axes.len(), 7);
        assert_eq!(axes[0].levels, ["trr", "ic"]);
        assert_eq!(axes[4].levels, ["16", "32"]);
        let spec = s.spec_at(&[1, 0, 0, 0, 1, 1, 1]);
        assert_eq!(spec.policy, FetchPolicy::Icount);
        assert_eq!(spec.su_depth, 32);
        assert_eq!(spec.cache, CacheKind::DirectMapped);
        assert_eq!(spec.spec_depth, 2);
        assert_eq!(spec.threads, 2);
    }

    #[test]
    fn cost_model_is_additive_and_orders_plausibly() {
        let base = space().spec_at(&[0, 0, 0, 0, 0, 0, 0]);
        let deeper = CellSpec {
            su_depth: base.su_depth + 16,
            ..base.clone()
        };
        assert_eq!(
            hardware_cost(&deeper) - hardware_cost(&base),
            32.0,
            "2 units per SU entry"
        );
        let dm = CellSpec {
            cache: CacheKind::DirectMapped,
            ..base.clone()
        };
        assert!(hardware_cost(&dm) < hardware_cost(&base));
        let limited = CellSpec {
            spec_depth: 2,
            ..base.clone()
        };
        assert!(
            hardware_cost(&limited) < hardware_cost(&base),
            "a speculation limit shrinks recovery hardware"
        );
    }

    #[test]
    fn cost_bound_dominates_every_point_of_the_space() {
        let s = space();
        let bound = s.cost_bound();
        let (evals, _) = smt_search::exhaustive(&s.axes(), |p| Objectives {
            value: 0.0,
            cost: hardware_cost(&s.spec_at(p)),
            feasible: true,
        });
        for e in &evals {
            assert!(e.objectives.cost <= bound, "{:?}", e.point);
        }
        assert!(evals.iter().any(|e| e.objectives.cost == bound));
    }

    #[test]
    fn warm_snapshot_files_fail_closed() {
        let dir = std::env::temp_dir().join(format!("smt-warm-io-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.warm");
        assert!(load_warm(&path, "v", 10).is_none(), "absent file");
        fs::write(&path, b"garbage").unwrap();
        assert!(load_warm(&path, "v", 10).is_none(), "unparseable file");
        let _ = fs::remove_dir_all(&dir);
    }
}
