//! Generators for every table and figure of the paper's Section 5.
//!
//! Figure/table numbering follows the paper. Cycle counts are reported raw
//! (the paper plots millions; the *shapes* are what reproduce — see
//! EXPERIMENTS.md).

use smt_core::{CommitPolicy, FetchPolicy};
use smt_isa::FuClass;
use smt_mem::CacheKind;
use smt_workloads::{Group, WorkloadKind};

use crate::runner::{RunKey, Runner};
use crate::{Cell, Table};

/// Benchmarks of a group, in the paper's presentation order.
#[must_use]
pub fn group_kinds(group: Group) -> Vec<WorkloadKind> {
    WorkloadKind::ALL
        .iter()
        .copied()
        .filter(|k| k.group() == group)
        .collect()
}

/// Thread counts swept by the paper.
pub const THREAD_SWEEP: [usize; 6] = [1, 2, 3, 4, 5, 6];

/// Scheduling-unit depths swept by the paper (reconstructed; DESIGN.md).
pub const SU_SWEEP: [usize; 4] = [16, 32, 48, 64];

fn fetch_policy_figure(runner: &mut Runner, group: Group, id: &str) -> Table {
    let mut t = Table::new(
        id,
        &format!("execution cycles of {group} under the three fetch policies (4 threads) and the single-threaded base case"),
        &["TrueRR", "MaskedRR", "CSwitch", "BaseCase"],
    );
    for kind in group_kinds(group) {
        let mut row = Vec::new();
        for fetch in [
            FetchPolicy::TrueRoundRobin,
            FetchPolicy::MaskedRoundRobin,
            FetchPolicy::ConditionalSwitch,
        ] {
            let key = RunKey {
                fetch,
                ..RunKey::default_point(kind)
            };
            row.push(Cell::Int(runner.cycles(key)));
        }
        row.push(Cell::Int(runner.cycles(RunKey::base_case(kind))));
        t.push_row(kind.name(), row);
    }
    t
}

/// Figure 3 — fetch policies, Group I.
pub fn fig03_fetch_policy_group1(runner: &mut Runner) -> Table {
    fetch_policy_figure(runner, Group::I, "Figure 3")
}

/// Figure 4 — fetch policies, Group II.
pub fn fig04_fetch_policy_group2(runner: &mut Runner) -> Table {
    fetch_policy_figure(runner, Group::II, "Figure 4")
}

fn thread_sweep_figure(runner: &mut Runner, group: Group, id: &str) -> Table {
    let mut t = Table::new(
        id,
        &format!("execution cycles of {group} for 1–6 resident threads"),
        &["One", "Two", "Three", "Four", "Five", "Six"],
    );
    for kind in group_kinds(group) {
        let row = THREAD_SWEEP
            .iter()
            .map(|&threads| {
                Cell::Int(runner.cycles(RunKey {
                    threads,
                    ..RunKey::default_point(kind)
                }))
            })
            .collect();
        t.push_row(kind.name(), row);
    }
    t
}

/// Figure 5 — thread-count sweep, Group I.
pub fn fig05_threads_group1(runner: &mut Runner) -> Table {
    thread_sweep_figure(runner, Group::I, "Figure 5")
}

/// Figure 6 — thread-count sweep, Group II.
pub fn fig06_threads_group2(runner: &mut Runner) -> Table {
    thread_sweep_figure(runner, Group::II, "Figure 6")
}

fn cache_figure(runner: &mut Runner, group: Group, id: &str) -> Table {
    let mut t = Table::new(
        id,
        &format!("average execution cycles of {group} with direct-mapped vs 4-way set-associative caches, 1–6 threads"),
        &["Direct", "Associative"],
    );
    for &threads in &THREAD_SWEEP {
        let mut row = Vec::new();
        for cache in [CacheKind::DirectMapped, CacheKind::SetAssociative] {
            let kinds = group_kinds(group);
            let total: u64 = kinds
                .iter()
                .map(|&kind| {
                    runner.cycles(RunKey {
                        threads,
                        cache,
                        ..RunKey::default_point(kind)
                    })
                })
                .sum();
            row.push(Cell::Int(total / kinds.len() as u64));
        }
        t.push_row(format!("{threads} thread(s)"), row);
    }
    t
}

/// Figure 7 — direct vs associative cache, Group I averages.
pub fn fig07_cache_group1(runner: &mut Runner) -> Table {
    cache_figure(runner, Group::I, "Figure 7")
}

/// Figure 8 — direct vs associative cache, Group II averages.
pub fn fig08_cache_group2(runner: &mut Runner) -> Table {
    cache_figure(runner, Group::II, "Figure 8")
}

/// Table 2 — average hit rates for direct and associative caches across
/// thread counts, per group.
pub fn table2_hit_rates(runner: &mut Runner) -> Table {
    let mut t = Table::new(
        "Table 2",
        "average data-cache hit rates (%) for direct-mapped and 4-way set-associative caches",
        &["Direct", "Assoc."],
    );
    for &threads in &THREAD_SWEEP {
        for group in [Group::I, Group::II] {
            let kinds = group_kinds(group);
            let mut row = Vec::new();
            for cache in [CacheKind::DirectMapped, CacheKind::SetAssociative] {
                let sum: f64 = kinds
                    .iter()
                    .map(|&kind| {
                        runner
                            .run(RunKey {
                                threads,
                                cache,
                                ..RunKey::default_point(kind)
                            })
                            .hit_rate
                    })
                    .sum();
                row.push(Cell::Float(sum / kinds.len() as f64));
            }
            let label = match group {
                Group::I => format!("{threads} thr, Group I"),
                Group::II => format!("{threads} thr, Group II"),
            };
            t.push_row(label, row);
        }
    }
    t
}

fn su_depth_figure(runner: &mut Runner, group: Group, id: &str) -> Table {
    let columns: Vec<String> = [4, 1]
        .iter()
        .flat_map(|&threads| SU_SWEEP.iter().map(move |&d| format!("{threads}T, SU{d}")))
        .collect();
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut t = Table::new(
        id,
        &format!("execution cycles of {group} for scheduling units of 16–64 entries, 4-thread and single-thread"),
        &col_refs,
    );
    for kind in group_kinds(group) {
        let mut row = Vec::new();
        for threads in [4usize, 1] {
            for &su_depth in &SU_SWEEP {
                row.push(Cell::Int(runner.cycles(RunKey {
                    threads,
                    su_depth,
                    ..RunKey::default_point(kind)
                })));
            }
        }
        t.push_row(kind.name(), row);
    }
    t
}

/// Figure 9 — scheduling-unit depth sweep, Group I.
pub fn fig09_su_depth_group1(runner: &mut Runner) -> Table {
    su_depth_figure(runner, Group::I, "Figure 9")
}

/// Figure 10 — scheduling-unit depth sweep, Group II.
pub fn fig10_su_depth_group2(runner: &mut Runner) -> Table {
    su_depth_figure(runner, Group::II, "Figure 10")
}

fn fu_config_figure(runner: &mut Runner, group: Group, id: &str) -> Table {
    let mut t = Table::new(
        id,
        &format!("execution cycles of {group} with default and enhanced (++) functional units, 4-thread and base"),
        &["4 Threads", "4 Threads++", "Base", "Base++"],
    );
    for kind in group_kinds(group) {
        let mut row = Vec::new();
        for (threads, enhanced) in [(4usize, false), (4, true), (1, false), (1, true)] {
            row.push(Cell::Int(runner.cycles(RunKey {
                threads,
                enhanced_fu: enhanced,
                ..RunKey::default_point(kind)
            })));
        }
        t.push_row(kind.name(), row);
    }
    t
}

/// Figure 11 — functional-unit configurations, Group I.
pub fn fig11_fu_config_group1(runner: &mut Runner) -> Table {
    fu_config_figure(runner, Group::I, "Figure 11")
}

/// Figure 12 — functional-unit configurations, Group II.
pub fn fig12_fu_config_group2(runner: &mut Runner) -> Table {
    fu_config_figure(runner, Group::II, "Figure 12")
}

/// Table 3 — average occupancy of each *extra* functional unit (enhanced
/// configuration, 4 threads) as a percentage of total cycles, per group.
pub fn table3_fu_usage(runner: &mut Runner) -> Table {
    let classes = [
        FuClass::Alu,
        FuClass::Load,
        FuClass::Store,
        FuClass::IntMul,
        FuClass::IntDiv,
        FuClass::FpAdd,
        FuClass::FpMul,
        FuClass::FpDiv,
    ];
    let mut t = Table::new(
        "Table 3",
        "average usage of the extra functional units as a percentage of total cycles (enhanced configuration, 4 threads)",
        &["Group I %", "Group II %"],
    );
    for class in classes {
        let mut row = Vec::new();
        for group in [Group::I, Group::II] {
            let kinds = group_kinds(group);
            let sum: f64 = kinds
                .iter()
                .map(|&kind| {
                    let key = RunKey {
                        enhanced_fu: true,
                        ..RunKey::default_point(kind)
                    };
                    runner.extra_fu_usage(key, class)
                })
                .sum();
            row.push(Cell::Float(sum / kinds.len() as f64));
        }
        t.push_row(format!("Extra {class}"), row);
    }
    t
}

fn commit_figure(runner: &mut Runner, group: Group, id: &str) -> Table {
    let mut t = Table::new(
        id,
        &format!("execution cycles of {group} with flexible (multiple-block) vs lowest-only result commit, 4 threads"),
        &["Multiple", "Lowest", "SU stalls (Multiple)", "SU stalls (Lowest)"],
    );
    for kind in group_kinds(group) {
        let flexible = runner.run(RunKey {
            commit: CommitPolicy::Flexible,
            ..RunKey::default_point(kind)
        });
        let lowest = runner.run(RunKey {
            commit: CommitPolicy::LowestOnly,
            ..RunKey::default_point(kind)
        });
        t.push_row(
            kind.name(),
            vec![
                Cell::Int(flexible.cycles),
                Cell::Int(lowest.cycles),
                Cell::Int(flexible.su_stalls),
                Cell::Int(lowest.su_stalls),
            ],
        );
    }
    t
}

/// Figure 13 — commit policy, Group I.
pub fn fig13_commit_group1(runner: &mut Runner) -> Table {
    commit_figure(runner, Group::I, "Figure 13")
}

/// Figure 14 — commit policy, Group II.
pub fn fig14_commit_group2(runner: &mut Runner) -> Table {
    commit_figure(runner, Group::II, "Figure 14")
}

/// Section 5.2 summary — peak improvement per benchmark over the thread
/// sweep, using the paper's speedup formula, plus prediction accuracy at
/// the default point.
pub fn summary_speedups(runner: &mut Runner) -> Table {
    let mut t = Table::new(
        "Section 5.2 summary",
        "peak speedup over single-threaded execution (max over 2–6 threads), best thread count, and branch accuracy",
        &["Peak speedup %", "Best threads", "Branch accuracy %"],
    );
    for kind in WorkloadKind::ALL {
        let base = runner.cycles(RunKey::base_case(kind));
        let (mut best_pct, mut best_threads) = (f64::NEG_INFINITY, 1);
        for &threads in &THREAD_SWEEP[1..] {
            let cycles = runner.cycles(RunKey {
                threads,
                ..RunKey::default_point(kind)
            });
            let pct = smt_core::stats::speedup(base, cycles) * 100.0;
            if pct > best_pct {
                best_pct = pct;
                best_threads = threads;
            }
        }
        let accuracy = runner.run(RunKey::default_point(kind)).branch_accuracy;
        t.push_row(
            kind.name(),
            vec![
                Cell::Float(best_pct),
                Cell::Int(best_threads as u64),
                Cell::Float(accuracy),
            ],
        );
    }
    t
}

// ---- ablations and extensions beyond the paper's figures -------------------
//
// Table 2 of the paper lists hardware features it varied but shows no
// dedicated figures for (result bypassing, scoreboarding instead of
// renaming); Section 6 proposes extensions ("employ more cache ports").
// These tables cover them, plus sensitivity sweeps for two reconstructed
// parameters (store-buffer depth, miss penalty).

/// Representative benchmarks for the ablation tables: one compute-dense
/// loop, one memory-bound loop, one irregular Group II code, one sync-bound.
const ABLATION_SET: [WorkloadKind; 4] = [
    WorkloadKind::Ll7,
    WorkloadKind::Ll12,
    WorkloadKind::Mpd,
    WorkloadKind::Ll5,
];

/// Ablation A — result bypassing on/off (Table 2's "Bypassing of results"
/// row), 4 threads and single-thread.
pub fn ablation_bypass(runner: &mut Runner) -> Table {
    let mut t = Table::new(
        "Ablation A",
        "execution cycles with and without result bypassing",
        &["4T bypass", "4T no-bypass", "1T bypass", "1T no-bypass"],
    );
    for kind in ABLATION_SET {
        let mut row = Vec::new();
        for (threads, bypass) in [(4usize, true), (4, false), (1, true), (1, false)] {
            let cfg = RunKey {
                threads,
                ..RunKey::default_point(kind)
            }
            .to_config()
            .with_bypass(bypass);
            row.push(Cell::Int(runner.run_config(kind, cfg).cycles));
        }
        t.push_row(kind.name(), row);
    }
    t
}

/// Ablation B — full register renaming vs 2-bit scoreboarding (Table 2's
/// "Register Renaming" row).
pub fn ablation_renaming(runner: &mut Runner) -> Table {
    use smt_core::RenamingMode;
    let mut t = Table::new(
        "Ablation B",
        "execution cycles with full renaming vs scoreboarding (decode stalls on RAW hazards)",
        &[
            "4T renaming",
            "4T scoreboard",
            "1T renaming",
            "1T scoreboard",
        ],
    );
    for kind in ABLATION_SET {
        let mut row = Vec::new();
        for (threads, mode) in [
            (4usize, RenamingMode::Full),
            (4, RenamingMode::Scoreboard),
            (1, RenamingMode::Full),
            (1, RenamingMode::Scoreboard),
        ] {
            let cfg = RunKey {
                threads,
                ..RunKey::default_point(kind)
            }
            .to_config()
            .with_renaming(mode);
            row.push(Cell::Int(runner.run_config(kind, cfg).cycles));
        }
        t.push_row(kind.name(), row);
    }
    t
}

/// Ablation C — store-buffer depth sensitivity (the paper fixes 8 entries).
pub fn ablation_store_buffer(runner: &mut Runner) -> Table {
    let depths = [1usize, 2, 4, 8, 16];
    let columns: Vec<String> = depths.iter().map(|d| format!("SB{d}")).collect();
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Ablation C",
        "execution cycles vs store-buffer depth (4 threads)",
        &col_refs,
    );
    for kind in [
        WorkloadKind::Sieve,
        WorkloadKind::Matrix,
        WorkloadKind::Laplace,
    ] {
        let row = depths
            .iter()
            .map(|&d| {
                let cfg = RunKey::default_point(kind).to_config().with_store_buffer(d);
                Cell::Int(runner.run_config(kind, cfg).cycles)
            })
            .collect();
        t.push_row(kind.name(), row);
    }
    t
}

/// Ablation D — miss-penalty sensitivity for the reconstructed 12-cycle
/// value (see DESIGN.md).
pub fn ablation_miss_penalty(runner: &mut Runner) -> Table {
    let penalties = [6u64, 12, 24, 48];
    let columns: Vec<String> = penalties.iter().map(|p| format!("{p}cy")).collect();
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Ablation D",
        "execution cycles vs cache miss penalty (4 threads; the repo's default is 12)",
        &col_refs,
    );
    for kind in [WorkloadKind::Ll1, WorkloadKind::Ll12, WorkloadKind::Mpd] {
        let row = penalties
            .iter()
            .map(|&p| {
                let mut cfg = RunKey::default_point(kind).to_config();
                cfg.cache.miss_penalty = p;
                Cell::Int(runner.run_config(kind, cfg).cycles)
            })
            .collect();
        t.push_row(kind.name(), row);
    }
    t
}

/// Extension — outstanding-refill (MSHR) count, the paper's Section 6
/// suggestion to "employ more cache ports, especially the scarce ones".
pub fn ext_cache_ports(runner: &mut Runner) -> Table {
    let mshrs = [1usize, 2, 4];
    let columns: Vec<String> = mshrs.iter().map(|m| format!("{m} MSHR")).collect();
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Extension: cache ports",
        "execution cycles vs outstanding-refill slots (4 threads; the paper's machine has 1)",
        &col_refs,
    );
    for kind in [WorkloadKind::Mpd, WorkloadKind::Ll12, WorkloadKind::Laplace] {
        let row = mshrs
            .iter()
            .map(|&m| {
                let mut cfg = RunKey::default_point(kind).to_config();
                cfg.cache = cfg.cache.with_mshrs(m);
                Cell::Int(runner.run_config(kind, cfg).cycles)
            })
            .collect();
        t.push_row(kind.name(), row);
    }
    t
}

/// Extension — aligned fetch blocks, the machine model behind the paper's
/// Section 6 suggestion to "align instructions in memory in such a way that
/// control transfer operations lie at the end of a fetched block, and
/// branch targets at the beginning of a block". Fetching aligned blocks
/// wastes the slots before a mid-block entry point, so unaligned targets
/// cost fetch bandwidth.
pub fn ext_fetch_alignment(runner: &mut Runner) -> Table {
    let mut t = Table::new(
        "Extension: fetch alignment",
        "execution cycles with free vs block-aligned fetch (4 threads)",
        &["Free placement", "Aligned blocks", "Penalty %"],
    );
    for kind in [
        WorkloadKind::Ll1,
        WorkloadKind::Ll7,
        WorkloadKind::Matrix,
        WorkloadKind::Laplace,
    ] {
        let free = runner.run_config(kind, RunKey::default_point(kind).to_config());
        let aligned = runner.run_config(
            kind,
            RunKey::default_point(kind)
                .to_config()
                .with_aligned_fetch(true),
        );
        let penalty = 100.0 * (aligned.cycles as f64 - free.cycles as f64) / free.cycles as f64;
        t.push_row(
            kind.name(),
            vec![
                Cell::Int(free.cycles),
                Cell::Int(aligned.cycles),
                Cell::Float(penalty),
            ],
        );
    }
    t
}

/// Observability — per-thread commit counts and IPC shares at the default
/// 4-thread point. Cycles are shared, so the per-thread IPCs sum to the
/// aggregate; the spread between the busiest and laziest thread is the
/// fairness the aggregate number hides (True Round Robin hands every
/// thread the same fetch slots, but sync stalls and cache misses land
/// unevenly).
pub fn obs_per_thread_ipc(runner: &mut Runner) -> Table {
    let mut t = Table::new(
        "Observability: per-thread IPC",
        "per-thread committed instructions and IPC share (4 threads, True Round Robin)",
        &[
            "T0 insns", "T1 insns", "T2 insns", "T3 insns", "T0 IPC", "T1 IPC", "T2 IPC", "T3 IPC",
            "IPC",
        ],
    );
    for kind in WorkloadKind::ALL {
        let o = runner.run(RunKey::default_point(kind));
        let per = o.stats.per_thread_ipc();
        let mut row: Vec<Cell> = o
            .stats
            .committed
            .iter()
            .map(|&c| Cell::Int(c))
            .chain(per.iter().map(|&i| Cell::Float(i)))
            .collect();
        // The recording pass hands back a default-stats dummy with no
        // per-thread vectors; pad so the row width check holds either way.
        row.resize(8, Cell::Int(0));
        row.push(Cell::Float(o.stats.ipc()));
        t.push_row(kind.name(), row);
    }
    t
}

/// Thread counts for the CPI-stack table. Matrix and LL7 need 17 and 19
/// architectural registers, more than the 16-register split an 8-thread
/// partition would leave, so the sweep tops out at the paper's 6 threads.
const CPI_STACK_THREADS: [usize; 3] = [1, 4, 6];

/// Observability — the CPI stack of the FLOP-dense benchmarks across the
/// thread sweep: where the machine's 4 slots/cycle of frontend bandwidth
/// actually went. The `committed %` column is machine utilization; the
/// loss columns explain the saturation knee (see EXPERIMENTS.md).
pub fn obs_cpi_stack(runner: &mut Runner) -> Table {
    let causes = [
        ("committed", smt_trace::SlotCause::Committed),
        ("fragment", smt_trace::SlotCause::Fragment),
        ("fetch-starved", smt_trace::SlotCause::FetchStarved),
        ("sync-wait", smt_trace::SlotCause::SyncWait),
        ("operand-wait", smt_trace::SlotCause::OperandWait),
        ("fu-busy", smt_trace::SlotCause::FuBusy),
        ("dcache-miss", smt_trace::SlotCause::DCacheMiss),
        ("su-full", smt_trace::SlotCause::SuFull),
        ("squash", smt_trace::SlotCause::SquashDiscard),
    ];
    let mut columns = vec!["CPI".to_string()];
    columns.extend(causes.iter().map(|(name, _)| format!("{name} %")));
    columns.push("other %".to_string());
    let col_refs: Vec<&str> = columns.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Observability: CPI stack",
        "slot-bandwidth attribution in percent of 4 slots/cycle (True Round Robin)",
        &col_refs,
    );
    for kind in [WorkloadKind::Matrix, WorkloadKind::Ll7] {
        for threads in CPI_STACK_THREADS {
            let b = runner.run_cpi(RunKey {
                threads,
                ..RunKey::default_point(kind)
            });
            let mut row = vec![Cell::Float(b.cpi())];
            let mut listed = 0.0;
            for &(_, cause) in &causes {
                let pct = b.share_pct(cause);
                listed += pct;
                row.push(Cell::Float(pct));
            }
            row.push(Cell::Float((100.0 - listed).max(0.0)));
            t.push_row(format!("{} x{threads}", kind.name()), row);
        }
    }
    t
}

/// A named table generator, as listed by [`all`].
pub type Generator = fn(&mut Runner) -> Table;

/// Every generator, in paper order, for the report binary and benches.
#[must_use]
pub fn all() -> Vec<(&'static str, Generator)> {
    vec![
        ("fig03", fig03_fetch_policy_group1),
        ("fig04", fig04_fetch_policy_group2),
        ("fig05", fig05_threads_group1),
        ("fig06", fig06_threads_group2),
        ("fig07", fig07_cache_group1),
        ("fig08", fig08_cache_group2),
        ("table2", table2_hit_rates),
        ("fig09", fig09_su_depth_group1),
        ("fig10", fig10_su_depth_group2),
        ("fig11", fig11_fu_config_group1),
        ("fig12", fig12_fu_config_group2),
        ("table3", table3_fu_usage),
        ("fig13", fig13_commit_group1),
        ("fig14", fig14_commit_group2),
        ("summary", summary_speedups),
        ("ablation_bypass", ablation_bypass),
        ("ablation_renaming", ablation_renaming),
        ("ablation_store_buffer", ablation_store_buffer),
        ("ablation_miss_penalty", ablation_miss_penalty),
        ("ext_cache_ports", ext_cache_ports),
        ("ext_fetch_alignment", ext_fetch_alignment),
        ("obs_per_thread", obs_per_thread_ipc),
        ("obs_cpi_stack", obs_cpi_stack),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_workloads::Scale;

    #[test]
    fn fig03_has_six_rows_and_four_columns() {
        let mut r = Runner::new(Scale::Test);
        let t = fig03_fetch_policy_group1(&mut r);
        assert_eq!(t.rows.len(), 6);
        assert_eq!(t.columns.len(), 4);
        for row in &t.rows {
            for cell in &row.values {
                assert!(matches!(cell, Cell::Int(c) if *c > 0), "{row:?}");
            }
        }
    }

    #[test]
    fn table2_covers_both_groups_across_threads() {
        let mut r = Runner::new(Scale::Test);
        let t = table2_hit_rates(&mut r);
        assert_eq!(t.rows.len(), 12); // 6 thread counts × 2 groups
        for row in &t.rows {
            for cell in &row.values {
                let Cell::Float(rate) = cell else {
                    panic!("{cell:?}")
                };
                assert!((0.0..=100.0).contains(rate));
            }
        }
    }

    #[test]
    fn summary_reports_all_eleven_benchmarks() {
        let mut r = Runner::new(Scale::Test);
        let t = summary_speedups(&mut r);
        assert_eq!(t.rows.len(), 11);
    }

    #[test]
    fn generator_registry_is_complete() {
        assert_eq!(all().len(), 23);
    }

    #[test]
    fn per_thread_ipcs_sum_to_the_aggregate() {
        let mut r = Runner::new(Scale::Test);
        let t = obs_per_thread_ipc(&mut r);
        assert_eq!(t.rows.len(), 11);
        for row in &t.rows {
            let floats: Vec<f64> = row
                .values
                .iter()
                .filter_map(|c| match c {
                    Cell::Float(v) => Some(*v),
                    Cell::Int(_) => None,
                    other => panic!("{other:?}"),
                })
                .collect();
            assert_eq!(floats.len(), 5, "{row:?}");
            let sum: f64 = floats[..4].iter().sum();
            assert!((sum - floats[4]).abs() < 1e-9, "{row:?}");
        }
    }

    #[test]
    fn cpi_stack_shares_cover_the_bandwidth() {
        let mut r = Runner::new(Scale::Test);
        let t = obs_cpi_stack(&mut r);
        assert_eq!(t.rows.len(), 6); // 2 benchmarks × 3 thread counts
        for row in &t.rows {
            let shares: f64 = row.values[1..]
                .iter()
                .map(|c| match c {
                    Cell::Float(v) => *v,
                    other => panic!("{other:?}"),
                })
                .sum();
            assert!(
                (shares - 100.0).abs() < 0.5,
                "listed + other must cover ~100 %: {row:?}"
            );
        }
    }
}
