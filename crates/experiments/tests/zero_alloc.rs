//! Steady-state stepping must never touch the heap: every queue, slab,
//! and scratch buffer is pre-sized from `SimConfig` at construction (or
//! grown to its high-water mark during the first few hundred cycles) and
//! reused thereafter. A counting global allocator proves it — this lives
//! in its own integration-test binary because `#[global_allocator]` is
//! process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use smt_core::{SimConfig, Simulator};
use smt_workloads::{workload, Scale, WorkloadKind};

/// Counts allocation events (alloc + realloc); frees are not interesting
/// — a free implies a matching earlier allocation.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocation events across `cycles` steps of a warmed-up simulation.
fn steady_state_allocs(kind: WorkloadKind, warmup: u64, cycles: u64) -> u64 {
    let program = workload(kind, Scale::Paper).build(4).expect("kernel fits");
    let mut sim = Simulator::new(SimConfig::default(), &program);
    for _ in 0..warmup {
        assert!(!sim.finished(), "workload too short to reach steady state");
        sim.step().expect("steps");
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..cycles {
        assert!(!sim.finished(), "workload too short to hold steady state");
        sim.step().expect("steps");
    }
    let n = ALLOCS.load(Ordering::Relaxed) - before;
    println!("{kind:?}: {n} allocation events across {cycles} steady-state cycles");
    n
}

#[test]
fn matrix_steady_state_makes_no_heap_allocations() {
    assert_eq!(steady_state_allocs(WorkloadKind::Matrix, 2_000, 10_000), 0);
}

#[test]
fn ll7_steady_state_makes_no_heap_allocations() {
    // Recorded for the record alongside Matrix: LL7's recurrence chains
    // drive different queue high-water marks, and it too settles to zero.
    // (The whole paper-scale run is 9063 cycles, so the window is smaller.)
    assert_eq!(steady_state_allocs(WorkloadKind::Ll7, 2_000, 5_000), 0);
}
