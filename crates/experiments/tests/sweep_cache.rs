//! Batching is scheduling, not semantics: a sweep run as per-cell jobs and
//! the same sweep run as interleaved super-jobs must leave byte-identical
//! artifacts — the merged `results.json` *and* every content-addressed
//! cell file — including when a cell resumes from a mid-flight snapshot
//! the way a SIGKILLed worker would (the CI smoke job delivers the real
//! signal; here the same on-disk state is planted directly).

use std::fs;
use std::path::PathBuf;

use smt_core::{FetchPolicy, PredictorKind, Simulator};
use smt_experiments::sweep::{plant_checkpoint, run_sweep, CellSpec, Grid, SweepOptions};
use smt_mem::CacheKind;
use smt_workloads::{workload, Scale, WorkloadKind};

/// A fresh directory under the system temp dir; unique per test so the
/// suite can run in parallel.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smt-sweep-cache-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn opts(batch: Option<usize>) -> SweepOptions {
    SweepOptions {
        scale: Scale::Test,
        workers: 2,
        checkpoint_every: Some(200),
        batch,
        ..SweepOptions::default()
    }
}

/// Reads every cell file into `(name, bytes)`, sorted by name.
fn cell_files(out: &std::path::Path) -> Vec<(String, Vec<u8>)> {
    let mut cells: Vec<(String, Vec<u8>)> = fs::read_dir(out.join("cells"))
        .expect("cells dir")
        .map(|e| {
            let e = e.expect("dir entry");
            (
                e.file_name().into_string().expect("utf-8 name"),
                fs::read(e.path()).expect("cell file"),
            )
        })
        .collect();
    cells.sort();
    cells
}

#[test]
fn batched_and_unbatched_sweeps_leave_identical_artifacts() {
    let grid = Grid::smoke();
    let (a, b) = (scratch("unbatched"), scratch("batched"));
    let one = run_sweep(&grid, &a, &opts(Some(1))).expect("unbatched sweep");
    let many = run_sweep(&grid, &b, &opts(Some(grid.cells().len()))).expect("batched sweep");
    assert_eq!(one.batch, 1);
    assert_eq!(many.batch, grid.cells().len());
    assert_eq!(one.total, many.total);
    assert_eq!(one.executed, many.executed);
    assert_eq!(one.infeasible, many.infeasible);
    let (ra, rb) = (
        fs::read(a.join("results.json")).expect("results a"),
        fs::read(b.join("results.json")).expect("results b"),
    );
    assert_eq!(ra, rb, "results.json differs between batchings");
    assert_eq!(
        cell_files(&a),
        cell_files(&b),
        "cache entries differ between batchings"
    );
    let _ = fs::remove_dir_all(&a);
    let _ = fs::remove_dir_all(&b);
}

#[test]
fn batched_resume_from_planted_snapshot_matches_a_clean_run() {
    let grid = Grid::smoke();
    let opts_batched = opts(Some(6));
    // The reference: an uninterrupted, unbatched sweep.
    let clean = scratch("clean");
    run_sweep(&grid, &clean, &opts(Some(1))).expect("clean sweep");

    // The victim: one feasible cell is left exactly as a killed worker
    // would leave it — a validated snapshot in ckpt/ and no cell file.
    let spec = CellSpec {
        work: WorkloadKind::Sieve.into(),
        policy: FetchPolicy::TrueRoundRobin,
        predictor: PredictorKind::SharedBtb,
        threads: 4,
        fetch_threads: 1,
        fetch_width: 4,
        su_depth: 32,
        cache: CacheKind::SetAssociative,
        spec_depth: 0,
    };
    let program = workload(WorkloadKind::Sieve, Scale::Test)
        .build(spec.threads)
        .expect("kernel fits");
    let mut sim = Simulator::new(spec.config(), &program);
    for _ in 0..200 {
        assert!(!sim.finished(), "snapshot must be mid-flight");
        sim.step().expect("steps");
    }
    let interrupted = scratch("interrupted");
    plant_checkpoint(
        &interrupted,
        &spec,
        &opts_batched.code_version,
        &sim.checkpoint(),
    )
    .expect("plant snapshot");

    let summary = run_sweep(&grid, &interrupted, &opts_batched).expect("resumed sweep");
    assert_eq!(
        summary.resumed, 1,
        "the planted cell must resume, not restart"
    );
    assert_eq!(
        fs::read(clean.join("results.json")).expect("clean results"),
        fs::read(interrupted.join("results.json")).expect("resumed results"),
        "resumed batched sweep must serialize byte-identically"
    );
    assert_eq!(cell_files(&clean), cell_files(&interrupted));
    let _ = fs::remove_dir_all(&clean);
    let _ = fs::remove_dir_all(&interrupted);
}
