//! Exporters turning a [`LifecycleRecorder`](crate::lifecycle::LifecycleRecorder)
//! into files external viewers open directly:
//!
//! * [`konata`] — the Konata pipeline-viewer text format,
//! * [`chrome`] — Chrome/Perfetto `trace_event` JSON.
//!
//! Both are pure string builders over the recorded lifecycle — no I/O, no
//! external dependencies (the crate cannot use the JSON writer in
//! `smt-experiments` without a dependency cycle, so [`chrome`] carries its
//! own ~15-line escaper under the same no-deps policy).

pub mod chrome;
pub mod konata;

/// Appends `s` to `out` JSON-escaped (quotes, backslashes, control chars).
fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaper_handles_specials() {
        let mut out = String::new();
        escape_json_into(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }
}
