//! The trace event stream: what the simulator tells an installed
//! [`TraceSink`] about every pipeline-visible thing that happens.
//!
//! The event model is built around one accounting discipline, chosen so the
//! CPI-stack invariant holds *by construction* rather than by correlation:
//!
//! * **Every cycle the decoder disposes of exactly
//!   `block_size × fetch_threads` slots** — `block_size` per decode lane,
//!   one lane per fetch port. Each slot either admits an instruction into
//!   the scheduling unit ([`TraceEvent::Decoded`]) or is lost to a
//!   classified cause ([`TraceEvent::SlotsLost`]). An empty frontend, a
//!   full scheduling unit, a scoreboard retry, and a short decode group
//!   all emit their missing slots with the cause in effect that cycle.
//! * **Every decoded instruction leaves the window exactly once**, via
//!   [`TraceEvent::Retired`] (architectural commit, a discarded `WAIT`
//!   spin poll, or the fault that aborts the run) or
//!   [`TraceEvent::Squashed`] (wrong-path discard). Its slot's final
//!   classification is deferred until that moment.
//!
//! Summing admitted-slot fates and lost slots therefore reproduces
//! `width × cycles` exactly — see [`crate::cpi::CpiStack`].
//!
//! Identity: every instruction that enters the scheduling unit gets a
//! monotonically increasing `uid`, assigned at decode. Instructions fetched
//! but never decoded (wrong-path fetch groups discarded by a squash, dead
//! slots after a jump) have no uid and produce no events.

use smt_isa::{DecodedInsn, FuClass, MAX_THREADS};

/// Cause classification for one slot of frontend/commit bandwidth.
///
/// The taxonomy refines the coarse "SU full" of the paper's stall
/// accounting into the *reason the head block cannot drain*, probed at
/// decode time — decode runs after this cycle's issue/writeback/commit, so
/// the head block's state is fully up to date when classified.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum SlotCause {
    /// The slot carried an instruction that architecturally committed.
    Committed,
    /// Decode group shorter than the machine width: a taken-branch
    /// truncated fetch group, dead slots after a jump/`WAIT`/`halt`, or a
    /// text-segment boundary.
    Fragment,
    /// No block at the decoder: the selected thread could not fetch, every
    /// thread is drained/masked, or the slot was wasted on a non-fetchable
    /// thread (True Round Robin).
    FetchStarved,
    /// Synchronization wait: the frontend is idle because every unretired
    /// thread is suspended on a `WAIT`, the head of the window is an
    /// unfinished sync primitive, or the slot carried a `WAIT` poll that
    /// retired as a spin.
    SyncWait,
    /// Scheduling unit full with the head block still waiting on a source
    /// operand — or a scoreboard-mode decode retry.
    OperandWait,
    /// Scheduling unit full with the head block ready to issue but its
    /// functional-unit class occupied, or executing a long-latency op.
    FuBusy,
    /// Scheduling unit full with the head block executing a load whose data
    /// missed in the data cache.
    DCacheMiss,
    /// Scheduling unit full with the head block's load shut out of the
    /// cache: the refill slot (MSHR) is busy with another line.
    DCachePort,
    /// Scheduling unit full with the head block's memory access held by the
    /// restricted load/store ordering policy (an older same-thread
    /// store/sync has not resolved).
    MemOrder,
    /// Scheduling unit full with the head block fully executed but its
    /// stores unable to enter the full store buffer.
    StoreBufFull,
    /// Scheduling unit full with the head block fully executed and the
    /// store buffer free: commit bandwidth itself (one block per cycle) is
    /// the limit.
    SuFull,
    /// The slot carried an instruction later discarded on the wrong path of
    /// a mispredicted branch.
    SquashDiscard,
    /// The slot carried an instruction still in flight when the run ended —
    /// zero on a run that drains, non-zero only on aborted/truncated runs.
    InFlight,
}

impl SlotCause {
    /// Every cause, in display order (committed first, losses after).
    pub const ALL: [SlotCause; 13] = [
        SlotCause::Committed,
        SlotCause::Fragment,
        SlotCause::FetchStarved,
        SlotCause::SyncWait,
        SlotCause::OperandWait,
        SlotCause::FuBusy,
        SlotCause::DCacheMiss,
        SlotCause::DCachePort,
        SlotCause::MemOrder,
        SlotCause::StoreBufFull,
        SlotCause::SuFull,
        SlotCause::SquashDiscard,
        SlotCause::InFlight,
    ];

    /// Number of causes (array-sizing constant).
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index of this cause in [`SlotCause::ALL`].
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short stable name for tables and exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SlotCause::Committed => "committed",
            SlotCause::Fragment => "fragment",
            SlotCause::FetchStarved => "fetch-starved",
            SlotCause::SyncWait => "sync-wait",
            SlotCause::OperandWait => "operand-wait",
            SlotCause::FuBusy => "fu-busy",
            SlotCause::DCacheMiss => "dcache-miss",
            SlotCause::DCachePort => "dcache-port",
            SlotCause::MemOrder => "mem-order",
            SlotCause::StoreBufFull => "storebuf-full",
            SlotCause::SuFull => "su-full",
            SlotCause::SquashDiscard => "squash-discard",
            SlotCause::InFlight => "in-flight",
        }
    }
}

impl std::fmt::Display for SlotCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a load's (or other memory access's) data was sourced at issue.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MemKind {
    /// Not a data-memory access, or the access faulted speculatively.
    #[default]
    None,
    /// Data-cache hit.
    Hit,
    /// Data-cache miss: a refill was started for this access.
    Miss,
    /// Hit on a line already being refilled (no new memory traffic, but
    /// data arrives at refill time).
    PendingHit,
    /// Store-to-load forwarding from a resident or buffered store; the
    /// cache was bypassed entirely.
    Forwarded,
}

impl MemKind {
    /// Short stable name for exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MemKind::None => "-",
            MemKind::Hit => "hit",
            MemKind::Miss => "miss",
            MemKind::PendingHit => "pending-hit",
            MemKind::Forwarded => "forwarded",
        }
    }
}

/// Why an instruction left the scheduling unit through the commit stage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RetireKind {
    /// Architectural commit: register/memory effects landed.
    Arch,
    /// A `WAIT` poll that found its condition unsatisfied: discarded and
    /// refetched (a later poll gets a fresh uid).
    Spin,
    /// The memory fault that aborts the run; no architectural effect.
    Fault,
}

/// One instruction admitted into the scheduling unit, observed at decode.
#[derive(Clone, Copy, Debug)]
pub struct DecodedSlot {
    /// Monotone per-run instruction identity, assigned at decode.
    pub uid: u64,
    /// Owning thread.
    pub tid: usize,
    /// Program counter.
    pub pc: usize,
    /// The predecoded instruction (displays as its disassembly).
    pub insn: DecodedInsn,
    /// Scheduling-unit block id the instruction entered.
    pub block: u64,
    /// Entry index within the block.
    pub entry: usize,
    /// Cycle the instruction's fetch group was fetched.
    pub fetched_at: u64,
}

/// Machine occupancy at the end of one cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Occupancy {
    /// Scheduling-unit entries resident.
    pub su_entries: u32,
    /// Scheduling-unit blocks resident.
    pub su_blocks: u32,
    /// Store-buffer entries occupied.
    pub store_buffer: u32,
    /// Data-cache line refills in flight.
    pub outstanding_misses: u32,
    /// Whether a fetched block is parked at the decoder.
    pub fetch_buffer: bool,
    /// Scheduling-unit entries per thread (indices ≥ thread count are 0).
    pub resident: [u32; MAX_THREADS],
}

/// One pipeline-visible event.
///
/// Borrowed payloads keep the disabled path allocation-free: the simulator
/// builds the event on the stack only when a sink is installed.
#[derive(Debug)]
pub enum TraceEvent<'a> {
    /// An instruction entered the scheduling unit.
    Decoded {
        /// Cycle of the decode.
        cycle: u64,
        /// The admitted instruction.
        slot: &'a DecodedSlot,
    },
    /// `slots` units of this cycle's decode bandwidth were lost to `cause`.
    SlotsLost {
        /// Cycle the loss occurred.
        cycle: u64,
        /// Classified cause.
        cause: SlotCause,
        /// Number of slots lost (1..=block_size).
        slots: u32,
    },
    /// An instruction issued to a functional unit.
    Issued {
        /// Cycle of the issue.
        cycle: u64,
        /// Instruction identity.
        uid: u64,
        /// Functional-unit class it issued to.
        fu: FuClass,
        /// Cycle its result becomes available.
        done_at: u64,
        /// How memory data was sourced, for loads.
        mem: MemKind,
    },
    /// An instruction's result was written back (entry is `Done`).
    Completed {
        /// Cycle of the writeback.
        cycle: u64,
        /// Instruction identity.
        uid: u64,
    },
    /// An instruction left through the commit stage.
    Retired {
        /// Cycle of the commit.
        cycle: u64,
        /// Instruction identity.
        uid: u64,
        /// Architectural, spin, or fault.
        kind: RetireKind,
    },
    /// An instruction was discarded as wrong-path.
    Squashed {
        /// Cycle of the squash.
        cycle: u64,
        /// Instruction identity.
        uid: u64,
    },
    /// End-of-cycle marker with machine occupancy.
    CycleEnd {
        /// The cycle that just finished.
        cycle: u64,
        /// Occupancy snapshot.
        occ: &'a Occupancy,
    },
}

/// Observer of the pipeline event stream.
///
/// Like `CommitSink` in `smt-core`, a sink observes the machine and cannot
/// perturb it; a run with any sink installed is bit-identical to one
/// without (pinned by the cycle-exactness goldens).
pub trait TraceSink {
    /// Called once per event, in pipeline order within each cycle
    /// (commit → writeback → issue → decode, then the cycle-end marker).
    fn event(&mut self, ev: &TraceEvent<'_>);
}

/// A sink that discards everything (for overhead measurement).
#[derive(Default, Clone, Copy, Debug)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn event(&mut self, _ev: &TraceEvent<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_indices_are_dense_and_stable() {
        for (i, c) in SlotCause::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(SlotCause::COUNT, 13);
        assert_eq!(SlotCause::Committed.index(), 0);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = SlotCause::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SlotCause::COUNT);
    }
}
