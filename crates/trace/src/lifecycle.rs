//! Per-instruction lifecycle recording: the full fetch → decode → issue →
//! writeback → commit/squash timeline of every traced instruction.
//!
//! Records are kept in uid order (uids are assigned monotonically at
//! decode), so event handling is a binary search over a deque — no hash
//! map. Two bounding knobs keep memory fixed:
//!
//! * a **cycle window** restricts recording to instructions decoded inside
//!   `[start, end]` (exporting a slice of a long run);
//! * a **capacity ring** keeps only the youngest `cap` records (the
//!   "last-K instructions" view a stuck-machine dump wants).

use std::collections::VecDeque;

use smt_isa::{DecodedInsn, FuClass};

use crate::event::{MemKind, RetireKind, TraceEvent, TraceSink};

/// Sentinel for "this stage never happened (yet)".
pub const NEVER: u64 = u64::MAX;

/// How a recorded instruction ultimately left the machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Fate {
    /// Still resident when recording stopped.
    #[default]
    InFlight,
    /// Architecturally committed.
    Committed,
    /// `WAIT` spin poll, discarded and refetched.
    Spin,
    /// Squashed as wrong-path.
    Squashed,
    /// Faulted at commit, aborting the run.
    Faulted,
}

impl Fate {
    /// Short stable name for dumps and exports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Fate::InFlight => "in-flight",
            Fate::Committed => "committed",
            Fate::Spin => "spin",
            Fate::Squashed => "squashed",
            Fate::Faulted => "faulted",
        }
    }
}

/// One instruction's recorded lifecycle.
#[derive(Clone, Copy, Debug)]
pub struct InsnRecord {
    /// Identity (monotone decode order).
    pub uid: u64,
    /// Owning thread.
    pub tid: usize,
    /// Program counter.
    pub pc: usize,
    /// The predecoded instruction.
    pub insn: DecodedInsn,
    /// Scheduling-unit block id.
    pub block: u64,
    /// Entry index within the block.
    pub entry: usize,
    /// Functional-unit class (set at issue; the predecoded class before).
    pub fu: FuClass,
    /// Cycle the fetch group was fetched.
    pub fetched_at: u64,
    /// Cycle of decode (scheduling-unit entry).
    pub decoded_at: u64,
    /// Cycle of issue ([`NEVER`] if not yet issued).
    pub issued_at: u64,
    /// Cycle the result was written back ([`NEVER`] if pending).
    pub completed_at: u64,
    /// Cycle of retire/squash ([`NEVER`] while resident).
    pub retired_at: u64,
    /// Memory sourcing of a load's data.
    pub mem: MemKind,
    /// Final disposition.
    pub fate: Fate,
}

impl InsnRecord {
    /// One-line human rendering for dumps.
    #[must_use]
    pub fn render(&self) -> String {
        let stage = |c: u64| {
            if c == NEVER {
                "-".to_string()
            } else {
                c.to_string()
            }
        };
        format!(
            "uid {:>6} t{} pc {:>5} [blk {:>4}.{}] F{} D{} I{} W{} R{} {:<9} {} `{}`",
            self.uid,
            self.tid,
            self.pc,
            self.block,
            self.entry,
            stage(self.fetched_at),
            stage(self.decoded_at),
            stage(self.issued_at),
            stage(self.completed_at),
            stage(self.retired_at),
            self.fate.name(),
            self.mem.name(),
            self.insn,
        )
    }
}

/// The recording sink. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct LifecycleRecorder {
    /// Only instructions decoded in `[start, end]` are recorded.
    window: Option<(u64, u64)>,
    /// Keep at most this many records, dropping the oldest.
    cap: usize,
    records: VecDeque<InsnRecord>,
    /// Records evicted by the capacity ring.
    dropped: u64,
    /// Highest cycle seen on any event (closes open stages in exports).
    last_cycle: u64,
}

impl LifecycleRecorder {
    /// Records every instruction, up to `cap` youngest-kept records.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        LifecycleRecorder {
            window: None,
            cap: cap.max(1),
            records: VecDeque::with_capacity(cap.clamp(1, 4096)),
            dropped: 0,
            last_cycle: 0,
        }
    }

    /// Restricts recording to instructions decoded in `[start, end]`
    /// (inclusive).
    #[must_use]
    pub fn with_window(mut self, start: u64, end: u64) -> Self {
        self.window = Some((start, end));
        self
    }

    /// The recorded instructions, oldest first.
    #[must_use]
    pub fn records(&self) -> &VecDeque<InsnRecord> {
        &self.records
    }

    /// Records evicted by the capacity ring.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Highest cycle observed on any event.
    #[must_use]
    pub fn last_cycle(&self) -> u64 {
        self.last_cycle
    }

    fn find_mut(&mut self, uid: u64) -> Option<&mut InsnRecord> {
        // Records are in uid order (monotone decode) — binary search.
        let (front, back) = self.records.as_slices();
        let idx = if front.last().is_some_and(|r| r.uid >= uid) {
            front.binary_search_by_key(&uid, |r| r.uid).ok()
        } else {
            back.binary_search_by_key(&uid, |r| r.uid)
                .ok()
                .map(|i| front.len() + i)
        };
        idx.and_then(|i| self.records.get_mut(i))
    }

    /// Multi-line dump of every record (oldest first), with an eviction
    /// note when the ring overflowed.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(
                out,
                "({} older records dropped by the {}-record ring)",
                self.dropped, self.cap
            );
        }
        for r in &self.records {
            let _ = writeln!(out, "{}", r.render());
        }
        out
    }
}

impl TraceSink for LifecycleRecorder {
    fn event(&mut self, ev: &TraceEvent<'_>) {
        match *ev {
            TraceEvent::Decoded { cycle, slot } => {
                self.last_cycle = self.last_cycle.max(cycle);
                if let Some((start, end)) = self.window {
                    if cycle < start || cycle > end {
                        return;
                    }
                }
                if self.records.len() == self.cap {
                    self.records.pop_front();
                    self.dropped += 1;
                }
                self.records.push_back(InsnRecord {
                    uid: slot.uid,
                    tid: slot.tid,
                    pc: slot.pc,
                    insn: slot.insn,
                    block: slot.block,
                    entry: slot.entry,
                    fu: slot.insn.fu,
                    fetched_at: slot.fetched_at,
                    decoded_at: cycle,
                    issued_at: NEVER,
                    completed_at: NEVER,
                    retired_at: NEVER,
                    mem: MemKind::None,
                    fate: Fate::InFlight,
                });
            }
            TraceEvent::Issued {
                cycle,
                uid,
                fu,
                mem,
                ..
            } => {
                self.last_cycle = self.last_cycle.max(cycle);
                if let Some(r) = self.find_mut(uid) {
                    r.issued_at = cycle;
                    r.fu = fu;
                    r.mem = mem;
                }
            }
            TraceEvent::Completed { cycle, uid } => {
                self.last_cycle = self.last_cycle.max(cycle);
                if let Some(r) = self.find_mut(uid) {
                    r.completed_at = cycle;
                }
            }
            TraceEvent::Retired { cycle, uid, kind } => {
                self.last_cycle = self.last_cycle.max(cycle);
                if let Some(r) = self.find_mut(uid) {
                    r.retired_at = cycle;
                    r.fate = match kind {
                        RetireKind::Arch => Fate::Committed,
                        RetireKind::Spin => Fate::Spin,
                        RetireKind::Fault => Fate::Faulted,
                    };
                }
            }
            TraceEvent::Squashed { cycle, uid } => {
                self.last_cycle = self.last_cycle.max(cycle);
                if let Some(r) = self.find_mut(uid) {
                    r.retired_at = cycle;
                    r.fate = Fate::Squashed;
                }
            }
            TraceEvent::CycleEnd { cycle, .. } => {
                self.last_cycle = self.last_cycle.max(cycle);
            }
            TraceEvent::SlotsLost { cycle, .. } => {
                self.last_cycle = self.last_cycle.max(cycle);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DecodedSlot;
    use smt_isa::Instruction;

    fn decoded(uid: u64, cycle: u64) -> (DecodedSlot, u64) {
        (
            DecodedSlot {
                uid,
                tid: 0,
                pc: uid as usize,
                insn: DecodedInsn::new(Instruction::NOP),
                block: uid / 4,
                entry: (uid % 4) as usize,
                fetched_at: cycle.saturating_sub(1),
            },
            cycle,
        )
    }

    fn feed_decoded(rec: &mut LifecycleRecorder, uid: u64, cycle: u64) {
        let (slot, cycle) = decoded(uid, cycle);
        rec.event(&TraceEvent::Decoded { cycle, slot: &slot });
    }

    #[test]
    fn records_full_lifecycle_in_uid_order() {
        let mut rec = LifecycleRecorder::new(16);
        for uid in 0..4 {
            feed_decoded(&mut rec, uid, 2);
        }
        rec.event(&TraceEvent::Issued {
            cycle: 3,
            uid: 1,
            fu: FuClass::Alu,
            done_at: 4,
            mem: MemKind::None,
        });
        rec.event(&TraceEvent::Completed { cycle: 4, uid: 1 });
        rec.event(&TraceEvent::Retired {
            cycle: 6,
            uid: 1,
            kind: RetireKind::Arch,
        });
        rec.event(&TraceEvent::Squashed { cycle: 6, uid: 3 });

        let r1 = rec.records()[1];
        assert_eq!(
            (r1.decoded_at, r1.issued_at, r1.completed_at, r1.retired_at),
            (2, 3, 4, 6)
        );
        assert_eq!(r1.fate, Fate::Committed);
        assert_eq!(rec.records()[3].fate, Fate::Squashed);
        assert_eq!(rec.records()[0].fate, Fate::InFlight);
        assert_eq!(rec.last_cycle(), 6);
    }

    #[test]
    fn ring_keeps_the_youngest() {
        let mut rec = LifecycleRecorder::new(2);
        for uid in 0..5 {
            feed_decoded(&mut rec, uid, uid);
        }
        assert_eq!(rec.records().len(), 2);
        assert_eq!(rec.dropped(), 3);
        assert_eq!(rec.records()[0].uid, 3);
        assert_eq!(rec.records()[1].uid, 4);
        // Events for evicted uids are ignored without panicking.
        rec.event(&TraceEvent::Completed { cycle: 9, uid: 0 });
        assert_eq!(rec.records()[0].completed_at, NEVER);
    }

    #[test]
    fn window_filters_by_decode_cycle() {
        let mut rec = LifecycleRecorder::new(16).with_window(10, 20);
        feed_decoded(&mut rec, 0, 5);
        feed_decoded(&mut rec, 1, 10);
        feed_decoded(&mut rec, 2, 20);
        feed_decoded(&mut rec, 3, 21);
        let uids: Vec<u64> = rec.records().iter().map(|r| r.uid).collect();
        assert_eq!(uids, vec![1, 2]);
        // Later events for out-of-window uids are ignored.
        rec.event(&TraceEvent::Retired {
            cycle: 22,
            uid: 0,
            kind: RetireKind::Arch,
        });
        assert_eq!(rec.records()[0].fate, Fate::InFlight);
    }

    #[test]
    fn render_marks_missing_stages() {
        let mut rec = LifecycleRecorder::new(4);
        feed_decoded(&mut rec, 0, 1);
        let text = rec.render();
        assert!(text.contains("in-flight"));
        assert!(
            text.contains("I- W- R-"),
            "unreached stages render as dashes: {text}"
        );
    }
}
