//! Fixed-size histograms for occupancy telemetry.
//!
//! No external dependencies (the repo builds with no registry access): a
//! histogram is a preallocated bucket-per-value vector with the last bucket
//! absorbing everything at or above its value, so per-cycle recording is a
//! single bounds-free increment.

/// A histogram over `0..=max` with values above `max` clamped into the last
/// bucket.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    /// Sum of recorded values (unclamped), for the exact mean.
    sum: u128,
    samples: u64,
}

impl Histogram {
    /// A histogram with buckets for every value in `0..=max`.
    #[must_use]
    pub fn new(max: u32) -> Self {
        Histogram {
            counts: vec![0; max as usize + 1],
            sum: 0,
            samples: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u32) {
        let i = (value as usize).min(self.counts.len() - 1);
        self.counts[i] += 1;
        self.sum += u128::from(value);
        self.samples += 1;
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Exact mean of the recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Count in the bucket for `value` (clamped like [`record`]).
    ///
    /// [`record`]: Self::record
    #[must_use]
    pub fn count_at(&self, value: u32) -> u64 {
        self.counts[(value as usize).min(self.counts.len() - 1)]
    }

    /// Fraction of samples at or above `value` (0 when empty).
    #[must_use]
    pub fn frac_at_or_above(&self, value: u32) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        let i = (value as usize).min(self.counts.len() - 1);
        let above: u64 = self.counts[i..].iter().sum();
        above as f64 / self.samples as f64
    }

    /// The bucket counts, index = value (last bucket clamps).
    #[must_use]
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// Smallest value whose cumulative share reaches `q` (0 < q ≤ 1); the
    /// last bucket when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u32 {
        if self.samples == 0 {
            return (self.counts.len() - 1) as u32;
        }
        let target = (q * self.samples as f64).ceil() as u64;
        let mut acc = 0;
        for (v, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return v as u32;
            }
        }
        (self.counts.len() - 1) as u32
    }

    /// Compact single-line rendering: `mean=… p50=… max-bucket=…`.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "mean={:.2} p50={} p95={} samples={}",
            self.mean(),
            self.quantile(0.5),
            self.quantile(0.95),
            self.samples
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_means() {
        let mut h = Histogram::new(4);
        for v in [0, 1, 2, 3, 4] {
            h.record(v);
        }
        assert_eq!(h.samples(), 5);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert_eq!(h.count_at(3), 1);
    }

    #[test]
    fn clamps_above_max_but_keeps_exact_mean() {
        let mut h = Histogram::new(2);
        h.record(100);
        h.record(0);
        assert_eq!(h.count_at(2), 1, "overflow lands in the last bucket");
        assert!((h.mean() - 50.0).abs() < 1e-12, "mean stays unclamped");
    }

    #[test]
    fn quantiles_and_tail_fractions() {
        let mut h = Histogram::new(10);
        for _ in 0..9 {
            h.record(1);
        }
        h.record(10);
        assert_eq!(h.quantile(0.5), 1);
        assert_eq!(h.quantile(1.0), 10);
        assert!((h.frac_at_or_above(10) - 0.1).abs() < 1e-12);
        assert!((h.frac_at_or_above(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = Histogram::new(8);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.frac_at_or_above(3), 0.0);
        assert_eq!(h.quantile(0.5), 8);
    }
}
