//! Occupancy telemetry: per-cycle structure fill levels folded into
//! fixed-size histograms, with an optional bounded raw series for counter
//! exports.

use smt_isa::MAX_THREADS;

use crate::event::{Occupancy, TraceEvent, TraceSink};
use crate::hist::Histogram;

/// Histograms of per-cycle machine occupancy.
///
/// Bucket ranges come from the machine's configured capacities, so the top
/// bucket is "structure full" and [`Histogram::frac_at_or_above`] on it is
/// the full-fraction directly.
#[derive(Clone, Debug)]
pub struct OccupancyStats {
    /// Scheduling-unit entries (0..=su_depth).
    pub su_entries: Histogram,
    /// Scheduling-unit blocks (0..=su_blocks).
    pub su_blocks: Histogram,
    /// Store-buffer entries (0..=capacity).
    pub store_buffer: Histogram,
    /// In-flight cache refills (0..=mshrs).
    pub outstanding_misses: Histogram,
    /// Per-thread resident instructions (0..=su_depth each).
    pub resident: Vec<Histogram>,
    /// Raw `(cycle, occupancy)` series, kept only while under the sample
    /// cap. Empty unless enabled via [`with_series`](Self::with_series).
    series: Vec<(u64, Occupancy)>,
    series_cap: usize,
    /// Most recent snapshot (a stuck-machine dump wants "now", not a
    /// distribution).
    last: Option<(u64, Occupancy)>,
}

impl OccupancyStats {
    /// Telemetry for a machine with the given structure capacities.
    #[must_use]
    pub fn new(
        su_depth: u32,
        su_blocks: u32,
        store_buffer: u32,
        mshrs: u32,
        threads: usize,
    ) -> Self {
        OccupancyStats {
            su_entries: Histogram::new(su_depth),
            su_blocks: Histogram::new(su_blocks),
            store_buffer: Histogram::new(store_buffer),
            outstanding_misses: Histogram::new(mshrs),
            resident: (0..threads.min(MAX_THREADS))
                .map(|_| Histogram::new(su_depth))
                .collect(),
            series: Vec::new(),
            series_cap: 0,
            last: None,
        }
    }

    /// Also keep the raw per-cycle series, up to `cap` samples (first-come;
    /// combine with a windowed run for a specific slice).
    #[must_use]
    pub fn with_series(mut self, cap: usize) -> Self {
        self.series_cap = cap;
        self.series.reserve(cap.min(1 << 16));
        self
    }

    /// The raw series, if enabled: `(cycle, occupancy)` in cycle order.
    #[must_use]
    pub fn series(&self) -> &[(u64, Occupancy)] {
        &self.series
    }

    /// The most recent snapshot observed.
    #[must_use]
    pub fn last(&self) -> Option<(u64, Occupancy)> {
        self.last
    }

    /// Multi-line summary of every histogram.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "SU entries:     {}", self.su_entries.summary());
        let _ = writeln!(out, "SU blocks:      {}", self.su_blocks.summary());
        let _ = writeln!(out, "store buffer:   {}", self.store_buffer.summary());
        let _ = writeln!(out, "misses inflight:{}", self.outstanding_misses.summary());
        for (tid, h) in self.resident.iter().enumerate() {
            let _ = writeln!(out, "thread {tid} resident: {}", h.summary());
        }
        if let Some((cycle, occ)) = self.last {
            let _ = writeln!(
                out,
                "last cycle {cycle}: su={}/{} blocks, sb={}, misses={}, fetch_buffer={}",
                occ.su_entries,
                occ.su_blocks,
                occ.store_buffer,
                occ.outstanding_misses,
                occ.fetch_buffer
            );
        }
        out
    }
}

impl TraceSink for OccupancyStats {
    fn event(&mut self, ev: &TraceEvent<'_>) {
        if let TraceEvent::CycleEnd { cycle, occ } = *ev {
            self.su_entries.record(occ.su_entries);
            self.su_blocks.record(occ.su_blocks);
            self.store_buffer.record(occ.store_buffer);
            self.outstanding_misses.record(occ.outstanding_misses);
            for (tid, h) in self.resident.iter_mut().enumerate() {
                h.record(occ.resident[tid]);
            }
            if self.series.len() < self.series_cap {
                self.series.push((cycle, *occ));
            }
            self.last = Some((cycle, *occ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occ(su: u32, sb: u32) -> Occupancy {
        let mut resident = [0u32; MAX_THREADS];
        resident[0] = su;
        Occupancy {
            su_entries: su,
            su_blocks: su.div_ceil(4),
            store_buffer: sb,
            outstanding_misses: 0,
            fetch_buffer: false,
            resident,
        }
    }

    #[test]
    fn cycle_end_feeds_every_histogram() {
        let mut s = OccupancyStats::new(32, 8, 8, 1, 2);
        for cycle in 0..10 {
            let o = occ(16, 4);
            s.event(&TraceEvent::CycleEnd { cycle, occ: &o });
        }
        assert_eq!(s.su_entries.samples(), 10);
        assert!((s.su_entries.mean() - 16.0).abs() < 1e-12);
        assert!((s.store_buffer.mean() - 4.0).abs() < 1e-12);
        assert_eq!(s.resident.len(), 2);
        assert!((s.resident[0].mean() - 16.0).abs() < 1e-12);
        assert_eq!(s.resident[1].mean(), 0.0);
        assert_eq!(s.last().unwrap().0, 9);
    }

    #[test]
    fn series_is_bounded() {
        let mut s = OccupancyStats::new(32, 8, 8, 1, 1).with_series(3);
        for cycle in 0..10 {
            let o = occ(1, 0);
            s.event(&TraceEvent::CycleEnd { cycle, occ: &o });
        }
        assert_eq!(s.series().len(), 3);
        assert_eq!(s.series()[2].0, 2);
        assert_eq!(s.last().unwrap().0, 9, "last keeps tracking past the cap");
    }

    #[test]
    fn render_mentions_every_structure() {
        let mut s = OccupancyStats::new(32, 8, 8, 1, 1);
        let o = occ(8, 2);
        s.event(&TraceEvent::CycleEnd { cycle: 5, occ: &o });
        let text = s.render();
        for needle in ["SU entries", "store buffer", "last cycle 5"] {
            assert!(text.contains(needle), "missing {needle}: {text}");
        }
    }
}
