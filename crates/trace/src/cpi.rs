//! The CPI-stack accountant: attributes every slot of frontend/commit
//! bandwidth — `block_size × fetch_threads` slots per cycle — to one leaf
//! cause.
//!
//! The invariant, enforced by tests across every workload × policy ×
//! thread-count point: after [`CpiStack::finish`], the per-cause slot
//! counts sum to exactly `width × cycles`. It holds by construction
//! (see [`crate::event`]): the decoder disposes of exactly `width`
//! slots per cycle, either as admitted instructions (whose final
//! classification is deferred to their retire/squash event) or as
//! immediately classified losses, so the accountant is pure counting — no
//! per-instruction state, no event correlation.

use crate::event::{RetireKind, SlotCause, TraceEvent, TraceSink};

/// The finished attribution of one run's slot bandwidth.
#[derive(Clone, Debug)]
pub struct CpiBreakdown {
    /// Slots per cycle (the machine's `block_size × fetch_threads`).
    pub width: u32,
    /// Cycles accounted.
    pub cycles: u64,
    /// Instructions architecturally committed (slot count of
    /// [`SlotCause::Committed`]).
    pub committed: u64,
    /// Slots per cause, indexed by [`SlotCause::index`].
    pub slots: [u64; SlotCause::COUNT],
}

impl CpiBreakdown {
    /// Slots attributed to `cause`.
    #[must_use]
    pub fn slot_count(&self, cause: SlotCause) -> u64 {
        self.slots[cause.index()]
    }

    /// Sum over every cause — must equal `width × cycles`.
    #[must_use]
    pub fn total_slots(&self) -> u64 {
        self.slots.iter().sum()
    }

    /// Share of the machine's slot bandwidth attributed to `cause`, in
    /// percent (0 when no cycles ran).
    #[must_use]
    pub fn share_pct(&self, cause: SlotCause) -> f64 {
        let total = u64::from(self.width) * self.cycles;
        if total == 0 {
            0.0
        } else {
            100.0 * self.slot_count(cause) as f64 / total as f64
        }
    }

    /// Cycles per committed instruction implied by the stack (`f64::NAN`
    /// when nothing committed).
    #[must_use]
    pub fn cpi(&self) -> f64 {
        self.cycles as f64 / self.committed as f64
    }

    /// Cause contribution to CPI: `share × width × cycles / committed` —
    /// the per-cause stack summand, so the per-cause values sum to
    /// `width × cpi`.
    #[must_use]
    pub fn cpi_component(&self, cause: SlotCause) -> f64 {
        self.slot_count(cause) as f64 / self.committed as f64
    }

    /// Multi-line text table of the stack, causes in declaration order,
    /// zero rows skipped.
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "CPI stack: {} cycles x {} slots = {} ({} committed, CPI {:.3})",
            self.cycles,
            self.width,
            self.total_slots(),
            self.committed,
            self.cpi()
        );
        for &cause in &SlotCause::ALL {
            let n = self.slot_count(cause);
            if n == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<14} {:>12} slots  {:>6.2} %",
                cause.name(),
                n,
                self.share_pct(cause)
            );
        }
        out
    }
}

/// The accumulating sink. Install on a run, then call
/// [`finish`](CpiStack::finish) to classify any still-in-flight slots and
/// read the [`CpiBreakdown`].
#[derive(Clone, Debug)]
pub struct CpiStack {
    width: u32,
    cycles: u64,
    slots: [u64; SlotCause::COUNT],
    /// Instructions admitted but not yet retired/squashed. Zero after a
    /// run that drains.
    pending: u64,
}

impl CpiStack {
    /// An accountant for a machine disposing `width` slots per cycle
    /// (`SimConfig::trace_shape().width`, i.e. `block_size × fetch_threads`).
    #[must_use]
    pub fn new(width: u32) -> Self {
        CpiStack {
            width,
            cycles: 0,
            slots: [0; SlotCause::COUNT],
            pending: 0,
        }
    }

    fn add(&mut self, cause: SlotCause, n: u64) {
        self.slots[cause.index()] += n;
    }

    /// Buckets any still-pending instructions as [`SlotCause::InFlight`]
    /// (only an aborted or truncated run has any) and returns the
    /// breakdown.
    #[must_use]
    pub fn finish(mut self) -> CpiBreakdown {
        let leftover = self.pending;
        self.add(SlotCause::InFlight, leftover);
        self.pending = 0;
        CpiBreakdown {
            width: self.width,
            cycles: self.cycles,
            committed: self.slots[SlotCause::Committed.index()],
            slots: self.slots,
        }
    }
}

impl TraceSink for CpiStack {
    fn event(&mut self, ev: &TraceEvent<'_>) {
        match *ev {
            TraceEvent::Decoded { .. } => self.pending += 1,
            TraceEvent::SlotsLost { cause, slots, .. } => self.add(cause, u64::from(slots)),
            TraceEvent::Retired { kind, .. } => {
                self.pending -= 1;
                let cause = match kind {
                    RetireKind::Arch => SlotCause::Committed,
                    RetireKind::Spin => SlotCause::SyncWait,
                    RetireKind::Fault => SlotCause::InFlight,
                };
                self.add(cause, 1);
            }
            TraceEvent::Squashed { .. } => {
                self.pending -= 1;
                self.add(SlotCause::SquashDiscard, 1);
            }
            TraceEvent::CycleEnd { .. } => self.cycles += 1,
            TraceEvent::Issued { .. } | TraceEvent::Completed { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DecodedSlot, Occupancy};
    use smt_isa::{DecodedInsn, Instruction};

    fn slot(uid: u64) -> DecodedSlot {
        DecodedSlot {
            uid,
            tid: 0,
            pc: 0,
            insn: DecodedInsn::new(Instruction::NOP),
            block: 0,
            entry: 0,
            fetched_at: 0,
        }
    }

    #[test]
    fn accounts_a_hand_driven_cycle_exactly() {
        let mut c = CpiStack::new(4);
        let occ = Occupancy::default();
        // Cycle 0: 2 decoded + 2 fragment slots.
        c.event(&TraceEvent::Decoded {
            cycle: 0,
            slot: &slot(0),
        });
        c.event(&TraceEvent::Decoded {
            cycle: 0,
            slot: &slot(1),
        });
        c.event(&TraceEvent::SlotsLost {
            cycle: 0,
            cause: SlotCause::Fragment,
            slots: 2,
        });
        c.event(&TraceEvent::CycleEnd {
            cycle: 0,
            occ: &occ,
        });
        // Cycle 1: frontend starved; uid 0 commits, uid 1 squashes.
        c.event(&TraceEvent::Retired {
            cycle: 1,
            uid: 0,
            kind: RetireKind::Arch,
        });
        c.event(&TraceEvent::Squashed { cycle: 1, uid: 1 });
        c.event(&TraceEvent::SlotsLost {
            cycle: 1,
            cause: SlotCause::FetchStarved,
            slots: 4,
        });
        c.event(&TraceEvent::CycleEnd {
            cycle: 1,
            occ: &occ,
        });

        let b = c.finish();
        assert_eq!(b.cycles, 2);
        assert_eq!(b.total_slots(), 8, "sum equals width x cycles");
        assert_eq!(b.slot_count(SlotCause::Committed), 1);
        assert_eq!(b.slot_count(SlotCause::SquashDiscard), 1);
        assert_eq!(b.slot_count(SlotCause::Fragment), 2);
        assert_eq!(b.slot_count(SlotCause::FetchStarved), 4);
        assert_eq!(b.slot_count(SlotCause::InFlight), 0);
        assert_eq!(b.committed, 1);
    }

    #[test]
    fn spin_retire_counts_as_sync_wait() {
        let mut c = CpiStack::new(4);
        c.event(&TraceEvent::Decoded {
            cycle: 0,
            slot: &slot(7),
        });
        c.event(&TraceEvent::Retired {
            cycle: 3,
            uid: 7,
            kind: RetireKind::Spin,
        });
        let b = c.finish();
        assert_eq!(b.slot_count(SlotCause::SyncWait), 1);
        assert_eq!(b.committed, 0);
    }

    #[test]
    fn unresolved_instructions_land_in_flight() {
        let mut c = CpiStack::new(4);
        c.event(&TraceEvent::Decoded {
            cycle: 0,
            slot: &slot(0),
        });
        c.event(&TraceEvent::Decoded {
            cycle: 0,
            slot: &slot(1),
        });
        let b = c.finish();
        assert_eq!(b.slot_count(SlotCause::InFlight), 2);
    }

    #[test]
    fn render_lists_only_nonzero_causes() {
        let mut c = CpiStack::new(4);
        c.event(&TraceEvent::SlotsLost {
            cycle: 0,
            cause: SlotCause::FuBusy,
            slots: 4,
        });
        c.event(&TraceEvent::CycleEnd {
            cycle: 0,
            occ: &Occupancy::default(),
        });
        let text = c.finish().render();
        assert!(text.contains("fu-busy"));
        assert!(!text.contains("dcache-miss"));
    }
}
