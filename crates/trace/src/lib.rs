//! # smt-trace — zero-cost pipeline observability
//!
//! Instrumentation layer for the SMT superscalar simulator: per-instruction
//! lifecycle tracing, CPI-stack stall attribution, and per-cycle occupancy
//! telemetry. The simulator emits [`TraceEvent`]s into any [`TraceSink`];
//! when no sink is installed the event path compiles away entirely, so the
//! cycle-exact golden traces and the simulator's throughput are untouched.
//!
//! ## Module map
//!
//! | module | contents |
//! |--------|----------|
//! | [`event`] | [`TraceEvent`], [`TraceSink`], the [`SlotCause`] leaf taxonomy |
//! | [`lifecycle`] | [`LifecycleRecorder`] — bounded ring of per-instruction [`InsnRecord`]s |
//! | [`cpi`] | [`CpiStack`] accountant → [`CpiBreakdown`] (components sum to `width × cycles` exactly) |
//! | [`occupancy`] | [`OccupancyStats`] — structure-fill histograms + bounded raw series |
//! | [`hist`] | [`Histogram`] — fixed-size bounded histogram with mean/quantiles |
//! | [`tracer`] | [`Tracer`] — all three instruments behind one fan-out sink |
//! | [`export`] | Konata pipeline-viewer text and Chrome `trace_event` JSON |
//!
//! ## Slot accounting contract
//!
//! Every cycle the decode stage disposes of exactly `width` slots: each is
//! either a [`TraceEvent::Decoded`] instruction (whose slot's fate resolves
//! later, at retire or squash) or part of a [`TraceEvent::SlotsLost`] with a
//! leaf [`SlotCause`]. The [`CpiStack`] therefore balances by construction —
//! `Σ slots == width × cycles` — and a unit test plus an integration matrix
//! over every workload × policy × thread count enforce it.
//!
//! Like the rest of the workspace this crate has **zero external
//! dependencies**: the exporters hand-roll their tiny JSON/text emitters.

pub mod cpi;
pub mod event;
pub mod export;
pub mod hist;
pub mod lifecycle;
pub mod occupancy;
pub mod tracer;

pub use cpi::{CpiBreakdown, CpiStack};
pub use event::{
    DecodedSlot, MemKind, NullSink, Occupancy, RetireKind, SlotCause, TraceEvent, TraceSink,
};
pub use hist::Histogram;
pub use lifecycle::{Fate, InsnRecord, LifecycleRecorder, NEVER};
pub use occupancy::OccupancyStats;
pub use tracer::{MachineShape, Tracer};
