//! Chrome `trace_event` JSON export (loadable in `chrome://tracing` and
//! Perfetto's legacy-JSON importer).
//!
//! Every recorded instruction becomes four complete (`"ph":"X"`) duration
//! events — one per pipeline stage — grouped with `pid` = thread id so the
//! viewer shows one track per hardware thread, and `tid` = scheduling-unit
//! entry lane so concurrent instructions stack instead of overlapping.
//! Timestamps are simulation cycles (the viewer's "µs" unit reads as
//! cycles). An occupancy series adds `"ph":"C"` counter tracks.

use crate::event::Occupancy;
use crate::export::escape_json_into;
use crate::lifecycle::{InsnRecord, LifecycleRecorder, NEVER};

/// Placement of one complete (`"ph":"X"`) event on the viewer's timeline.
struct Span {
    ts: u64,
    dur: u64,
    pid: usize,
    tid: u64,
}

fn push_complete(out: &mut String, name: &str, cat: &str, span: &Span, args: &[(&str, String)]) {
    out.push_str("{\"name\":\"");
    escape_json_into(out, name);
    out.push_str("\",\"cat\":\"");
    escape_json_into(out, cat);
    let Span { ts, dur, pid, tid } = span;
    out.push_str(&format!(
        "\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\"pid\":{pid},\"tid\":{tid},\"args\":{{"
    ));
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json_into(out, k);
        out.push_str("\":\"");
        escape_json_into(out, v);
        out.push('"');
    }
    out.push_str("}},\n");
}

fn stage_spans(r: &InsnRecord, end_cycle: u64) -> [(&'static str, u64, u64); 4] {
    // Close an open stage at the last observed cycle; collapse unreached
    // stages to zero length at their predecessor's end.
    let cut = |c: u64, fallback: u64| if c == NEVER { fallback } else { c };
    let d = r.decoded_at;
    let i = cut(r.issued_at, end_cycle.max(d));
    let w = cut(r.completed_at, end_cycle.max(i));
    let rt = cut(r.retired_at, end_cycle.max(w));
    [
        ("F", r.fetched_at, d),
        ("D", d, i.min(rt)),
        ("X", i.min(rt), w.min(rt)),
        ("C", w.min(rt), rt),
    ]
}

/// Renders the recorded lifecycle (and optional occupancy series) as one
/// Chrome `trace_event` JSON object.
#[must_use]
pub fn export(rec: &LifecycleRecorder, series: &[(u64, Occupancy)]) -> String {
    let end_cycle = rec.last_cycle();
    let mut out = String::from("{\"traceEvents\":[\n");
    for r in rec.records() {
        let label = format!("{}: {}", r.pc, r.insn);
        let args = [
            ("uid", r.uid.to_string()),
            ("pc", r.pc.to_string()),
            ("fu", r.fu.to_string()),
            ("fate", r.fate.name().to_string()),
            ("mem", r.mem.name().to_string()),
        ];
        let lane = r.block % 64 * 8 + r.entry as u64;
        for (stage, start, end) in stage_spans(r, end_cycle) {
            if end <= start {
                continue; // unreached or zero-length stage
            }
            let name = format!("{stage} {label}");
            let span = Span {
                ts: start,
                dur: end - start,
                pid: r.tid,
                tid: lane,
            };
            push_complete(&mut out, &name, stage, &span, &args);
        }
    }
    for &(cycle, occ) in series {
        for (name, v) in [
            ("su_entries", u64::from(occ.su_entries)),
            ("store_buffer", u64::from(occ.store_buffer)),
            ("outstanding_misses", u64::from(occ.outstanding_misses)),
        ] {
            out.push_str(&format!(
                "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{cycle},\"pid\":0,\
                 \"args\":{{\"value\":{v}}}}},\n"
            ));
        }
    }
    // Metadata event (also absorbs the trailing comma legally — Chrome's
    // parser accepts trailing commas, but Perfetto's does not).
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\
         \"args\":{\"name\":\"occupancy\"}}\n",
    );
    out.push_str("],\"displayTimeUnit\":\"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DecodedSlot, MemKind, RetireKind, TraceEvent, TraceSink};
    use smt_isa::{DecodedInsn, FuClass, Instruction};

    fn full_record() -> LifecycleRecorder {
        let mut rec = LifecycleRecorder::new(8);
        let slot = DecodedSlot {
            uid: 5,
            tid: 1,
            pc: 42,
            insn: DecodedInsn::new(Instruction::NOP),
            block: 3,
            entry: 2,
            fetched_at: 10,
        };
        rec.event(&TraceEvent::Decoded {
            cycle: 11,
            slot: &slot,
        });
        rec.event(&TraceEvent::Issued {
            cycle: 13,
            uid: 5,
            fu: FuClass::Alu,
            done_at: 14,
            mem: MemKind::None,
        });
        rec.event(&TraceEvent::Completed { cycle: 14, uid: 5 });
        rec.event(&TraceEvent::Retired {
            cycle: 16,
            uid: 5,
            kind: RetireKind::Arch,
        });
        rec
    }

    fn braces_balance(s: &str) -> bool {
        let mut depth = 0i64;
        let mut in_str = false;
        let mut esc = false;
        for c in s.chars() {
            if esc {
                esc = false;
                continue;
            }
            match c {
                '\\' if in_str => esc = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            if depth < 0 {
                return false;
            }
        }
        depth == 0 && !in_str
    }

    #[test]
    fn emits_four_stage_events_with_balanced_json() {
        let json = export(&full_record(), &[]);
        assert!(braces_balance(&json), "JSON structure balances: {json}");
        for stage in [
            "\"cat\":\"F\"",
            "\"cat\":\"D\"",
            "\"cat\":\"X\"",
            "\"cat\":\"C\"",
        ] {
            assert!(json.contains(stage), "missing {stage}");
        }
        assert!(json.contains("\"pid\":1"), "pid is the thread id");
        assert!(json.contains("\"uid\":\"5\""));
        assert!(json.starts_with("{\"traceEvents\":["));
    }

    #[test]
    fn counter_events_carry_the_series() {
        let mut resident = [0u32; smt_isa::MAX_THREADS];
        resident[0] = 7;
        let occ = Occupancy {
            su_entries: 7,
            su_blocks: 2,
            store_buffer: 3,
            outstanding_misses: 1,
            fetch_buffer: true,
            resident,
        };
        let json = export(&full_record(), &[(12, occ)]);
        assert!(braces_balance(&json));
        assert!(json.contains("\"name\":\"su_entries\",\"ph\":\"C\",\"ts\":12"));
        assert!(json.contains("\"value\":3"));
    }

    #[test]
    fn in_flight_record_still_exports_cleanly() {
        let mut rec = LifecycleRecorder::new(8);
        let slot = DecodedSlot {
            uid: 0,
            tid: 0,
            pc: 0,
            insn: DecodedInsn::new(Instruction::NOP),
            block: 0,
            entry: 0,
            fetched_at: 0,
        };
        rec.event(&TraceEvent::Decoded {
            cycle: 1,
            slot: &slot,
        });
        let json = export(&rec, &[]);
        assert!(braces_balance(&json));
        assert!(json.contains("\"fate\":\"in-flight\""));
    }
}
