//! Konata pipeline-viewer export.
//!
//! Emits the `Kanata 0004` text format understood by the Konata viewer
//! (<https://github.com/shioyadan/Konata>): one `I`/`L` declaration per
//! instruction, `S`/`E` stage transitions, `C` cycle advances, and an `R`
//! retirement line. Stages used:
//!
//! | stage | span |
//! |-------|------|
//! | `F`   | fetch → decode |
//! | `D`   | decode → issue (scheduling-unit wait) |
//! | `X`   | issue → writeback (execute) |
//! | `C`   | writeback → retire (commit wait) |
//!
//! Instructions still in flight when recording stopped have their open
//! stage closed at the last observed cycle and no `R` line.

use std::collections::BTreeMap;

use crate::lifecycle::{Fate, InsnRecord, LifecycleRecorder, NEVER};

/// Renders the recorded lifecycle as a Konata file.
#[must_use]
pub fn export(rec: &LifecycleRecorder) -> String {
    let records: Vec<&InsnRecord> = rec.records().iter().collect();
    let mut by_cycle: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut push = |cycle: u64, line: String| by_cycle.entry(cycle).or_default().push(line);
    let end_cycle = rec.last_cycle();

    for (id, r) in records.iter().enumerate() {
        push(r.fetched_at, format!("I\t{id}\t{}\t{}", r.uid, r.tid));
        push(r.fetched_at, format!("L\t{id}\t0\t{}: {}", r.pc, r.insn));
        push(r.fetched_at, format!("S\t{id}\t0\tF"));
        push(r.decoded_at, format!("E\t{id}\t0\tF"));
        push(r.decoded_at, format!("S\t{id}\t0\tD"));
        // The stage open when the instruction leaves (or recording ends).
        let mut open = "D";
        if r.issued_at != NEVER {
            push(r.issued_at, format!("E\t{id}\t0\tD"));
            push(r.issued_at, format!("S\t{id}\t0\tX"));
            open = "X";
        }
        if r.completed_at != NEVER {
            push(r.completed_at, format!("E\t{id}\t0\tX"));
            push(r.completed_at, format!("S\t{id}\t0\tC"));
            open = "C";
        }
        let (leave, flush) = match r.fate {
            Fate::Committed => (r.retired_at, 0),
            Fate::Spin | Fate::Squashed | Fate::Faulted => (r.retired_at, 1),
            Fate::InFlight => (end_cycle, -1),
        };
        push(leave, format!("E\t{id}\t0\t{open}"));
        if flush >= 0 {
            push(leave, format!("R\t{id}\t{}\t{flush}", r.uid));
        }
    }

    let mut out = String::from("Kanata\t0004\n");
    let Some((&first, _)) = by_cycle.iter().next() else {
        return out;
    };
    out.push_str(&format!("C=\t{first}\n"));
    let mut at = first;
    for (&cycle, lines) in &by_cycle {
        if cycle > at {
            out.push_str(&format!("C\t{}\n", cycle - at));
            at = cycle;
        }
        for line in lines {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DecodedSlot, MemKind, RetireKind, TraceEvent, TraceSink};
    use smt_isa::{DecodedInsn, FuClass, Instruction};

    fn recorder_with_two_insns() -> LifecycleRecorder {
        let mut rec = LifecycleRecorder::new(16);
        for uid in 0..2u64 {
            let slot = DecodedSlot {
                uid,
                tid: uid as usize,
                pc: 10 + uid as usize,
                insn: DecodedInsn::new(Instruction::NOP),
                block: 0,
                entry: uid as usize,
                fetched_at: 1,
            };
            rec.event(&TraceEvent::Decoded {
                cycle: 2,
                slot: &slot,
            });
        }
        rec.event(&TraceEvent::Issued {
            cycle: 3,
            uid: 0,
            fu: FuClass::Alu,
            done_at: 4,
            mem: MemKind::None,
        });
        rec.event(&TraceEvent::Completed { cycle: 4, uid: 0 });
        rec.event(&TraceEvent::Retired {
            cycle: 6,
            uid: 0,
            kind: RetireKind::Arch,
        });
        rec.event(&TraceEvent::Squashed { cycle: 5, uid: 1 });
        rec
    }

    #[test]
    fn header_and_cycle_lines_are_well_formed() {
        let text = export(&recorder_with_two_insns());
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("Kanata\t0004"));
        assert_eq!(lines.next(), Some("C=\t1"));
        // Cycle advances are positive deltas.
        for l in text.lines().filter(|l| l.starts_with("C\t")) {
            let delta: u64 = l[2..].parse().expect("numeric delta");
            assert!(delta > 0);
        }
    }

    #[test]
    fn stages_balance_and_retires_match_fates() {
        let text = export(&recorder_with_two_insns());
        for id in 0..2 {
            let starts = text
                .lines()
                .filter(|l| l.starts_with(&format!("S\t{id}\t")))
                .count();
            let ends = text
                .lines()
                .filter(|l| l.starts_with(&format!("E\t{id}\t")))
                .count();
            assert_eq!(starts, ends, "insn {id}: every S has a matching E");
        }
        assert!(text.contains("R\t0\t0\t0"), "committed insn retires clean");
        assert!(text.contains("R\t1\t1\t1"), "squashed insn is flushed");
    }

    #[test]
    fn in_flight_instructions_get_no_retire_line() {
        let mut rec = LifecycleRecorder::new(4);
        let slot = DecodedSlot {
            uid: 0,
            tid: 0,
            pc: 0,
            insn: DecodedInsn::new(Instruction::NOP),
            block: 0,
            entry: 0,
            fetched_at: 0,
        };
        rec.event(&TraceEvent::Decoded {
            cycle: 1,
            slot: &slot,
        });
        let text = export(&rec);
        assert!(!text.lines().any(|l| l.starts_with("R\t")));
        // Stage is still balanced (closed at the last cycle).
        let starts = text.lines().filter(|l| l.starts_with("S\t0\t")).count();
        let ends = text.lines().filter(|l| l.starts_with("E\t0\t")).count();
        assert_eq!(starts, ends);
    }

    #[test]
    fn empty_recorder_exports_just_the_header() {
        let rec = LifecycleRecorder::new(4);
        assert_eq!(export(&rec), "Kanata\t0004\n");
    }
}
