//! [`Tracer`]: the everything bundle — lifecycle + CPI stack + occupancy
//! in one sink, for the `trace`/`debug_stuck`/`fuzz` binaries that want
//! the whole picture from a single run.

use crate::cpi::{CpiBreakdown, CpiStack};
use crate::event::{TraceEvent, TraceSink};
use crate::lifecycle::LifecycleRecorder;
use crate::occupancy::OccupancyStats;

/// Structure capacities the telemetry histograms are sized from (mirrors
/// the simulator configuration; `smt-trace` cannot depend on `smt-core`'s
/// `SimConfig` without a cycle, so callers copy the fields over).
#[derive(Clone, Copy, Debug)]
pub struct MachineShape {
    /// Decode/fetch width — slots per cycle (`block_size × fetch_threads`).
    pub width: u32,
    /// Scheduling-unit depth in entries.
    pub su_depth: u32,
    /// Scheduling-unit depth in blocks.
    pub su_blocks: u32,
    /// Store-buffer capacity.
    pub store_buffer: u32,
    /// Cache refill slots (MSHRs).
    pub mshrs: u32,
    /// Resident threads.
    pub threads: usize,
}

/// One sink fanning out to all three instruments.
#[derive(Clone, Debug)]
pub struct Tracer {
    /// Per-instruction lifecycle records.
    pub lifecycle: LifecycleRecorder,
    /// Slot-bandwidth attribution.
    pub cpi: CpiStack,
    /// Per-cycle structure occupancy.
    pub occupancy: OccupancyStats,
}

impl Tracer {
    /// A tracer sized for the machine, keeping at most `cap` lifecycle
    /// records (the youngest win).
    #[must_use]
    pub fn new(shape: MachineShape, cap: usize) -> Self {
        Tracer {
            lifecycle: LifecycleRecorder::new(cap),
            cpi: CpiStack::new(shape.width),
            occupancy: OccupancyStats::new(
                shape.su_depth,
                shape.su_blocks,
                shape.store_buffer,
                shape.mshrs,
                shape.threads,
            ),
        }
    }

    /// Restricts lifecycle recording to instructions decoded in
    /// `[start, end]` and keeps an occupancy series over up to
    /// `end - start + 1` cycles.
    #[must_use]
    pub fn with_window(mut self, start: u64, end: u64) -> Self {
        self.lifecycle = self.lifecycle.with_window(start, end);
        let span = usize::try_from(end.saturating_sub(start) + 1).unwrap_or(usize::MAX);
        self.occupancy = self.occupancy.with_series(span.min(1 << 20));
        self
    }

    /// Finishes the CPI accountant and returns the breakdown (consumes the
    /// tracer; take `lifecycle`/`occupancy` out first if needed).
    #[must_use]
    pub fn into_breakdown(self) -> CpiBreakdown {
        self.cpi.finish()
    }
}

impl TraceSink for Tracer {
    fn event(&mut self, ev: &TraceEvent<'_>) {
        self.lifecycle.event(ev);
        self.cpi.event(ev);
        self.occupancy.event(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Occupancy;

    #[test]
    fn fans_out_to_all_instruments() {
        let shape = MachineShape {
            width: 4,
            su_depth: 32,
            su_blocks: 8,
            store_buffer: 8,
            mshrs: 1,
            threads: 2,
        };
        let mut t = Tracer::new(shape, 64);
        let occ = Occupancy::default();
        t.event(&TraceEvent::CycleEnd {
            cycle: 0,
            occ: &occ,
        });
        assert_eq!(t.occupancy.su_entries.samples(), 1);
        let b = t.into_breakdown();
        assert_eq!(b.cycles, 1);
        assert_eq!(b.width, 4);
    }
}
