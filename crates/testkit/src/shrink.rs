//! Greedy coarse-to-fine subset minimization (a one-pass `ddmin`).
//!
//! Given a failing configuration of `len` independently removable parts,
//! [`minimize`] searches for a small sub-configuration that still fails.
//! It tries disabling aligned chunks, halving the chunk size whenever no
//! chunk can be removed, down to single elements. The result is
//! *1-minimal with respect to chunk removal*: no single still-enabled
//! element can be disabled without losing the failure (the final
//! granularity is 1), though pairs that mask each other may survive.
//!
//! The predicate receives candidate masks (`true` = part enabled) and
//! returns whether the failure still reproduces. It is the caller's
//! contract that the all-enabled mask fails; `minimize` never re-tests
//! it.

/// Minimizes a failing `len`-part configuration. `fails(&mask)` must
/// return `true` while the failure reproduces with exactly the parts
/// where `mask` is `true` enabled.
///
/// Runs `O(len log len)` predicate calls in the typical case and returns
/// the smallest mask found (never the empty-tested-as-passing ones).
pub fn minimize(len: usize, mut fails: impl FnMut(&[bool]) -> bool) -> Vec<bool> {
    let mut mask = vec![true; len];
    if len == 0 {
        return mask;
    }
    let mut chunk = len.div_ceil(2);
    loop {
        let mut progress = false;
        let mut start = 0;
        while start < len {
            let end = (start + chunk).min(len);
            if mask[start..end].iter().any(|&b| b) {
                let mut cand = mask.clone();
                cand[start..end].fill(false);
                if fails(&cand) {
                    mask = cand;
                    progress = true;
                }
            }
            start = end;
        }
        if progress {
            continue; // retry at the same granularity until it dries up
        }
        if chunk == 1 {
            break;
        }
        chunk = chunk.div_ceil(2);
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolates_a_single_culprit() {
        let mask = minimize(16, |m| m[11]);
        let expected: Vec<bool> = (0..16).map(|i| i == 11).collect();
        assert_eq!(mask, expected);
    }

    #[test]
    fn keeps_an_interacting_pair() {
        let mask = minimize(10, |m| m[2] && m[7]);
        assert!(mask[2] && mask[7]);
        assert_eq!(mask.iter().filter(|&&b| b).count(), 2);
    }

    #[test]
    fn always_failing_predicate_empties_the_mask() {
        let mask = minimize(8, |_| true);
        assert!(mask.iter().all(|&b| !b));
    }

    #[test]
    fn never_shrinks_when_every_part_is_needed() {
        let mask = minimize(4, |m| m.iter().all(|&b| b));
        assert!(mask.iter().all(|&b| b));
    }

    #[test]
    fn zero_length_is_a_no_op() {
        assert!(minimize(0, |_| panic!("predicate must not run")).is_empty());
    }

    #[test]
    fn predicate_call_count_is_modest() {
        let mut calls = 0;
        minimize(64, |m| {
            calls += 1;
            m[5]
        });
        assert!(calls < 64 * 8, "called {calls} times");
    }
}
