//! Property-testing and fuzzing support, free of external dependencies.
//!
//! The build container has no access to crates.io, so the repository's
//! randomized differential tests run on this tiny deterministic generator
//! instead of `proptest`/`rand`. Tests iterate over a fixed seed range —
//! every failure is reproducible from its seed alone, which the
//! [`cases`] runner prints on panic.
//!
//! On top of the [`Rng`] sit the differential-fuzzing pieces: [`progen`]
//! generates constrained-random SPMD programs from a seed, and [`shrink`]
//! greedily minimizes a failing configuration, so a fuzzer repro is always
//! just `(seed, segment mask)`.
//!
//! ```
//! use smt_testkit::Rng;
//!
//! let mut rng = Rng::new(7);
//! let die = rng.below(6) + 1;
//! assert!((1..=6).contains(&die));
//! // Same seed, same stream.
//! assert_eq!(Rng::new(7).next_u64(), Rng::new(7).next_u64());
//! ```

pub mod netfuzz;
pub mod progen;
pub mod shrink;

/// SplitMix64: tiny, fast, and statistically solid for test-case generation
/// (it seeds xoshiro in the reference implementations).
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * n, far
        // below anything a test-case generator can observe.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform value in the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add(self.below(hi.abs_diff(lo)) as i64)
    }

    /// Uniform `usize` in `lo..hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_i64(lo as i64, hi as i64) as usize
    }

    /// Fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniformly picks an element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// Copy-out variant of [`pick`](Self::pick) for `Copy` types.
    pub fn pick_copy<T: Copy>(&mut self, xs: &[T]) -> T {
        *self.pick(xs)
    }
}

/// Runs `body` for seeds `0..cases`, labelling any panic with the failing
/// seed so it can be replayed in isolation.
pub fn cases(cases: u64, mut body: impl FnMut(&mut Rng)) {
    for seed in 0..cases {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = Rng::new(seed);
            body(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!("property failed at seed {seed} of {cases}");
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let a: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::new(42);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = Rng::new(43).next_u64();
        assert_ne!(a[0], c, "different seeds diverge");
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut r = Rng::new(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }

    #[test]
    fn signed_ranges() {
        let mut r = Rng::new(2);
        for _ in 0..1000 {
            let v = r.range_i64(-64, 64);
            assert!((-64..64).contains(&v));
        }
    }

    #[test]
    fn case_runner_reports_seed() {
        let caught = std::panic::catch_unwind(|| {
            cases(10, |rng| {
                // Fails on some seed quickly.
                assert!(rng.below(4) != 3, "forced failure");
            });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn pick_covers_slice() {
        let mut r = Rng::new(3);
        let xs = [10, 20, 30];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(r.pick_copy(&xs));
        }
        assert_eq!(seen.len(), 3);
    }
}
