//! Constrained-random SPMD program generation for differential fuzzing.
//!
//! A [`Plan`] is the *concrete* random content of a test program — segment
//! kinds, ALU step operands, memory slot choices, loop trip counts — drawn
//! once from a seed-deterministic [`Rng`](crate::Rng). Lowering a plan to a
//! [`Program`] is a **pure function** of the plan, an enabled-segment mask,
//! and a thread count ([`Plan::build`]). That split is what makes failures
//! minimizable: the greedy minimizer in [`crate::shrink`] toggles mask
//! bits, and because disabling a segment consumes no randomness, every
//! sub-program of a failing seed is reachable from `(seed, mask)` alone.
//!
//! The generated programs are deliberately hostile to an out-of-order SMT
//! pipeline while staying *commit-order checkable* by the lockstep oracle:
//!
//! * **Branchy** — data-dependent diamonds, nested counted loops, and an
//!   always-taken guard over a poison load that a cold BTB mispredicts,
//!   forcing a squash of a speculative wrong-path **fault**.
//! * **Aliasing** — private per-thread memory slots addressed both
//!   statically and through data-dependent indices, so loads and stores
//!   collide unpredictably and exercise disambiguation and store-to-load
//!   forwarding.
//! * **Cross-thread traffic** — shared slots that all threads store to
//!   concurrently. Every store writes the slot's *canonical constant* (the
//!   value the data image starts with), so a load observes the same value
//!   under any interleaving or forwarding path: the traffic stresses the
//!   memory system without making retire-order replay ambiguous.
//! * **Synchronization** — counting barriers built from `POST`/`WAIT`,
//!   uniform across threads (so any mask is deadlock-free).
//! * **Long latency** — FP chains (including `fdiv`/`fsqrt`) and integer
//!   `mul`/`div`/`rem`, feeding the Conditional-Switch fetch policy.
//!
//! A rare *fault tail* ends the program with an out-of-bounds store, so
//! the fuzzer also covers agreed-fault termination.

use smt_isa::builder::{BuildError, ProgramBuilder};
use smt_isa::{Program, Reg};

use crate::Rng;

/// Number of mutable value registers (`v0..v3`) a plan computes with.
pub const NUM_VALS: usize = 4;
/// Private memory slots per thread (power of two: indices are masked).
const PRIV_SLOTS: u64 = 8;
/// Shared slots all threads store canonical constants to.
const SHARED_SLOTS: u64 = 4;
/// Threads the private region is sized for (the architectural maximum, so
/// the data layout does not depend on the simulated thread count).
const MAX_THREADS: u64 = 8;

/// Tuning knobs for [`Plan::generate`].
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Segment count range (inclusive).
    pub min_segments: usize,
    /// See `min_segments`.
    pub max_segments: usize,
    /// Maximum outer-loop trip count (at least 1).
    pub max_outer_iters: u64,
    /// One plan in `fault_tail_odds` ends with an out-of-bounds store.
    pub fault_tail_odds: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            min_segments: 3,
            max_segments: 9,
            max_outer_iters: 4,
            fault_tail_odds: 16,
        }
    }
}

/// One integer ALU step over the value registers.
#[derive(Clone, Copy, Debug)]
pub struct AluStep {
    /// Operation.
    pub op: AluOp,
    /// Destination value-register index.
    pub d: u8,
    /// First source index.
    pub a: u8,
    /// Second source index (register forms).
    pub b: u8,
    /// Immediate (immediate forms; shift immediates are masked to 0..63).
    pub imm: i16,
}

/// Integer operations a generated ALU step may use. All are total in the
/// shared semantics (division by zero and shift overflows are defined), so
/// any operand draw is safe.
#[derive(Clone, Copy, Debug)]
pub enum AluOp {
    /// `add d, a, b`
    Add,
    /// `sub d, a, b`
    Sub,
    /// `and d, a, b`
    And,
    /// `or d, a, b`
    Or,
    /// `xor d, a, b`
    Xor,
    /// `sll d, a, b`
    Sll,
    /// `srl d, a, b`
    Srl,
    /// `sra d, a, b`
    Sra,
    /// `slt d, a, b`
    Slt,
    /// `sltu d, a, b`
    Sltu,
    /// `mul d, a, b` (long latency)
    Mul,
    /// `div d, a, b` (long latency; `x/0 = !0`)
    Div,
    /// `rem d, a, b` (long latency; `x%0 = x`)
    Rem,
    /// `addi d, a, imm`
    Addi,
    /// `andi d, a, imm`
    Andi,
    /// `ori d, a, imm`
    Ori,
    /// `xori d, a, imm`
    Xori,
    /// `slli d, a, imm&63`
    Slli,
    /// `srli d, a, imm&63`
    Srli,
}

const ALU_OPS: &[AluOp] = &[
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Rem,
    AluOp::Addi,
    AluOp::Andi,
    AluOp::Ori,
    AluOp::Xori,
    AluOp::Slli,
    AluOp::Srli,
];

/// One floating-point step (value registers reinterpreted as f64 bits).
#[derive(Clone, Copy, Debug)]
pub struct FpStep {
    /// Operation.
    pub op: FpOp,
    /// Destination value-register index.
    pub d: u8,
    /// First source index.
    pub a: u8,
    /// Second source index (binary forms).
    pub b: u8,
}

/// FP operations a generated step may use.
#[derive(Clone, Copy, Debug)]
pub enum FpOp {
    /// `fadd`
    Fadd,
    /// `fsub`
    Fsub,
    /// `fmul`
    Fmul,
    /// `fdiv` (long latency)
    Fdiv,
    /// `fneg`
    Fneg,
    /// `fabs`
    Fabs,
    /// `fsqrt` (long latency)
    Fsqrt,
    /// `flt`
    Flt,
    /// `i2f`
    I2f,
    /// `f2i`
    F2i,
}

const FP_OPS: &[FpOp] = &[
    FpOp::Fadd,
    FpOp::Fsub,
    FpOp::Fmul,
    FpOp::Fdiv,
    FpOp::Fneg,
    FpOp::Fabs,
    FpOp::Fsqrt,
    FpOp::Flt,
    FpOp::I2f,
    FpOp::F2i,
];

/// One private-memory step. Slots are per-thread, so ordering is the
/// thread's own program order and replay is exact.
#[derive(Clone, Copy, Debug)]
pub enum MemStep {
    /// `sd v, [base + slot*8]`
    Store {
        /// Source value-register index.
        v: u8,
        /// Static private slot.
        slot: u8,
    },
    /// `ld v, [base + slot*8]`
    Load {
        /// Destination value-register index.
        v: u8,
        /// Static private slot.
        slot: u8,
    },
    /// `sd v, [base + (v[idx] & 7)*8]` — data-dependent aliasing.
    StoreIndexed {
        /// Source value-register index.
        v: u8,
        /// Index register (masked to the slot pool).
        idx: u8,
    },
    /// `ld v, [base + (v[idx] & 7)*8]`
    LoadIndexed {
        /// Destination value-register index.
        v: u8,
        /// Index register (masked to the slot pool).
        idx: u8,
    },
}

/// One shared-memory step. Stores write the canonical constant; loads are
/// therefore interleaving-invariant.
#[derive(Clone, Copy, Debug)]
pub enum SharedStep {
    /// `sd cval, [shared + slot*8]`
    Store {
        /// Shared slot.
        slot: u8,
    },
    /// `ld v, [shared + slot*8]` (always observes the canonical constant)
    Load {
        /// Destination value-register index.
        v: u8,
        /// Shared slot.
        slot: u8,
    },
}

/// One independently removable piece of a generated program's loop body.
#[derive(Clone, Debug)]
pub enum Segment {
    /// Straight-line integer work.
    Alu(Vec<AluStep>),
    /// Straight-line FP work (long-latency units).
    Fp(Vec<FpStep>),
    /// Private loads/stores with static and data-dependent addresses.
    Mem(Vec<MemStep>),
    /// Cross-thread canonical-constant traffic.
    Shared(Vec<SharedStep>),
    /// Data-dependent branch: `if v[cond] & 1 { then } else { else }`.
    Diamond {
        /// Value register whose low bit selects the arm.
        cond: u8,
        /// Taken arm.
        then_steps: Vec<AluStep>,
        /// Fall-through arm.
        else_steps: Vec<AluStep>,
    },
    /// Counted inner loop around a small ALU body.
    InnerLoop {
        /// Trip count (small).
        iters: u8,
        /// Loop body.
        body: Vec<AluStep>,
    },
    /// Branch-heavy weave: a run of conditional sites all keyed to the
    /// outer loop counter's parity, with alternating sense site to site.
    /// Every site therefore flips direction on every outer iteration —
    /// anti-correlated with its own previous outcome, the worst case for a
    /// per-site 2-bit counter and exactly what a history-indexed predictor
    /// learns. Each site runs one of two ALU steps depending on the arm.
    BranchWeave {
        /// Sense of the first site (subsequent sites alternate).
        flip: bool,
        /// Per-site `(taken-arm, fall-through-arm)` steps.
        arms: Vec<(AluStep, AluStep)>,
    },
    /// Always-taken branch over a wrong-path poison load: a cold BTB
    /// predicts fall-through, so the machine speculatively issues a load
    /// of an out-of-bounds address and must squash its fault.
    PoisonGuard,
    /// Counting barrier over all threads (uniform per round, so masking it
    /// in or out can never deadlock).
    Barrier,
}

/// The concrete random content of one generated program.
#[derive(Clone, Debug)]
pub struct Plan {
    /// Seed the plan was generated from (for reproduction lines).
    pub seed: u64,
    /// Outer-loop trip count.
    pub outer_iters: u64,
    /// Loop-body segments, maskable individually.
    pub segments: Vec<Segment>,
    /// Whether the program ends with an out-of-bounds store (maskable as
    /// the last mask bit).
    pub fault_tail: bool,
    /// Initial values of `v0..v3`.
    pub init_vals: [i32; NUM_VALS],
    /// Which initial values get `+ tid` (thread-diverse data).
    pub tid_salt: [bool; NUM_VALS],
    /// Canonical constant stored in (and pre-loaded into) shared slots.
    pub cval: u32,
}

impl Plan {
    /// Draws a plan from `seed`.
    #[must_use]
    pub fn generate(seed: u64, cfg: &GenConfig) -> Self {
        let mut rng = Rng::new(seed);
        let r = &mut rng;
        let n_segments = r.range_usize(cfg.min_segments, cfg.max_segments + 1);
        let segments = (0..n_segments).map(|_| gen_segment(r)).collect();
        let mut init_vals = [0i32; NUM_VALS];
        let mut tid_salt = [false; NUM_VALS];
        for i in 0..NUM_VALS {
            init_vals[i] = r.range_i64(i64::from(i32::MIN), i64::from(i32::MAX)) as i32;
            tid_salt[i] = r.coin();
        }
        Plan {
            seed,
            outer_iters: 1 + r.below(cfg.max_outer_iters),
            segments,
            fault_tail: r.below(cfg.fault_tail_odds) == 0,
            init_vals,
            tid_salt,
            cval: (r.next_u64() >> 33) as u32 | 1,
        }
    }

    /// Length of the enabled mask [`Plan::build`] takes: one bit per
    /// segment plus a final bit gating the fault tail.
    #[must_use]
    pub fn mask_len(&self) -> usize {
        self.segments.len() + 1
    }

    /// Lowers the full plan (everything enabled).
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] (cannot occur for generated plans — the
    /// register budget fits the maximum thread count).
    pub fn build_full(&self, threads: usize) -> Result<Program, BuildError> {
        self.build(&vec![true; self.mask_len()], threads)
    }

    /// Pure lowering of the plan under an enabled mask. Disabled segments
    /// are skipped entirely; no randomness is consumed, so `(seed, mask)`
    /// reproduces the exact program.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`].
    ///
    /// # Panics
    ///
    /// Panics if `enabled.len() != self.mask_len()`.
    pub fn build(&self, enabled: &[bool], threads: usize) -> Result<Program, BuildError> {
        assert_eq!(enabled.len(), self.mask_len(), "mask length");
        let b = &mut ProgramBuilder::new();

        // Data layout (independent of the mask and the thread count):
        // shared slots pre-initialized to the canonical constant, one sync
        // flag word per barrier segment, then the private regions.
        let shared = b.data_u64(&vec![u64::from(self.cval); SHARED_SLOTS as usize]);
        let n_barriers = self
            .segments
            .iter()
            .filter(|s| matches!(s, Segment::Barrier))
            .count() as u64;
        let sync = b.alloc_zeroed(8 * n_barriers.max(1));
        let priv_base = b.alloc_zeroed(MAX_THREADS * PRIV_SLOTS * 8);

        let [base, shb, syn, cval, cnt, cnt2, one, s0, s1] = b.regs();
        let vals: [Reg; NUM_VALS] = b.regs();
        let tid = b.tid_reg();

        // Prologue.
        b.li(base, priv_base as i64);
        b.slli(s0, tid, (PRIV_SLOTS * 8).trailing_zeros() as i32);
        b.add(base, base, s0);
        b.li(shb, shared as i64);
        b.li(syn, sync as i64);
        b.li(cval, i64::from(self.cval));
        b.li(one, 1);
        for (i, &v) in vals.iter().enumerate() {
            b.li(v, i64::from(self.init_vals[i]));
            if self.tid_salt[i] {
                b.add(v, v, tid);
            }
        }
        // Seed cross-thread store traffic (same canonical values the data
        // image already holds, so ordering is invisible).
        for slot in 0..SHARED_SLOTS {
            b.sd(cval, shb, (slot * 8) as i32);
        }
        b.li(cnt, self.outer_iters as i64);

        let top = b.label();
        b.bind(top);
        let mut flag = 0u64;
        for (seg, &on) in self.segments.iter().zip(enabled) {
            let is_barrier = matches!(seg, Segment::Barrier);
            if on {
                lower_segment(
                    b,
                    seg,
                    LowerCtx {
                        base,
                        shb,
                        syn,
                        cval,
                        cnt,
                        cnt2,
                        one,
                        s0,
                        s1,
                        vals,
                        flag,
                        outer_iters: self.outer_iters,
                    },
                );
            }
            // Flag words stay assigned to their segment even when disabled,
            // so masking one barrier off does not re-home the others.
            flag += u64::from(is_barrier);
        }
        b.addi(cnt, cnt, -1);
        b.bge(cnt, one, top);

        // Epilogue: make the final value registers architecturally visible
        // in memory too.
        for (i, &v) in vals.iter().enumerate() {
            b.sd(v, base, (i * 8) as i32);
        }
        if self.fault_tail && enabled[self.segments.len()] {
            b.li(s0, 1 << 40);
            b.sd(vals[0], s0, 0);
        }
        b.halt();
        b.build(threads)
    }

    /// One-line description of the enabled segments, for repro reports.
    #[must_use]
    pub fn describe(&self, enabled: &[bool]) -> String {
        let mut parts: Vec<String> = self
            .segments
            .iter()
            .zip(enabled)
            .filter(|&(_, &on)| on)
            .map(|(s, _)| match s {
                Segment::Alu(v) => format!("alu[{}]", v.len()),
                Segment::Fp(v) => format!("fp[{}]", v.len()),
                Segment::Mem(v) => format!("mem[{}]", v.len()),
                Segment::Shared(v) => format!("shared[{}]", v.len()),
                Segment::Diamond { .. } => "diamond".into(),
                Segment::InnerLoop { iters, .. } => format!("loop[{iters}]"),
                Segment::BranchWeave { arms, .. } => format!("weave[{}]", arms.len()),
                Segment::PoisonGuard => "poison".into(),
                Segment::Barrier => "barrier".into(),
            })
            .collect();
        if self.fault_tail && enabled[self.segments.len()] {
            parts.push("fault-tail".into());
        }
        format!(
            "iters={} segments={{{}}}",
            self.outer_iters,
            parts.join(", ")
        )
    }
}

/// A heterogeneous per-thread program mix drawn from one base seed: slot
/// `t` gets its own independent [`Plan`] generated from a seed mixed with
/// the slot index, and is lowered *at one thread* — each program owns its
/// thread's private world, so [`Segment::Barrier`] self-satisfies and the
/// mix can never deadlock regardless of what the other slots run.
///
/// The minimization mask is the concatenation of the per-slot masks, so
/// the standard subset minimizer shrinks all programs of a failing mix at
/// once; `(seed, threads, mask)` reproduces the exact failing mix.
#[derive(Clone, Debug)]
pub struct MixPlan {
    /// Base seed the per-slot seeds derive from (for repro lines).
    pub seed: u64,
    /// One plan per hardware thread, in slot order.
    pub plans: Vec<Plan>,
}

impl MixPlan {
    /// Draws `threads` independent plans from `seed`.
    #[must_use]
    pub fn generate(seed: u64, threads: usize, cfg: &GenConfig) -> Self {
        let plans = (0..threads)
            .map(|slot| Plan::generate(Self::slot_seed(seed, slot), cfg))
            .collect();
        MixPlan { seed, plans }
    }

    /// The derived seed for one slot: a splitmix64 finalization of the
    /// base seed offset by the slot index, so adjacent base seeds and
    /// adjacent slots still get decorrelated plan streams.
    #[must_use]
    pub fn slot_seed(seed: u64, slot: usize) -> u64 {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(slot as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Length of the concatenated enabled mask [`MixPlan::build`] takes:
    /// the sum of the per-slot [`Plan::mask_len`]s.
    #[must_use]
    pub fn mask_len(&self) -> usize {
        self.plans.iter().map(Plan::mask_len).sum()
    }

    /// Lowers every slot (everything enabled).
    ///
    /// # Errors
    ///
    /// Propagates the first [`BuildError`] (cannot occur for generated
    /// plans).
    pub fn build_full(&self) -> Result<Vec<Program>, BuildError> {
        self.build(&vec![true; self.mask_len()])
    }

    /// Pure lowering of every slot under its slice of the concatenated
    /// mask, each at one thread. No randomness is consumed.
    ///
    /// # Errors
    ///
    /// Propagates the first [`BuildError`].
    ///
    /// # Panics
    ///
    /// Panics if `enabled.len() != self.mask_len()`.
    pub fn build(&self, enabled: &[bool]) -> Result<Vec<Program>, BuildError> {
        assert_eq!(enabled.len(), self.mask_len(), "mix mask length");
        let mut at = 0;
        self.plans
            .iter()
            .map(|plan| {
                let slice = &enabled[at..at + plan.mask_len()];
                at += plan.mask_len();
                plan.build(slice, 1)
            })
            .collect()
    }

    /// One-line per-slot description of the enabled segments, for repro
    /// reports.
    #[must_use]
    pub fn describe(&self, enabled: &[bool]) -> String {
        let mut at = 0;
        self.plans
            .iter()
            .enumerate()
            .map(|(slot, plan)| {
                let slice = &enabled[at..at + plan.mask_len()];
                at += plan.mask_len();
                format!("t{slot}: {}", plan.describe(slice))
            })
            .collect::<Vec<_>>()
            .join("; ")
    }
}

/// Registers and layout facts a segment lowering needs.
#[derive(Clone, Copy)]
struct LowerCtx {
    base: Reg,
    shb: Reg,
    syn: Reg,
    cval: Reg,
    cnt: Reg,
    cnt2: Reg,
    one: Reg,
    s0: Reg,
    s1: Reg,
    vals: [Reg; NUM_VALS],
    /// Sync flag index for a barrier segment.
    flag: u64,
    outer_iters: u64,
}

fn gen_segment(r: &mut Rng) -> Segment {
    // Weighted kind pick: memory and branches dominate, sync and poison
    // stay occasional so most masks keep several of each hazard class.
    match r.below(18) {
        0..=2 => Segment::Alu(gen_alu_steps(r, 5)),
        3..=4 => Segment::Fp((0..r.range_usize(1, 5)).map(|_| gen_fp_step(r)).collect()),
        5..=8 => Segment::Mem((0..r.range_usize(2, 7)).map(|_| gen_mem_step(r)).collect()),
        9..=10 => Segment::Shared(
            (0..r.range_usize(2, 6))
                .map(|_| gen_shared_step(r))
                .collect(),
        ),
        11..=12 => Segment::Diamond {
            cond: r.below(NUM_VALS as u64) as u8,
            then_steps: gen_alu_steps(r, 3),
            else_steps: gen_alu_steps(r, 3),
        },
        13 => Segment::InnerLoop {
            iters: r.range_usize(2, 5) as u8,
            body: gen_alu_steps(r, 3),
        },
        14 => Segment::PoisonGuard,
        15..=16 => Segment::BranchWeave {
            flip: r.coin(),
            arms: (0..r.range_usize(2, 6))
                .map(|_| (gen_alu_step(r), gen_alu_step(r)))
                .collect(),
        },
        _ => Segment::Barrier,
    }
}

fn gen_alu_step(r: &mut Rng) -> AluStep {
    AluStep {
        op: r.pick_copy(ALU_OPS),
        d: r.below(NUM_VALS as u64) as u8,
        a: r.below(NUM_VALS as u64) as u8,
        b: r.below(NUM_VALS as u64) as u8,
        imm: r.range_i64(i64::from(i16::MIN), i64::from(i16::MAX)) as i16,
    }
}

fn gen_alu_steps(r: &mut Rng, max: usize) -> Vec<AluStep> {
    (0..r.range_usize(1, max + 1))
        .map(|_| gen_alu_step(r))
        .collect()
}

fn gen_fp_step(r: &mut Rng) -> FpStep {
    FpStep {
        op: r.pick_copy(FP_OPS),
        d: r.below(NUM_VALS as u64) as u8,
        a: r.below(NUM_VALS as u64) as u8,
        b: r.below(NUM_VALS as u64) as u8,
    }
}

fn gen_mem_step(r: &mut Rng) -> MemStep {
    let v = r.below(NUM_VALS as u64) as u8;
    match r.below(4) {
        0 => MemStep::Store {
            v,
            slot: r.below(PRIV_SLOTS) as u8,
        },
        1 => MemStep::Load {
            v,
            slot: r.below(PRIV_SLOTS) as u8,
        },
        2 => MemStep::StoreIndexed {
            v,
            idx: r.below(NUM_VALS as u64) as u8,
        },
        _ => MemStep::LoadIndexed {
            v,
            idx: r.below(NUM_VALS as u64) as u8,
        },
    }
}

fn gen_shared_step(r: &mut Rng) -> SharedStep {
    let slot = r.below(SHARED_SLOTS) as u8;
    if r.coin() {
        SharedStep::Store { slot }
    } else {
        SharedStep::Load {
            v: r.below(NUM_VALS as u64) as u8,
            slot,
        }
    }
}

fn lower_alu(b: &mut ProgramBuilder, step: &AluStep, vals: &[Reg; NUM_VALS]) {
    let (d, a, r2) = (
        vals[step.d as usize],
        vals[step.a as usize],
        vals[step.b as usize],
    );
    let imm = i32::from(step.imm);
    match step.op {
        AluOp::Add => b.add(d, a, r2),
        AluOp::Sub => b.sub(d, a, r2),
        AluOp::And => b.and(d, a, r2),
        AluOp::Or => b.or(d, a, r2),
        AluOp::Xor => b.xor(d, a, r2),
        AluOp::Sll => b.sll(d, a, r2),
        AluOp::Srl => b.srl(d, a, r2),
        AluOp::Sra => b.sra(d, a, r2),
        AluOp::Slt => b.slt(d, a, r2),
        AluOp::Sltu => b.sltu(d, a, r2),
        AluOp::Mul => b.mul(d, a, r2),
        AluOp::Div => b.div(d, a, r2),
        AluOp::Rem => b.rem(d, a, r2),
        AluOp::Addi => b.addi(d, a, imm),
        AluOp::Andi => b.andi(d, a, imm),
        AluOp::Ori => b.ori(d, a, imm),
        AluOp::Xori => b.xori(d, a, imm),
        AluOp::Slli => b.slli(d, a, imm & 63),
        AluOp::Srli => b.srli(d, a, imm & 63),
    }
}

fn lower_segment(b: &mut ProgramBuilder, seg: &Segment, cx: LowerCtx) {
    match seg {
        Segment::Alu(steps) => {
            for s in steps {
                lower_alu(b, s, &cx.vals);
            }
        }
        Segment::Fp(steps) => {
            for s in steps {
                let (d, a, r2) = (
                    cx.vals[s.d as usize],
                    cx.vals[s.a as usize],
                    cx.vals[s.b as usize],
                );
                match s.op {
                    FpOp::Fadd => b.fadd(d, a, r2),
                    FpOp::Fsub => b.fsub(d, a, r2),
                    FpOp::Fmul => b.fmul(d, a, r2),
                    FpOp::Fdiv => b.fdiv(d, a, r2),
                    FpOp::Fneg => b.fneg(d, a),
                    FpOp::Fabs => b.fabs(d, a),
                    FpOp::Fsqrt => b.fsqrt(d, a),
                    FpOp::Flt => b.flt(d, a, r2),
                    FpOp::I2f => b.i2f(d, a),
                    FpOp::F2i => b.f2i(d, a),
                }
            }
        }
        Segment::Mem(steps) => {
            for s in steps {
                match *s {
                    MemStep::Store { v, slot } => {
                        b.sd(cx.vals[v as usize], cx.base, i32::from(slot) * 8);
                    }
                    MemStep::Load { v, slot } => {
                        b.ld(cx.vals[v as usize], cx.base, i32::from(slot) * 8);
                    }
                    MemStep::StoreIndexed { v, idx } => {
                        lower_indexed_addr(b, cx, idx);
                        b.sd(cx.vals[v as usize], cx.s0, 0);
                    }
                    MemStep::LoadIndexed { v, idx } => {
                        lower_indexed_addr(b, cx, idx);
                        b.ld(cx.vals[v as usize], cx.s0, 0);
                    }
                }
            }
        }
        Segment::Shared(steps) => {
            for s in steps {
                match *s {
                    SharedStep::Store { slot } => b.sd(cx.cval, cx.shb, i32::from(slot) * 8),
                    SharedStep::Load { v, slot } => {
                        b.ld(cx.vals[v as usize], cx.shb, i32::from(slot) * 8);
                    }
                }
            }
        }
        Segment::Diamond {
            cond,
            then_steps,
            else_steps,
        } => {
            let then_l = b.label();
            let join = b.label();
            b.andi(cx.s0, cx.vals[*cond as usize], 1);
            b.beq(cx.s0, cx.one, then_l);
            for s in else_steps {
                lower_alu(b, s, &cx.vals);
            }
            b.j(join);
            b.bind(then_l);
            for s in then_steps {
                lower_alu(b, s, &cx.vals);
            }
            b.bind(join);
        }
        Segment::InnerLoop { iters, body } => {
            let itop = b.label();
            b.li(cx.cnt2, i64::from(*iters));
            b.bind(itop);
            for s in body {
                lower_alu(b, s, &cx.vals);
            }
            b.addi(cx.cnt2, cx.cnt2, -1);
            b.bge(cx.cnt2, cx.one, itop);
        }
        Segment::BranchWeave { flip, arms } => {
            // s1 = outer parity; it flips every iteration, so every site
            // below alternates taken/not-taken across the outer loop.
            b.andi(cx.s1, cx.cnt, 1);
            for (i, (taken_step, fall_step)) in arms.iter().enumerate() {
                let taken = b.label();
                let join = b.label();
                if (i % 2 == 0) == *flip {
                    b.beq(cx.s1, cx.one, taken);
                } else {
                    b.bne(cx.s1, cx.one, taken);
                }
                lower_alu(b, fall_step, &cx.vals);
                b.j(join);
                b.bind(taken);
                lower_alu(b, taken_step, &cx.vals);
                b.bind(join);
            }
        }
        Segment::PoisonGuard => {
            // Always taken; a cold BTB predicts fall-through, so the
            // machine fetches and may issue the poison load speculatively,
            // then must squash it (and purge its fault) on resolve.
            let skip = b.label();
            b.beq(cx.one, cx.one, skip);
            b.li(cx.s0, 1 << 40);
            b.ld(cx.s0, cx.s0, 0);
            b.bind(skip);
        }
        Segment::Barrier => {
            // Counting barrier, round r = outer_iters + 1 - cnt:
            // post the flag, then wait for it to reach r * nthreads.
            b.addi(cx.s0, cx.syn, (cx.flag * 8) as i32);
            b.post(cx.s0);
            b.li(cx.s1, cx.outer_iters as i64 + 1);
            b.sub(cx.s1, cx.s1, cx.cnt);
            b.mul(cx.s1, cx.s1, b.nthreads_reg());
            b.wait(cx.s0, cx.s1);
        }
    }
}

/// `s0 = base + (v[idx] & (PRIV_SLOTS-1)) * 8`
fn lower_indexed_addr(b: &mut ProgramBuilder, cx: LowerCtx, idx: u8) {
    b.andi(cx.s0, cx.vals[idx as usize], PRIV_SLOTS as i32 - 1);
    b.slli(cx.s0, cx.s0, 3);
    b.add(cx.s0, cx.s0, cx.base);
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::interp::Interp;

    #[test]
    fn generation_is_seed_deterministic() {
        let cfg = GenConfig::default();
        for seed in 0..50 {
            let a = Plan::generate(seed, &cfg);
            let b = Plan::generate(seed, &cfg);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
            let pa = a.build_full(4).unwrap();
            let pb = b.build_full(4).unwrap();
            assert_eq!(pa.text().len(), pb.text().len());
        }
    }

    #[test]
    fn plans_fit_the_register_budget_at_max_threads() {
        let cfg = GenConfig::default();
        for seed in 0..100 {
            let plan = Plan::generate(seed, &cfg);
            for threads in [1, 2, 4, 8] {
                plan.build_full(threads)
                    .unwrap_or_else(|e| panic!("seed {seed}, {threads} threads: {e}"));
            }
        }
    }

    #[test]
    fn generated_programs_terminate_on_the_reference() {
        let cfg = GenConfig::default();
        for seed in 0..40 {
            let plan = Plan::generate(seed, &cfg);
            let p = plan.build_full(4).unwrap();
            let mut interp = Interp::new(&p, 4);
            match interp.run() {
                Ok(_) => assert!(interp.finished(), "seed {seed}"),
                // A fault tail is the only legal non-halt ending.
                Err(e) => assert!(plan.fault_tail, "seed {seed}: unexpected {e}"),
            }
        }
    }

    #[test]
    fn masking_any_single_segment_stays_runnable() {
        let cfg = GenConfig::default();
        for seed in 0..20 {
            let plan = Plan::generate(seed, &cfg);
            for off in 0..plan.mask_len() {
                let mut mask = vec![true; plan.mask_len()];
                mask[off] = false;
                let p = plan.build(&mask, 2).unwrap();
                let mut interp = Interp::new(&p, 2);
                if let Err(e) = interp.run() {
                    assert!(
                        plan.fault_tail && mask[plan.segments.len()],
                        "seed {seed} mask-off {off}: unexpected {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_mask_is_just_prologue_and_epilogue() {
        let plan = Plan::generate(7, &GenConfig::default());
        let mask = vec![false; plan.mask_len()];
        let p = plan.build(&mask, 1).unwrap();
        let mut interp = Interp::new(&p, 1);
        interp.run().unwrap();
        assert!(interp.finished());
    }

    #[test]
    fn branch_weaves_are_generated_and_run() {
        let cfg = GenConfig::default();
        let mut saw = false;
        for seed in 0..200 {
            let plan = Plan::generate(seed, &cfg);
            if !plan
                .segments
                .iter()
                .any(|s| matches!(s, Segment::BranchWeave { .. }))
            {
                continue;
            }
            saw = true;
            let p = plan.build_full(2).unwrap();
            let mut interp = Interp::new(&p, 2);
            if let Err(e) = interp.run() {
                assert!(plan.fault_tail, "seed {seed}: unexpected {e}");
            }
        }
        assert!(saw, "no BranchWeave drawn in 200 seeds");
    }

    #[test]
    fn describes_enabled_segments() {
        let plan = Plan::generate(3, &GenConfig::default());
        let all = vec![true; plan.mask_len()];
        let desc = plan.describe(&all);
        assert!(desc.contains("iters="), "{desc}");
    }

    #[test]
    fn mix_plans_are_deterministic_and_slot_diverse() {
        let cfg = GenConfig::default();
        for seed in 0..20 {
            let a = MixPlan::generate(seed, 4, &cfg);
            let b = MixPlan::generate(seed, 4, &cfg);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
            let seeds: std::collections::HashSet<u64> = a.plans.iter().map(|p| p.seed).collect();
            assert_eq!(seeds.len(), 4, "seed {seed}: slot seeds collide");
        }
    }

    #[test]
    fn mix_slots_run_solo_on_the_reference() {
        let cfg = GenConfig::default();
        for seed in 0..20 {
            let mix = MixPlan::generate(seed, 2, &cfg);
            for (slot, p) in mix.build_full().unwrap().iter().enumerate() {
                let mut interp = Interp::new(p, 1);
                if let Err(e) = interp.run() {
                    assert!(
                        mix.plans[slot].fault_tail,
                        "seed {seed} slot {slot}: unexpected {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn mix_mask_slices_address_their_own_slot() {
        let mix = MixPlan::generate(11, 3, &GenConfig::default());
        assert_eq!(
            mix.mask_len(),
            mix.plans.iter().map(Plan::mask_len).sum::<usize>()
        );
        // Disabling everything in slot 1 must leave slots 0 and 2 at their
        // full-build instruction counts.
        let full = mix.build_full().unwrap();
        let mut mask = vec![true; mix.mask_len()];
        let base = mix.plans[0].mask_len();
        mask[base..base + mix.plans[1].mask_len()].fill(false);
        let partial = mix.build(&mask).unwrap();
        assert_eq!(full[0].text().len(), partial[0].text().len());
        assert_eq!(full[2].text().len(), partial[2].text().len());
        assert!(partial[1].text().len() < full[1].text().len());
        let desc = mix.describe(&mask);
        assert!(desc.contains("t0:") && desc.contains("t2:"), "{desc}");
    }
}
