//! Seed-deterministic malformed-request generator for the `smt-serve`
//! wire protocol.
//!
//! The server speaks newline-delimited JSON over TCP; this module
//! generates the traffic a hostile or broken client could send — truncated
//! lines, junk bytes, oversized fields, type-confused requests, nesting
//! bombs, and valid requests shredded across many small TCP writes — as
//! pure data, so the black-box suite in `crates/serve/tests` can drive a
//! live server with raw sockets and assert the contract: *every* input
//! gets a typed error line (or a clean close for unframeable input), and
//! the server never panics, wedges, or corrupts its store.
//!
//! Everything derives from a [`Rng`] seed, so a failing case reproduces
//! from its seed alone, like every other randomized test in the
//! repository.

use crate::Rng;

/// What a correct server must do with the generated payload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Expect {
    /// The payload frames as at least one line, none of which is a valid
    /// request: the server must answer each framed line with a typed
    /// error and keep the connection usable.
    ErrorLine,
    /// The payload overflows the protocol's line cap: the server must
    /// answer with a typed error and may then close the connection (it
    /// cannot resynchronize without buffering attacker-controlled data).
    ErrorMaybeClose,
    /// The payload is actually a valid request, only its *framing* is
    /// adversarial (split across many tiny writes): the server must
    /// reassemble it and answer with a normal, non-error response.
    Ok,
}

/// One generated adversarial exchange.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// Family name, for failure messages (`truncated`, `junk`, …).
    pub label: &'static str,
    /// Byte segments to write in order, each as its own `write` call
    /// (with `TCP_NODELAY`, this approximates segment-split delivery).
    pub segments: Vec<Vec<u8>>,
    /// The contract the server must uphold.
    pub expect: Expect,
}

impl FuzzCase {
    fn one(label: &'static str, bytes: Vec<u8>, expect: Expect) -> Self {
        FuzzCase {
            label,
            segments: vec![bytes],
            expect,
        }
    }

    /// Total payload length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.segments.iter().map(Vec::len).sum()
    }

    /// Whether the case carries no bytes at all (never generated, but
    /// clippy insists a `len` has an `is_empty`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A syntactically valid protocol request, used as raw material for
/// truncation and splitting. Kept semantically harmless: `ping` and
/// `status` don't schedule work, and the `fetch` probes a cell that a
/// test store may or may not hold — all produce non-error replies.
fn valid_request(rng: &mut Rng) -> &'static str {
    const VALID: [&str; 3] = [
        "{\"verb\":\"ping\"}",
        "{\"verb\":\"status\"}",
        "{\"verb\":\"fetch\",\"cell\":{\"workload\":\"sieve\",\"threads\":1}}",
    ];
    rng.pick_copy(&VALID)
}

/// Requests that parse as JSON but violate the protocol: wrong verb
/// types, missing fields, unknown names, out-of-range or overflowing
/// numbers, non-object roots. Exercised verbatim (each must yield exactly
/// one typed error line).
const TYPE_CONFUSED: &[&str] = &[
    "{\"verb\":42}",
    "{\"verb\":null}",
    "{\"verb\":[\"submit\"]}",
    "{\"verb\":\"no_such_verb\"}",
    "{\"no_verb\":true}",
    "{}",
    "[1,2,3]",
    "\"just a string\"",
    "42",
    "true",
    "null",
    "{\"verb\":\"submit\"}",
    "{\"verb\":\"submit\",\"cells\":42}",
    "{\"verb\":\"submit\",\"cells\":{}}",
    "{\"verb\":\"submit\",\"cells\":[42]}",
    "{\"verb\":\"submit\",\"cells\":[{\"threads\":4}]}",
    "{\"verb\":\"submit\",\"cells\":[{\"workload\":7,\"threads\":4}]}",
    "{\"verb\":\"submit\",\"cells\":[{\"workload\":\"Not A Name!\",\"threads\":4}]}",
    "{\"verb\":\"submit\",\"cells\":[{\"workload\":\"sieve+\",\"threads\":2}]}",
    "{\"verb\":\"submit\",\"cells\":[{\"workload\":\"sieve\",\"threads\":0}]}",
    "{\"verb\":\"submit\",\"cells\":[{\"workload\":\"sieve\",\"threads\":-3}]}",
    "{\"verb\":\"submit\",\"cells\":[{\"workload\":\"sieve\",\"threads\":99999999999999999999}]}",
    "{\"verb\":\"submit\",\"cells\":[{\"workload\":\"sieve\",\"threads\":4,\"su_depth\":1.5}]}",
    "{\"verb\":\"submit\",\"cells\":[{\"workload\":\"sieve\",\"threads\":4,\"policy\":\"zzz\"}]}",
    "{\"verb\":\"submit\",\"grid\":\"bogus\"}",
    "{\"verb\":\"submit\",\"grid\":17}",
    "{\"verb\":\"fetch\"}",
    "{\"verb\":\"fetch\",\"cell\":[]}",
    "{\"verb\":\"fetch\",\"cell\":{\"workload\":\"sieve\",\"threads\":4,\"cache\":\"xx\"}}",
];

/// Generates one adversarial exchange from the seed stream.
pub fn malformed_request(rng: &mut Rng) -> FuzzCase {
    match rng.below(6) {
        0 => truncated(rng),
        1 => junk(rng),
        2 => oversized(rng),
        3 => FuzzCase::one(
            "type-confused",
            framed(rng.pick(TYPE_CONFUSED).as_bytes()),
            Expect::ErrorLine,
        ),
        4 => nesting_bomb(rng),
        _ => split_valid(rng),
    }
}

fn framed(bytes: &[u8]) -> Vec<u8> {
    let mut v = bytes.to_vec();
    v.push(b'\n');
    v
}

/// A valid request cut mid-token. Every proper prefix of a minimal JSON
/// object is invalid, so any cut point works.
fn truncated(rng: &mut Rng) -> FuzzCase {
    let full = valid_request(rng).as_bytes();
    let cut = rng.range_usize(1, full.len());
    FuzzCase::one("truncated", framed(&full[..cut]), Expect::ErrorLine)
}

/// Random bytes (often invalid UTF-8), newline-framed so the server sees
/// exactly one garbage line.
fn junk(rng: &mut Rng) -> FuzzCase {
    let len = rng.range_usize(1, 64);
    let mut bytes: Vec<u8> = (0..len)
        .map(|_| {
            // Avoid the frame delimiter so the case is a single line; any
            // other byte value is fair game, including 0x00 and 0xff.
            let b = (rng.below(255) + 1) as u8;
            if b == b'\n' {
                b'\r'
            } else {
                b
            }
        })
        .collect();
    // Make sure the line cannot accidentally be valid JSON: prepend a
    // byte no JSON value starts with.
    bytes.insert(0, b'#');
    FuzzCase::one("junk", framed(&bytes), Expect::ErrorLine)
}

/// A request whose one string field exceeds the protocol line cap.
fn oversized(rng: &mut Rng) -> FuzzCase {
    // Just past the cap is the interesting boundary; far past it checks
    // that nothing buffers proportionally to attacker input.
    let over = if rng.coin() { 1024 } else { 256 * 1024 };
    let mut bytes = b"{\"verb\":\"submit\",\"cells\":\"".to_vec();
    bytes.resize(crate::netfuzz::LINE_CAP + over, b'A');
    bytes.extend_from_slice(b"\"}");
    FuzzCase::one("oversized", framed(&bytes), Expect::ErrorMaybeClose)
}

/// Mirror of the protocol's line cap (`smt_experiments::json::MAX_LINE`),
/// duplicated here so the testkit stays dependency-free; the adversarial
/// suite asserts the two constants agree.
pub const LINE_CAP: usize = 1 << 20;

/// `{"verb": [[[[…]]]]}` beyond the parser's depth bound.
fn nesting_bomb(rng: &mut Rng) -> FuzzCase {
    let depth = rng.range_usize(40, 200);
    let mut s = String::from("{\"verb\":");
    for _ in 0..depth {
        s.push('[');
    }
    s.push('1');
    for _ in 0..depth {
        s.push(']');
    }
    s.push('}');
    FuzzCase::one("nesting-bomb", framed(s.as_bytes()), Expect::ErrorLine)
}

/// A *valid* request delivered one fragment at a time — the partial-write
/// case. The server must reassemble and answer normally.
fn split_valid(rng: &mut Rng) -> FuzzCase {
    let full = framed(valid_request(rng).as_bytes());
    let cuts = rng.range_usize(1, 5.min(full.len() - 1));
    let mut points: Vec<usize> = (0..cuts).map(|_| rng.range_usize(1, full.len())).collect();
    points.sort_unstable();
    points.dedup();
    let mut segments = Vec::new();
    let mut prev = 0;
    for p in points {
        segments.push(full[prev..p].to_vec());
        prev = p;
    }
    segments.push(full[prev..].to_vec());
    FuzzCase {
        label: "split-valid",
        segments,
        expect: Expect::Ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_seed_deterministic() {
        for seed in 0..32 {
            let a = malformed_request(&mut Rng::new(seed));
            let b = malformed_request(&mut Rng::new(seed));
            assert_eq!(a.label, b.label);
            assert_eq!(a.segments, b.segments);
            assert_eq!(a.expect, b.expect);
        }
    }

    #[test]
    fn every_family_appears_and_is_framed() {
        let mut labels = std::collections::HashSet::new();
        for seed in 0..256 {
            let case = malformed_request(&mut Rng::new(seed));
            assert!(!case.is_empty());
            labels.insert(case.label);
            let total: Vec<u8> = case.segments.concat();
            assert!(total.ends_with(b"\n"), "{}: payload is framed", case.label);
            if case.label != "oversized" {
                // Exactly one frame per case keeps reply accounting simple.
                assert_eq!(
                    total.iter().filter(|&&b| b == b'\n').count(),
                    1,
                    "{}: single line",
                    case.label
                );
            }
        }
        for want in [
            "truncated",
            "junk",
            "oversized",
            "type-confused",
            "nesting-bomb",
            "split-valid",
        ] {
            assert!(labels.contains(want), "family {want} never generated");
        }
    }

    #[test]
    fn split_valid_reassembles_to_a_valid_request() {
        for seed in 0..256 {
            let case = malformed_request(&mut Rng::new(seed));
            if case.label == "split-valid" {
                let total = case.segments.concat();
                let text = std::str::from_utf8(&total).expect("valid requests are UTF-8");
                assert!(text.trim_end().starts_with("{\"verb\":\""), "{text}");
                assert_eq!(case.expect, Expect::Ok);
                assert!(case.segments.len() >= 2, "actually split");
            }
        }
    }
}
