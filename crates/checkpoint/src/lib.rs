//! Versioned, self-describing binary snapshot format.
//!
//! Every component that participates in checkpoint/restore serializes
//! itself through the [`Writer`]/[`Reader`] pair defined here, so the
//! on-disk format has exactly one set of primitives: little-endian
//! fixed-width integers, length-prefixed byte strings, and u32 section
//! tags that make decode failures say *which* component's framing broke
//! rather than silently misaligning every field after the first bad one.
//!
//! A [`Snapshot`] wraps one serialized payload with a header (magic,
//! format version, config hash, program hash, cycle) and a trailing
//! FNV-1a checksum over everything before it. `from_bytes` fails closed:
//! wrong magic, unknown version, short buffer, or checksum mismatch all
//! return a typed [`DecodeError`] — a torn write from a killed sweep
//! worker can never be mistaken for a valid resume point.
//!
//! The crate is dependency-free and knows nothing about the simulator;
//! `smt-uarch`, `smt-mem`, and `smt-core` depend on it and keep their
//! fields private by implementing their own save/restore against these
//! primitives.

use std::fmt;
use std::hash::{Hash, Hasher};

/// Snapshot container format version. Bump on any layout change; old
/// snapshots are rejected, never reinterpreted.
///
/// v2: the scheduling unit moved to a struct-of-arrays slab core. The
/// serialized entry stream kept its field order, but entry handles and
/// the forwarding/producer index rebuild rules changed, so v1 payloads
/// written by the per-entry-struct implementation are not trusted.
///
/// v3: program identity became a per-thread vector to bind snapshots of
/// heterogeneous thread mixes (one program per hardware thread) to the
/// exact mix they were taken under. A single-element vector identifies a
/// homogeneous (SPMD) machine; v2 snapshots fail closed.
///
/// v4: an optional **warm-identity** section after the header records
/// which configuration identity fields a warmup-fork snapshot allows to
/// differ on restore (see [`WarmIdentity`]). A snapshot without the
/// section is still written as v3 byte-for-byte — exact-restore
/// snapshots, caches, and their byte-identity guarantees are untouched —
/// and v3 files continue to load. Only snapshots carrying a warm
/// identity use the v4 layout.
pub const FORMAT_VERSION: u32 = 4;

/// Oldest format version [`Snapshot::from_bytes`] still accepts (exact
/// restore only — it predates the warm-identity section).
pub const MIN_FORMAT_VERSION: u32 = 3;

const MAGIC: [u8; 8] = *b"SMTSNAP\0";

/// Upper bound on the per-thread program-hash vector — far above any real
/// thread count, so a corrupted length can never drive a huge allocation.
const MAX_PROGRAM_HASHES: usize = 64;

/// Upper bound on the relaxed-field-id list of a [`WarmIdentity`] — far
/// above any real configuration field count, so a corrupted length can
/// never drive a huge allocation.
const MAX_RELAXED_FIELDS: usize = 64;

/// Section tag introducing the v4 warm-identity header section.
const WARM_SECTION: u32 = 0x5741_524d; // "WARM"

/// Why a byte buffer could not be decoded.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// Fewer bytes remained than the next field needs.
    Truncated { wanted: usize, have: usize },
    /// The buffer does not start with the snapshot magic.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    Version { found: u32, supported: u32 },
    /// The trailing checksum does not match the header + payload bytes.
    Checksum { stored: u64, computed: u64 },
    /// A section tag other than the expected one was found.
    Section { expected: u32, found: u32 },
    /// A field decoded but its value is impossible.
    Malformed(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { wanted, have } => {
                write!(f, "truncated snapshot: wanted {wanted} bytes, have {have}")
            }
            Self::BadMagic => write!(f, "not a snapshot (bad magic)"),
            Self::Version { found, supported } => {
                write!(f, "snapshot format v{found}, this build reads v{supported}")
            }
            Self::Checksum { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            Self::Section { expected, found } => {
                write!(
                    f,
                    "expected section tag {expected:#010x}, found {found:#010x}"
                )
            }
            Self::Malformed(what) => write!(f, "malformed snapshot: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append-only little-endian encoder.
#[derive(Default, Debug)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// `usize` is always written as 8 bytes so the format does not depend
    /// on the writing platform's pointer width.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.put_u8(0),
            Some(x) => {
                self.put_u8(1);
                self.put_u64(x);
            }
        }
    }

    /// Length-prefixed raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// A section tag marking the start of one component's state.
    pub fn section(&mut self, tag: u32) {
        self.put_u32(tag);
    }

    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over an encoded buffer; every take is bounds-checked.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                wanted: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn take_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    pub fn take_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn take_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn take_bool(&mut self) -> Result<bool, DecodeError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(DecodeError::Malformed(format!("bool byte {v}"))),
        }
    }

    pub fn take_usize(&mut self) -> Result<usize, DecodeError> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| DecodeError::Malformed(format!("usize {v} overflows")))
    }

    pub fn take_opt_u64(&mut self) -> Result<Option<u64>, DecodeError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.take_u64()?)),
            v => Err(DecodeError::Malformed(format!("option byte {v}"))),
        }
    }

    pub fn take_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.take_usize()?;
        self.take(n)
    }

    /// Consumes a section tag, failing if it is not `tag`.
    pub fn expect_section(&mut self, tag: u32) -> Result<(), DecodeError> {
        let found = self.take_u32()?;
        if found == tag {
            Ok(())
        } else {
            Err(DecodeError::Section {
                expected: tag,
                found,
            })
        }
    }

    /// Fails unless every byte has been consumed — catches framing bugs
    /// where writer and reader disagree about a component's field list.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::Malformed(format!(
                "{} trailing bytes",
                self.remaining()
            )))
        }
    }
}

/// Identity relaxation carried by a warmup-fork (v4) snapshot.
///
/// An exact-restore snapshot binds to one configuration hash. A warm
/// snapshot instead records *which* configuration fields the forked run
/// may change (`relaxed`, as the field ids published by the simulator
/// crate) plus a hash of the source configuration with exactly those
/// fields canonicalized away (`warm_hash`). `fork_warm` recomputes the
/// canonical hash for the *target* configuration against the stored
/// relaxed list and compares: any difference in a non-relaxed field —
/// including a forged or extended relaxed list, which changes the hash
/// input — fails closed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WarmIdentity {
    /// Sorted, deduplicated configuration field ids allowed to differ.
    pub relaxed: Vec<u32>,
    /// Stable hash of the source configuration with every relaxed field
    /// replaced by its canonical (default) value.
    pub warm_hash: u64,
}

/// One complete machine state: identifying header plus opaque payload.
///
/// The hashes bind a snapshot to the exact `(SimConfig, programs)` pair
/// it was taken under; `Simulator::restore` refuses a snapshot whose
/// hashes do not match, so a sweep cache can never resume a cell with the
/// wrong machine. A snapshot carrying a [`WarmIdentity`] additionally
/// permits `fork_warm` under configurations differing only in the
/// relaxed fields.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Snapshot {
    /// Stable hash of the simulator configuration.
    pub config_hash: u64,
    /// Stable hash of each program image (text + entry + data). One
    /// element for a homogeneous (SPMD) machine where every thread runs
    /// the same program; one element *per hardware thread* for a
    /// heterogeneous mix.
    pub program_hashes: Vec<u64>,
    /// Cycle at which the snapshot was taken (informational; the payload
    /// carries the authoritative copy).
    pub cycle: u64,
    /// Identity relaxation for warmup forking. `None` serializes as the
    /// v3 layout (exact restore only); `Some` selects v4.
    pub warm: Option<WarmIdentity>,
    /// Component state, encoded with [`Writer`].
    pub payload: Vec<u8>,
}

impl Snapshot {
    /// Serializes header + payload + checksum into one buffer.
    ///
    /// A snapshot without a warm identity is emitted in the v3 layout,
    /// byte-for-byte identical to what the v3 implementation wrote, so
    /// exact-restore snapshot files and their byte-identity checks are
    /// unaffected by the v4 extension.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.buf.extend_from_slice(&MAGIC);
        w.put_u32(if self.warm.is_some() {
            FORMAT_VERSION
        } else {
            MIN_FORMAT_VERSION
        });
        w.put_u64(self.config_hash);
        w.put_usize(self.program_hashes.len());
        for &h in &self.program_hashes {
            w.put_u64(h);
        }
        w.put_u64(self.cycle);
        if let Some(warm) = &self.warm {
            w.section(WARM_SECTION);
            w.put_usize(warm.relaxed.len());
            for &id in &warm.relaxed {
                w.put_u32(id);
            }
            w.put_u64(warm.warm_hash);
        }
        w.put_bytes(&self.payload);
        let sum = fnv1a(&w.buf);
        w.put_u64(sum);
        w.into_bytes()
    }

    /// Decodes and validates a buffer produced by [`to_bytes`](Self::to_bytes).
    /// Accepts the current version and v3 (exact-restore snapshots, which
    /// decode with `warm: None`); anything else fails closed.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut r = Reader::new(bytes);
        if r.take(MAGIC.len())? != MAGIC {
            return Err(DecodeError::BadMagic);
        }
        let version = r.take_u32()?;
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(DecodeError::Version {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let config_hash = r.take_u64()?;
        let n = r.take_usize()?;
        if n == 0 || n > MAX_PROGRAM_HASHES {
            return Err(DecodeError::Malformed(format!(
                "{n} program hashes (1..={MAX_PROGRAM_HASHES} expected)"
            )));
        }
        let mut program_hashes = Vec::with_capacity(n);
        for _ in 0..n {
            program_hashes.push(r.take_u64()?);
        }
        let cycle = r.take_u64()?;
        let warm = if version >= 4 {
            r.expect_section(WARM_SECTION)?;
            let k = r.take_usize()?;
            if k > MAX_RELAXED_FIELDS {
                return Err(DecodeError::Malformed(format!(
                    "{k} relaxed fields (≤{MAX_RELAXED_FIELDS} expected)"
                )));
            }
            let mut relaxed = Vec::with_capacity(k);
            for _ in 0..k {
                relaxed.push(r.take_u32()?);
            }
            if !relaxed.windows(2).all(|w| w[0] < w[1]) {
                return Err(DecodeError::Malformed(
                    "relaxed field ids must be strictly ascending".into(),
                ));
            }
            let warm_hash = r.take_u64()?;
            Some(WarmIdentity { relaxed, warm_hash })
        } else {
            None
        };
        let payload = r.take_bytes()?.to_vec();
        let body_len = bytes.len() - r.remaining();
        let stored = r.take_u64()?;
        let computed = fnv1a(&bytes[..body_len]);
        if stored != computed {
            return Err(DecodeError::Checksum { stored, computed });
        }
        r.finish()?;
        Ok(Self {
            config_hash,
            program_hashes,
            cycle,
            warm,
            payload,
        })
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice — the snapshot integrity checksum.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a as a [`Hasher`], so any `#[derive(Hash)]` type gets a digest
/// that is stable across processes (unlike `DefaultHasher`, which is
/// randomly keyed). Used for the config/program identity hashes and the
/// sweep cache's content addressing.
#[derive(Debug)]
pub struct StableHasher(u64);

impl Default for StableHasher {
    fn default() -> Self {
        Self(FNV_OFFSET)
    }
}

impl Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Stable digest of any hashable value.
#[must_use]
pub fn stable_hash<T: Hash>(value: &T) -> u64 {
    let mut h = StableHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX);
        w.put_bool(true);
        w.put_bool(false);
        w.put_usize(42);
        w.put_opt_u64(None);
        w.put_opt_u64(Some(9));
        w.put_bytes(b"hello");
        w.section(0x5155_0001);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.take_u64().unwrap(), u64::MAX);
        assert!(r.take_bool().unwrap());
        assert!(!r.take_bool().unwrap());
        assert_eq!(r.take_usize().unwrap(), 42);
        assert_eq!(r.take_opt_u64().unwrap(), None);
        assert_eq!(r.take_opt_u64().unwrap(), Some(9));
        assert_eq!(r.take_bytes().unwrap(), b"hello");
        r.expect_section(0x5155_0001).unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_typed() {
        let mut w = Writer::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..4]);
        assert!(matches!(
            r.take_u64(),
            Err(DecodeError::Truncated { wanted: 8, have: 4 })
        ));
    }

    #[test]
    fn section_mismatch_is_typed() {
        let mut w = Writer::new();
        w.section(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.expect_section(2),
            Err(DecodeError::Section {
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut w = Writer::new();
        w.put_u8(0);
        let bytes = w.into_bytes();
        let r = Reader::new(&bytes);
        assert!(matches!(r.finish(), Err(DecodeError::Malformed(_))));
    }

    #[test]
    fn snapshot_round_trip() {
        let snap = Snapshot {
            config_hash: 0x1111,
            program_hashes: vec![0x2222],
            cycle: 12345,
            warm: None,
            payload: vec![1, 2, 3, 4, 5],
        };
        let bytes = snap.to_bytes();
        assert_eq!(Snapshot::from_bytes(&bytes).unwrap(), snap);
    }

    /// An exact-restore snapshot (no warm identity) must keep writing the
    /// v3 layout byte-for-byte: existing snapshot files and the sweep's
    /// byte-identity guarantees predate the v4 extension.
    #[test]
    fn exact_snapshot_still_writes_v3_bytes() {
        let snap = Snapshot {
            config_hash: 0xabcd,
            program_hashes: vec![1, 2],
            cycle: 9,
            warm: None,
            payload: vec![7; 16],
        };
        let bytes = snap.to_bytes();
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            MIN_FORMAT_VERSION,
            "exact snapshots stay on the v3 wire format"
        );
        // Hand-build the v3 layout and compare every byte.
        let mut w = Writer::new();
        w.buf.extend_from_slice(&MAGIC);
        w.put_u32(3);
        w.put_u64(snap.config_hash);
        w.put_usize(snap.program_hashes.len());
        for &h in &snap.program_hashes {
            w.put_u64(h);
        }
        w.put_u64(snap.cycle);
        w.put_bytes(&snap.payload);
        let sum = fnv1a(&w.buf);
        w.put_u64(sum);
        assert_eq!(bytes, w.into_bytes());
    }

    #[test]
    fn warm_snapshot_round_trips_as_v4() {
        let snap = Snapshot {
            config_hash: 0x1111,
            program_hashes: vec![0x2222, 0x3333],
            cycle: 777,
            warm: Some(WarmIdentity {
                relaxed: vec![2, 5, 9],
                warm_hash: 0xfeed_f00d,
            }),
            payload: vec![9, 8, 7],
        };
        let bytes = snap.to_bytes();
        assert_eq!(
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            FORMAT_VERSION
        );
        assert_eq!(Snapshot::from_bytes(&bytes).unwrap(), snap);
    }

    #[test]
    fn warm_relaxed_list_must_be_sorted_and_bounded() {
        let snap = Snapshot {
            config_hash: 1,
            program_hashes: vec![2],
            cycle: 3,
            warm: Some(WarmIdentity {
                relaxed: vec![5, 2], // out of order
                warm_hash: 0,
            }),
            payload: vec![],
        };
        assert!(matches!(
            Snapshot::from_bytes(&snap.to_bytes()),
            Err(DecodeError::Malformed(_))
        ));
        let snap = Snapshot {
            warm: Some(WarmIdentity {
                relaxed: (0..100).collect(), // over the cap
                warm_hash: 0,
            }),
            ..snap
        };
        assert!(matches!(
            Snapshot::from_bytes(&snap.to_bytes()),
            Err(DecodeError::Malformed(_))
        ));
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let snap = Snapshot {
            config_hash: 1,
            program_hashes: vec![2, 3, 4, 5],
            cycle: 3,
            warm: None,
            payload: vec![0xaa; 64],
        };
        let good = snap.to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(Snapshot::from_bytes(&bad_magic), Err(DecodeError::BadMagic));

        let mut bad_version = good.clone();
        bad_version[8] = 0xfe;
        assert!(matches!(
            Snapshot::from_bytes(&bad_version),
            Err(DecodeError::Version { .. })
        ));

        let mut flipped = good.clone();
        // Flip a payload byte (the payload is the last field before the
        // trailing 8-byte checksum): structurally valid, checksum-caught.
        let in_payload = good.len() - 12;
        flipped[in_payload] ^= 0x01;
        assert!(matches!(
            Snapshot::from_bytes(&flipped),
            Err(DecodeError::Checksum { .. })
        ));

        let torn = &good[..good.len() - 9];
        assert!(matches!(
            Snapshot::from_bytes(torn),
            Err(DecodeError::Truncated { .. })
        ));
    }

    /// A snapshot from an older format version must be rejected even when
    /// its checksum is intact — version precedes checksum in the decode
    /// order, and a stale-but-uncorrupted file is the realistic case (a
    /// sweep cache left on disk across a simulator upgrade).
    #[test]
    fn stale_version_rejected_with_valid_checksum() {
        let snap = Snapshot {
            config_hash: 1,
            program_hashes: vec![2],
            cycle: 3,
            warm: None,
            payload: vec![0x55; 32],
        };
        let mut v1 = snap.to_bytes();
        v1[8..12].copy_from_slice(&2u32.to_le_bytes());
        // Re-seal: the forged version byte must carry a *valid* checksum so
        // the test proves rejection happens on version, not on integrity.
        let body = v1.len() - 8;
        let sum = fnv1a(&v1[..body]);
        v1[body..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            Snapshot::from_bytes(&v1),
            Err(DecodeError::Version {
                found: 2,
                supported: FORMAT_VERSION,
            })
        );
    }

    #[test]
    fn stable_hash_is_deterministic_and_discriminating() {
        #[derive(Hash)]
        struct K {
            a: u64,
            b: &'static str,
        }
        let h1 = stable_hash(&K { a: 1, b: "x" });
        let h2 = stable_hash(&K { a: 1, b: "x" });
        let h3 = stable_hash(&K { a: 2, b: "x" });
        assert_eq!(h1, h2);
        assert_ne!(h1, h3);
        // Pinned values: the hash is part of the on-disk cache key, so a
        // silent change to the hashing scheme must fail a test.
        assert_eq!(fnv1a(b""), FNV_OFFSET);
        assert_eq!(
            fnv1a(b"a"),
            (FNV_OFFSET ^ u64::from(b'a')).wrapping_mul(FNV_PRIME)
        );
    }
}
