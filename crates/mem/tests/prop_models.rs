//! Model-based property tests for the memory subsystem: the LRU cache's
//! hit/miss decisions must match a brute-force reference model, and the
//! store buffer must behave like a simple ordered list. Randomized via the
//! repo-local deterministic generator (`smt-testkit`).

use std::collections::VecDeque;

use smt_mem::{CacheConfig, DataCache, Outcome, StoreBuffer};
use smt_testkit::cases;

/// Brute-force LRU model: per set, a most-recently-used-first list of tags.
struct RefCache {
    sets: Vec<VecDeque<u64>>,
    ways: usize,
    line: u64,
}

impl RefCache {
    fn new(cfg: &CacheConfig) -> Self {
        RefCache {
            sets: vec![VecDeque::new(); cfg.sets()],
            ways: cfg.ways,
            line: cfg.line_bytes,
        }
    }

    /// Returns whether the access hits, updating LRU state (installs on
    /// miss — the reference has no refill latency).
    fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&t| t == tag) {
            s.remove(pos);
            s.push_front(tag);
            true
        } else {
            if s.len() == self.ways {
                s.pop_back();
            }
            s.push_front(tag);
            false
        }
    }
}

/// With accesses spaced beyond the miss penalty, the timing cache's
/// hit/miss classification must equal the pure LRU model for any geometry
/// and access pattern.
#[test]
fn cache_matches_reference_lru() {
    cases(256, |rng| {
        let ways = rng.pick_copy(&[1usize, 2, 4]);
        let sets = 1usize << rng.range_usize(1, 4);
        let cfg = CacheConfig {
            size_bytes: (sets * ways) as u64 * 32,
            line_bytes: 32,
            ways,
            miss_penalty: 5,
            mshrs: 1,
        };
        let mut dut = DataCache::new(cfg);
        let mut reference = RefCache::new(&cfg);
        let mut now = 0u64;
        for _ in 0..rng.range_usize(1, 200) {
            let aligned = rng.below(4096) & !7;
            let expected_hit = reference.access(aligned);
            match dut.access(aligned, now) {
                Outcome::Hit => assert!(expected_hit, "dut hit, model missed @{aligned:#x}"),
                Outcome::Miss { ready_at } => {
                    assert!(!expected_hit, "dut missed, model hit @{aligned:#x}");
                    now = ready_at; // wait out the refill → no Blocked/Pending
                }
                other => panic!("unexpected outcome {other:?}"),
            }
            now += 1;
        }
        let stats = dut.stats();
        assert_eq!(stats.accesses, stats.hits + stats.misses);
        assert_eq!(stats.blocked, 0);
    });
}

/// The store buffer forwards the youngest matching store, never exceeds
/// capacity, and drains released entries in per-address order.
#[test]
fn store_buffer_matches_list_model() {
    cases(256, |rng| {
        let capacity = rng.range_usize(1, 9);
        let mut dut = StoreBuffer::new(capacity);
        let mut model: Vec<(u64, u64, u64)> = Vec::new(); // (id, addr, value)
        for next_id in 0..rng.range_usize(1, 100) as u64 {
            let addr = rng.below(8) * 8;
            let value = rng.next_u64();
            let drain_now = rng.coin();
            if dut.insert(next_id, 0, addr, value, 0).is_ok() {
                model.push((next_id, addr, value));
                assert!(model.len() <= capacity);
            } else {
                assert_eq!(model.len(), capacity, "rejected while not full");
            }

            // Forwarding: youngest matching store.
            let expect = model.iter().rev().find(|e| e.1 == addr).map(|e| e.2);
            assert_eq!(dut.forward(addr), expect);

            if drain_now {
                // Release the oldest entry and drain it.
                if let Some(&(id, daddr, dvalue)) = model.first() {
                    assert!(dut.release(id));
                    let drained = dut.take_drainable().expect("oldest released drains");
                    assert_eq!(
                        (drained.id, drained.addr, drained.value),
                        (id, daddr, dvalue)
                    );
                    model.remove(0);
                }
            }
            assert_eq!(dut.len(), model.len());
        }
    });
}
