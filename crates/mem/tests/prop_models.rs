//! Model-based property tests for the memory subsystem: the LRU cache's
//! hit/miss decisions must match a brute-force reference model, and the
//! store buffer must behave like a simple ordered list.

use std::collections::VecDeque;

use proptest::prelude::*;

use smt_mem::{CacheConfig, DataCache, Outcome, StoreBuffer};

/// Brute-force LRU model: per set, a most-recently-used-first list of tags.
struct RefCache {
    sets: Vec<VecDeque<u64>>,
    ways: usize,
    line: u64,
}

impl RefCache {
    fn new(cfg: &CacheConfig) -> Self {
        RefCache {
            sets: vec![VecDeque::new(); cfg.sets()],
            ways: cfg.ways,
            line: cfg.line_bytes,
        }
    }

    /// Returns whether the access hits, updating LRU state (installs on
    /// miss — the reference has no refill latency).
    fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line;
        let set = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let s = &mut self.sets[set];
        if let Some(pos) = s.iter().position(|&t| t == tag) {
            s.remove(pos);
            s.push_front(tag);
            true
        } else {
            if s.len() == self.ways {
                s.pop_back();
            }
            s.push_front(tag);
            false
        }
    }
}

proptest! {
    /// With accesses spaced beyond the miss penalty, the timing cache's
    /// hit/miss classification must equal the pure LRU model for any
    /// geometry and access pattern.
    #[test]
    fn cache_matches_reference_lru(
        ways in prop::sample::select(vec![1usize, 2, 4]),
        sets_pow in 1u32..4,
        addrs in prop::collection::vec(0u64..4096, 1..200),
    ) {
        let sets = 1usize << sets_pow;
        let cfg = CacheConfig {
            size_bytes: (sets * ways) as u64 * 32,
            line_bytes: 32,
            ways,
            miss_penalty: 5,
            mshrs: 1,
        };
        let mut dut = DataCache::new(cfg);
        let mut reference = RefCache::new(&cfg);
        let mut now = 0u64;
        for addr in addrs {
            let aligned = addr & !7;
            let expected_hit = reference.access(aligned);
            match dut.access(aligned, now) {
                Outcome::Hit => prop_assert!(expected_hit, "dut hit, model missed @{aligned:#x}"),
                Outcome::Miss { ready_at } => {
                    prop_assert!(!expected_hit, "dut missed, model hit @{aligned:#x}");
                    now = ready_at; // wait out the refill → no Blocked/Pending
                }
                other => prop_assert!(false, "unexpected outcome {other:?}"),
            }
            now += 1;
        }
        let stats = dut.stats();
        prop_assert_eq!(stats.accesses, stats.hits + stats.misses);
        prop_assert_eq!(stats.blocked, 0);
    }

    /// The store buffer forwards the youngest matching store, never exceeds
    /// capacity, and drains released entries in per-address order.
    #[test]
    fn store_buffer_matches_list_model(
        capacity in 1usize..9,
        ops in prop::collection::vec((0u64..8, any::<u64>(), any::<bool>()), 1..100),
    ) {
        let mut dut = StoreBuffer::new(capacity);
        let mut model: Vec<(u64, u64, u64)> = Vec::new(); // (id, addr, value)
        let mut next_id = 0u64;
        for (slot, value, drain_now) in ops {
            let addr = slot * 8;
            if dut.insert(next_id, 0, addr, value).is_ok() {
                model.push((next_id, addr, value));
                prop_assert!(model.len() <= capacity);
            } else {
                prop_assert_eq!(model.len(), capacity, "rejected while not full");
            }
            next_id += 1;

            // Forwarding: youngest matching store.
            let expect = model.iter().rev().find(|e| e.1 == addr).map(|e| e.2);
            prop_assert_eq!(dut.forward(addr), expect);

            if drain_now {
                // Release the oldest entry and drain it.
                if let Some(&(id, daddr, dvalue)) = model.first() {
                    prop_assert!(dut.release(id));
                    let drained = dut.take_drainable().expect("oldest released drains");
                    prop_assert_eq!((drained.id, drained.addr, drained.value), (id, daddr, dvalue));
                    model.remove(0);
                }
            }
            prop_assert_eq!(dut.len(), model.len());
        }
    }
}
