//! Memory-subsystem models for the SMT superscalar simulator.
//!
//! Three pieces, matching the paper's hardware configuration (Table 2):
//!
//! * [`memory::MainMemory`] — flat, word-granular backing store holding the
//!   *architectural* contents of data memory.
//! * [`cache::DataCache`] — an 8 KB LRU cache (4-way set-associative or
//!   direct-mapped) used purely as a *timing* model: tags and replacement
//!   state are tracked exactly, but data always flows through to
//!   [`memory::MainMemory`], so a timing-model bug can never corrupt
//!   architectural state. The cache services one line refill while
//!   continuing to provide data, and a second miss blocks requests until the
//!   outstanding refill completes — the paper's exact design point
//!   (Section 5.3).
//! * [`store_buffer::StoreBuffer`] — the 8-entry buffer between the
//!   scheduling unit and the cache; stores sit here from execute until their
//!   scheduling-unit entry is shifted out (the paper's "restricted
//!   load/store policy"), with load forwarding.

pub mod cache;
pub mod memory;
pub mod store_buffer;

pub use cache::{CacheConfig, CacheKind, CacheStats, DataCache, Outcome};
pub use memory::{MainMemory, MemError};
pub use store_buffer::{StoreBuffer, StoreEntry};
