//! Timing model of the shared data cache.
//!
//! The paper's cache (Section 4, Table 2; studied in Section 5.3):
//!
//! * 8 KB, 32-byte lines, LRU replacement,
//! * uniform (not partitioned) and shared by all threads,
//! * 4-way set-associative by default, direct-mapped as the alternative,
//! * non-blocking to depth one: "the cache is capable of servicing one line
//!   refill while simultaneously providing data. A second miss renders the
//!   cache incapable of servicing data requests."
//!
//! This is a *tag-only* timing model: it decides hit/miss/blocked and tracks
//! replacement state, while data always moves through
//! [`MainMemory`](crate::memory::MainMemory). A perfect instruction cache is
//! assumed (Table 2), so no I-cache model exists.

use std::fmt;

/// Cache organization: the two alternatives the paper compares.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum CacheKind {
    /// 4-way set-associative with perfect LRU (the default model).
    #[default]
    SetAssociative,
    /// Direct-mapped, same capacity.
    DirectMapped,
}

impl fmt::Display for CacheKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheKind::SetAssociative => f.write_str("4-way set associative"),
            CacheKind::DirectMapped => f.write_str("direct-mapped"),
        }
    }
}

/// Geometry and timing of a data cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (1 = direct-mapped).
    pub ways: usize,
    /// Extra cycles a miss needs before its data is available.
    pub miss_penalty: u64,
    /// Simultaneously outstanding line refills. The paper's cache services
    /// exactly one ("a second miss renders the cache incapable of servicing
    /// data requests"); larger values implement its Section 6 suggestion to
    /// "employ more cache ports".
    pub mshrs: usize,
}

impl CacheConfig {
    /// The paper's 8 KB / 32 B-line cache in the given organization, with
    /// the reconstructed 12-cycle miss penalty (see DESIGN.md).
    #[must_use]
    pub fn paper(kind: CacheKind) -> Self {
        CacheConfig {
            size_bytes: 8 * 1024,
            line_bytes: 32,
            ways: match kind {
                CacheKind::SetAssociative => 4,
                CacheKind::DirectMapped => 1,
            },
            miss_penalty: 12,
            mshrs: 1,
        }
    }

    /// The same cache with `n` outstanding-refill slots (Section 6
    /// extension).
    #[must_use]
    pub fn with_mshrs(mut self, n: usize) -> Self {
        self.mshrs = n;
        self
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (non-power-of-two line size,
    /// capacity not divisible into `ways` lines per set, or zero anywhere).
    #[must_use]
    pub fn sets(&self) -> usize {
        assert!(
            self.line_bytes.is_power_of_two() && self.line_bytes > 0,
            "bad line size"
        );
        assert!(self.ways > 0, "zero ways");
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines > 0 && lines.is_multiple_of(self.ways as u64),
            "capacity {} not divisible into {}-way sets of {}-byte lines",
            self.size_bytes,
            self.ways,
            self.line_bytes
        );
        let sets = (lines / self.ways as u64) as usize;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        sets
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::paper(CacheKind::SetAssociative)
    }
}

/// Result of presenting an access to the cache at some cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// The line is resident: data available at hit latency.
    Hit,
    /// The line missed and a refill was started; data available at
    /// `ready_at` (inclusive). The refill slot is busy until then.
    Miss {
        /// Cycle at which the refilled data may be used.
        ready_at: u64,
    },
    /// The line is the one currently being refilled; data available when
    /// that refill lands. Counted as a hit (no new memory traffic).
    PendingHit {
        /// Cycle at which the in-flight refill lands.
        ready_at: u64,
    },
    /// A different line missed while the refill slot is busy: the cache
    /// cannot service this request. Retry at `retry_at`.
    Blocked {
        /// First cycle at which the request may be retried.
        retry_at: u64,
    },
}

/// Hit/miss counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Accesses that were resolved (hit, pending hit, or refill start).
    /// Blocked retries are not counted.
    pub accesses: u64,
    /// Resolved accesses that found their line resident or in flight.
    pub hits: u64,
    /// Resolved accesses that started a refill.
    pub misses: u64,
    /// Requests rejected because the refill slot was busy.
    pub blocked: u64,
}

impl CacheStats {
    /// Hit rate in percent (100 × hits / accesses); 0 when idle.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / self.accesses as f64
        }
    }
}

#[derive(Clone, Debug)]
struct Set {
    /// Tags ordered most-recently-used first; length ≤ ways.
    lru: Vec<u64>,
}

/// An in-flight line refill.
#[derive(Clone, Copy, Debug)]
struct Refill {
    set: usize,
    tag: u64,
    done: u64,
}

/// The data-cache timing model. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct DataCache {
    config: CacheConfig,
    sets: Vec<Set>,
    set_shift: u32,
    set_mask: u64,
    /// In-flight refills, at most `config.mshrs` of them.
    refills: Vec<Refill>,
    stats: CacheStats,
}

impl DataCache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (see [`CacheConfig::sets`]) or a zero
    /// MSHR count.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(config.mshrs > 0, "cache needs at least one refill slot");
        DataCache {
            config,
            // Not `vec![template; sets]`: cloning a Vec copies only its
            // elements, so the clones would start at capacity zero and each
            // set would heap-allocate on its first fill mid-simulation.
            sets: (0..sets)
                .map(|_| Set {
                    lru: Vec::with_capacity(config.ways),
                })
                .collect(),
            set_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets as u64 - 1,
            refills: Vec::with_capacity(config.mshrs),
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn split(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.set_shift;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Lands completed refills, installing their lines as MRU.
    fn settle(&mut self, now: u64) {
        let mut i = 0;
        while i < self.refills.len() {
            let Refill { set, tag, done } = self.refills[i];
            if now >= done {
                let s = &mut self.sets[set];
                // The line may already be present if it was re-fetched after
                // an eviction race; dedupe defensively.
                s.lru.retain(|&t| t != tag);
                if s.lru.len() == self.config.ways {
                    s.lru.pop();
                }
                s.lru.insert(0, tag);
                self.refills.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Presents an access (load or store — the paper's cache is unified for
    /// timing purposes) for the line containing `addr`, at cycle `now`.
    ///
    /// The caller is responsible for retrying [`Outcome::Blocked`] requests
    /// and for delaying data use until `ready_at` on misses.
    pub fn access(&mut self, addr: u64, now: u64) -> Outcome {
        self.settle(now);
        let (set, tag) = self.split(addr);
        // Hit on a resident line?
        if let Some(pos) = self.sets[set].lru.iter().position(|&t| t == tag) {
            let t = self.sets[set].lru.remove(pos);
            self.sets[set].lru.insert(0, t);
            self.stats.accesses += 1;
            self.stats.hits += 1;
            return Outcome::Hit;
        }
        // Hit on a line currently in flight?
        if let Some(r) = self.refills.iter().find(|r| r.set == set && r.tag == tag) {
            self.stats.accesses += 1;
            self.stats.hits += 1;
            return Outcome::PendingHit { ready_at: r.done };
        }
        // Miss: start a refill if an MSHR is free, otherwise reject until
        // the earliest outstanding refill lands.
        if self.refills.len() == self.config.mshrs {
            let retry_at = self
                .refills
                .iter()
                .map(|r| r.done)
                .min()
                .expect("non-empty");
            self.stats.blocked += 1;
            return Outcome::Blocked { retry_at };
        }
        let done = now + self.config.miss_penalty;
        self.refills.push(Refill { set, tag, done });
        self.stats.accesses += 1;
        self.stats.misses += 1;
        Outcome::Miss { ready_at: done }
    }

    /// Whether every refill slot is occupied at cycle `now`.
    #[must_use]
    pub fn refill_busy(&self, now: u64) -> bool {
        self.outstanding_refills(now) == self.config.mshrs
    }

    /// Number of line refills still in flight at cycle `now` (occupied
    /// MSHRs) — the occupancy telemetry's "outstanding misses" gauge.
    #[must_use]
    pub fn outstanding_refills(&self, now: u64) -> usize {
        self.refills.iter().filter(|r| now < r.done).count()
    }

    /// Serializes replacement state, in-flight refills (in slot order —
    /// [`settle`](Self::settle) installs same-set lines in `refills` order,
    /// so the order is architecturally visible through LRU state), and
    /// statistics. Geometry is not serialized; it comes from the config at
    /// restore time.
    pub fn save(&self, w: &mut smt_checkpoint::Writer) {
        w.put_usize(self.sets.len());
        for s in &self.sets {
            w.put_usize(s.lru.len());
            for &tag in &s.lru {
                w.put_u64(tag);
            }
        }
        w.put_usize(self.refills.len());
        for r in &self.refills {
            w.put_usize(r.set);
            w.put_u64(r.tag);
            w.put_u64(r.done);
        }
        w.put_u64(self.stats.accesses);
        w.put_u64(self.stats.hits);
        w.put_u64(self.stats.misses);
        w.put_u64(self.stats.blocked);
    }

    /// Rebuilds a cache for `config` from [`save`](Self::save)d state.
    pub fn restore(
        config: CacheConfig,
        r: &mut smt_checkpoint::Reader<'_>,
    ) -> Result<Self, smt_checkpoint::DecodeError> {
        let mut cache = DataCache::new(config);
        let n_sets = r.take_usize()?;
        if n_sets != cache.sets.len() {
            return Err(smt_checkpoint::DecodeError::Malformed(format!(
                "cache: {n_sets} serialized sets, geometry has {}",
                cache.sets.len()
            )));
        }
        for s in &mut cache.sets {
            let ways = r.take_usize()?;
            if ways > config.ways {
                return Err(smt_checkpoint::DecodeError::Malformed(format!(
                    "cache: set holds {ways} lines, geometry allows {}",
                    config.ways
                )));
            }
            for _ in 0..ways {
                s.lru.push(r.take_u64()?);
            }
        }
        let n_refills = r.take_usize()?;
        if n_refills > config.mshrs {
            return Err(smt_checkpoint::DecodeError::Malformed(format!(
                "cache: {n_refills} in-flight refills, {} MSHRs",
                config.mshrs
            )));
        }
        for _ in 0..n_refills {
            cache.refills.push(Refill {
                set: r.take_usize()?,
                tag: r.take_u64()?,
                done: r.take_u64()?,
            });
        }
        cache.stats.accesses = r.take_u64()?;
        cache.stats.hits = r.take_u64()?;
        cache.stats.misses = r.take_u64()?;
        cache.stats.blocked = r.take_u64()?;
        Ok(cache)
    }

    /// Invalidates all lines and cancels any refill. Statistics survive.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.lru.clear();
        }
        self.refills.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(ways: usize) -> DataCache {
        // 4 sets × `ways` lines of 32 B.
        DataCache::new(CacheConfig {
            size_bytes: 32 * 4 * ways as u64,
            line_bytes: 32,
            ways,
            miss_penalty: 10,
            mshrs: 1,
        })
    }

    #[test]
    fn paper_geometry() {
        let assoc = CacheConfig::paper(CacheKind::SetAssociative);
        assert_eq!(assoc.sets(), 64);
        let direct = CacheConfig::paper(CacheKind::DirectMapped);
        assert_eq!(direct.sets(), 256);
    }

    #[test]
    fn miss_then_hit_after_refill() {
        let mut c = small(2);
        assert_eq!(c.access(0, 0), Outcome::Miss { ready_at: 10 });
        // Same line once the refill has landed: hit.
        assert_eq!(c.access(8, 10), Outcome::Hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn pending_hit_on_inflight_line() {
        let mut c = small(2);
        assert_eq!(c.access(0, 0), Outcome::Miss { ready_at: 10 });
        assert_eq!(c.access(24, 3), Outcome::PendingHit { ready_at: 10 });
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn second_miss_blocks_until_refill_lands() {
        let mut c = small(2);
        assert_eq!(c.access(0, 0), Outcome::Miss { ready_at: 10 });
        // Different line, refill slot busy.
        assert_eq!(c.access(4096, 5), Outcome::Blocked { retry_at: 10 });
        assert_eq!(c.stats().blocked, 1);
        // After the refill lands the retry succeeds (as a new miss).
        assert_eq!(c.access(4096, 10), Outcome::Miss { ready_at: 20 });
    }

    #[test]
    fn hit_under_miss_is_serviced() {
        let mut c = small(2);
        assert_eq!(c.access(0, 0), Outcome::Miss { ready_at: 10 });
        assert_eq!(c.access(0, 10), Outcome::Hit);
        // New miss at cycle 10…
        assert_eq!(c.access(4096, 10), Outcome::Miss { ready_at: 20 });
        // …while it is in flight, the resident line still hits.
        assert_eq!(c.access(0, 12), Outcome::Hit);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small(2); // 2-way, 4 sets; lines map to set (addr/32)%4
        let line = |n: u64| n * 32 * 4; // all in set 0
        let mut t = 0;
        for n in [0u64, 1, 0, 2] {
            // touch 0, 1, 0, 2 → evicts 1 (LRU), keeps 0 and 2
            loop {
                match c.access(line(n), t) {
                    Outcome::Hit => break,
                    Outcome::Miss { ready_at } | Outcome::PendingHit { ready_at } => {
                        t = ready_at;
                        break;
                    }
                    Outcome::Blocked { retry_at } => t = retry_at,
                }
            }
            t += 1;
        }
        assert_eq!(c.access(line(0), t), Outcome::Hit);
        t += 1;
        assert_eq!(c.access(line(2), t), Outcome::Hit);
        t += 1;
        assert!(
            matches!(c.access(line(1), t), Outcome::Miss { .. }),
            "line 1 was evicted"
        );
    }

    #[test]
    fn direct_mapped_conflicts_where_associative_fits() {
        // Two lines mapping to the same direct-mapped set ping-pong, while a
        // 2-way cache holds both.
        let mut direct = small(1);
        let mut assoc = small(2);
        let a = 0u64;
        let b = 32 * 4; // same set index in the 4-set direct cache
        let mut t = 1000;
        for c in [&mut direct, &mut assoc] {
            t += 1000;
            for _ in 0..4 {
                for addr in [a, b] {
                    loop {
                        match c.access(addr, t) {
                            Outcome::Hit => break,
                            Outcome::Miss { ready_at } | Outcome::PendingHit { ready_at } => {
                                t = ready_at;
                                break;
                            }
                            Outcome::Blocked { retry_at } => t = retry_at,
                        }
                    }
                    t += 1;
                }
            }
        }
        assert!(direct.stats().misses > assoc.stats().misses);
        assert!(direct.stats().hit_rate() < assoc.stats().hit_rate());
    }

    #[test]
    fn extra_mshrs_overlap_refills() {
        // Two MSHRs: a second (different-line) miss starts immediately
        // instead of blocking; a third blocks until the earliest lands.
        let mut c = DataCache::new(CacheConfig {
            size_bytes: 32 * 4 * 2,
            line_bytes: 32,
            ways: 2,
            miss_penalty: 10,
            mshrs: 2,
        });
        assert_eq!(c.access(0, 0), Outcome::Miss { ready_at: 10 });
        assert_eq!(c.access(4096, 2), Outcome::Miss { ready_at: 12 });
        assert_eq!(c.access(8192, 4), Outcome::Blocked { retry_at: 10 });
        // Pending hits on both in-flight lines are serviced.
        assert_eq!(c.access(8, 5), Outcome::PendingHit { ready_at: 10 });
        // After the first lands, the third miss gets the freed slot.
        assert_eq!(c.access(8192, 10), Outcome::Miss { ready_at: 20 });
        // Both early lines are resident once their refills land.
        assert_eq!(c.access(0, 12), Outcome::Hit);
        assert_eq!(c.access(4096, 12), Outcome::Hit);
    }

    #[test]
    fn flush_invalidates_but_keeps_stats() {
        let mut c = small(2);
        let _ = c.access(0, 0);
        c.flush();
        assert!(matches!(c.access(0, 100), Outcome::Miss { .. }));
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn hit_rate_formula() {
        let s = CacheStats {
            accesses: 200,
            hits: 150,
            misses: 50,
            blocked: 3,
        };
        assert!((s.hit_rate() - 75.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn degenerate_geometry_rejected() {
        let _ = DataCache::new(CacheConfig {
            size_bytes: 100,
            line_bytes: 32,
            ways: 4,
            miss_penalty: 1,
            mshrs: 1,
        });
    }
}
