//! Flat main memory holding architectural data state.

use std::fmt;

use smt_isa::program::DataImage;
use smt_isa::WORD_BYTES;

/// Error raised by a memory access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemError {
    /// Byte address past the end of memory.
    OutOfBounds {
        /// Faulting byte address.
        addr: u64,
        /// Memory size in bytes.
        size: u64,
    },
    /// Byte address not aligned to [`WORD_BYTES`].
    Unaligned {
        /// Faulting byte address.
        addr: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { addr, size } => {
                write!(f, "address {addr:#x} outside memory of {size} bytes")
            }
            MemError::Unaligned { addr } => write!(f, "unaligned address {addr:#x}"),
        }
    }
}

impl std::error::Error for MemError {}

/// Word-granular main memory.
///
/// ```
/// use smt_mem::MainMemory;
///
/// let mut mem = MainMemory::new(64);
/// mem.write(8, 42)?;
/// assert_eq!(mem.read(8)?, 42);
/// # Ok::<(), smt_mem::MemError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MainMemory {
    words: Vec<u64>,
}

impl MainMemory {
    /// Creates zeroed memory of `bytes` bytes (rounded up to a whole word).
    #[must_use]
    pub fn new(bytes: u64) -> Self {
        MainMemory {
            words: vec![0; bytes.div_ceil(WORD_BYTES) as usize],
        }
    }

    /// Initializes memory from a program's data image.
    #[must_use]
    pub fn from_image(image: &DataImage) -> Self {
        MainMemory {
            words: image.to_words(),
        }
    }

    /// Initializes memory from pre-built words — e.g. the concatenated
    /// per-thread data images of a heterogeneous program mix.
    #[must_use]
    pub fn from_words(words: Vec<u64>) -> Self {
        MainMemory { words }
    }

    /// Memory size in bytes.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.words.len() as u64 * WORD_BYTES
    }

    fn index(&self, addr: u64) -> Result<usize, MemError> {
        if !addr.is_multiple_of(WORD_BYTES) {
            return Err(MemError::Unaligned { addr });
        }
        let idx = (addr / WORD_BYTES) as usize;
        if idx >= self.words.len() {
            return Err(MemError::OutOfBounds {
                addr,
                size: self.size(),
            });
        }
        Ok(idx)
    }

    /// Reads the word at byte address `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError`] on unaligned or out-of-bounds access.
    pub fn read(&self, addr: u64) -> Result<u64, MemError> {
        Ok(self.words[self.index(addr)?])
    }

    /// Writes the word at byte address `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError`] on unaligned or out-of-bounds access.
    pub fn write(&mut self, addr: u64, value: u64) -> Result<(), MemError> {
        let idx = self.index(addr)?;
        self.words[idx] = value;
        Ok(())
    }

    /// Atomically increments the word at `addr`, returning the new value
    /// (the `POST` primitive).
    ///
    /// # Errors
    ///
    /// [`MemError`] on unaligned or out-of-bounds access.
    pub fn fetch_add(&mut self, addr: u64) -> Result<u64, MemError> {
        let idx = self.index(addr)?;
        self.words[idx] = self.words[idx].wrapping_add(1);
        Ok(self.words[idx])
    }

    /// The raw word array (index = byte address / 8).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Serializes memory as a sparse delta against `baseline` (typically
    /// the program's initial data image): total word count, then
    /// `(index, value)` pairs for every word that differs.
    ///
    /// # Panics
    ///
    /// Panics if `baseline` is not the same size as this memory.
    pub fn save_delta(&self, baseline: &[u64], w: &mut smt_checkpoint::Writer) {
        assert_eq!(
            baseline.len(),
            self.words.len(),
            "delta baseline must match memory size"
        );
        w.put_usize(self.words.len());
        let changed = self
            .words
            .iter()
            .zip(baseline)
            .filter(|(a, b)| a != b)
            .count();
        w.put_usize(changed);
        for (i, (&word, &base)) in self.words.iter().zip(baseline).enumerate() {
            if word != base {
                w.put_usize(i);
                w.put_u64(word);
            }
        }
    }

    /// Rebuilds memory from `baseline` plus a [`save_delta`](Self::save_delta).
    pub fn restore_delta(
        baseline: &[u64],
        r: &mut smt_checkpoint::Reader<'_>,
    ) -> Result<Self, smt_checkpoint::DecodeError> {
        let len = r.take_usize()?;
        if len != baseline.len() {
            return Err(smt_checkpoint::DecodeError::Malformed(format!(
                "memory delta for {len} words, baseline has {}",
                baseline.len()
            )));
        }
        let mut words = baseline.to_vec();
        let changed = r.take_usize()?;
        for _ in 0..changed {
            let i = r.take_usize()?;
            let v = r.take_u64()?;
            let slot = words.get_mut(i).ok_or_else(|| {
                smt_checkpoint::DecodeError::Malformed(format!("delta index {i} of {len} words"))
            })?;
            *slot = v;
        }
        Ok(MainMemory { words })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut m = MainMemory::new(64);
        m.write(0, 7).unwrap();
        m.write(56, 9).unwrap();
        assert_eq!(m.read(0).unwrap(), 7);
        assert_eq!(m.read(56).unwrap(), 9);
        assert_eq!(m.read(8).unwrap(), 0);
    }

    #[test]
    fn bounds_and_alignment() {
        let mut m = MainMemory::new(16);
        assert_eq!(
            m.read(16),
            Err(MemError::OutOfBounds { addr: 16, size: 16 })
        );
        assert_eq!(m.write(3, 1), Err(MemError::Unaligned { addr: 3 }));
        assert_eq!(m.size(), 16);
    }

    #[test]
    fn size_rounds_up() {
        assert_eq!(MainMemory::new(9).size(), 16);
        assert_eq!(MainMemory::new(0).size(), 0);
    }

    #[test]
    fn fetch_add_increments() {
        let mut m = MainMemory::new(8);
        assert_eq!(m.fetch_add(0).unwrap(), 1);
        assert_eq!(m.fetch_add(0).unwrap(), 2);
        assert_eq!(m.read(0).unwrap(), 2);
    }

    #[test]
    fn from_image_places_words() {
        let img = DataImage {
            size: 32,
            words: vec![(16, 5)],
        };
        let m = MainMemory::from_image(&img);
        assert_eq!(m.read(16).unwrap(), 5);
        assert_eq!(m.read(24).unwrap(), 0);
        assert_eq!(m.size(), 32);
    }
}
