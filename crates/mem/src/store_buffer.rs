//! The 8-entry store buffer between the scheduling unit and the data cache.
//!
//! In the pipeline (`smt-core`), stores hold their address and data in their
//! scheduling-unit entry and enter this buffer **at commit**, already
//! released — commit is the paper's "shifted out of the SU" release point —
//! then drain to the cache one per cycle. A full buffer therefore delays
//! commit (the restricted load/store policy of Section 5.4) but can never
//! deadlock, and every resident entry is non-speculative and in per-thread
//! program order by construction. Loads forward from the youngest matching
//! entry; the `released` flag and [`squash`](StoreBuffer::squash) exist for
//! clients that insert earlier than commit and must uphold those ordering
//! guarantees themselves.

use std::collections::VecDeque;
use std::fmt;

/// One buffered store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StoreEntry {
    /// Unique id (the scheduling-unit renaming tag of the store).
    pub id: u64,
    /// Thread that issued the store.
    pub tid: usize,
    /// Byte address.
    pub addr: u64,
    /// Data word.
    pub value: u64,
    /// Program counter of the store instruction, carried so that a fault
    /// detected at drain time can be attributed to the faulting store
    /// rather than a placeholder pc.
    pub pc: usize,
    /// Whether the store's SU entry has been shifted out (commit reached),
    /// making the entry eligible to drain to the cache.
    pub released: bool,
}

/// Error returned when inserting into a full buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StoreBufferFull;

impl fmt::Display for StoreBufferFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("store buffer is full")
    }
}

impl std::error::Error for StoreBufferFull {}

/// FIFO store buffer shared by all threads.
///
/// ```
/// use smt_mem::StoreBuffer;
///
/// let mut sb = StoreBuffer::new(8);
/// sb.insert(1, 0, 0x1000, 7, 0x40).unwrap();
/// assert_eq!(sb.forward(0x1000), Some(7));
/// sb.release(1);
/// let drained = sb.take_drainable().unwrap();
/// assert_eq!((drained.addr, drained.value), (0x1000, 7));
/// assert!(sb.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct StoreBuffer {
    entries: VecDeque<StoreEntry>,
    capacity: usize,
}

impl StoreBuffer {
    /// Creates an empty buffer of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "store buffer capacity must be positive");
        StoreBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a new store would be rejected.
    /// (Capacity check happens at commit time in the pipeline.)
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Inserts a store at execute time.
    ///
    /// # Errors
    ///
    /// [`StoreBufferFull`] when at capacity — the store unit must retry.
    pub fn insert(
        &mut self,
        id: u64,
        tid: usize,
        addr: u64,
        value: u64,
        pc: usize,
    ) -> Result<(), StoreBufferFull> {
        if self.is_full() {
            return Err(StoreBufferFull);
        }
        self.entries.push_back(StoreEntry {
            id,
            tid,
            addr,
            value,
            pc,
            released: false,
        });
        Ok(())
    }

    /// Marks the store with renaming tag `id` as shifted out of the
    /// scheduling unit; returns whether the id was found.
    pub fn release(&mut self, id: u64) -> bool {
        for e in &mut self.entries {
            if e.id == id {
                e.released = true;
                return true;
            }
        }
        false
    }

    /// Forwards the value of the *youngest* store to `addr`, if any.
    #[must_use]
    pub fn forward(&self, addr: u64) -> Option<u64> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.addr == addr)
            .map(|e| e.value)
    }

    fn drainable_pos(&self) -> Option<usize> {
        self.entries.iter().enumerate().position(|(i, e)| {
            e.released
                && !self
                    .entries
                    .iter()
                    .take(i)
                    .any(|older| older.addr == e.addr)
        })
    }

    /// Pops the oldest released entry whose address is not shadowed by an
    /// older resident store (preserving per-address drain order). Call once
    /// per cycle from the memory stage.
    pub fn take_drainable(&mut self) -> Option<StoreEntry> {
        let pos = self.drainable_pos()?;
        self.entries.remove(pos)
    }

    /// Returns (without removing) the entry [`take_drainable`] would pop —
    /// used when the drain must first win a cache port and may be rejected.
    ///
    /// [`take_drainable`]: Self::take_drainable
    #[must_use]
    pub fn peek_drainable(&self) -> Option<StoreEntry> {
        self.drainable_pos().map(|i| self.entries[i])
    }

    /// Removes the entry with the given id; returns whether it existed.
    pub fn remove_id(&mut self, id: u64) -> bool {
        match self.entries.iter().position(|e| e.id == id) {
            Some(i) => {
                self.entries.remove(i);
                true
            }
            None => false,
        }
    }

    /// Removes speculative entries invalidated by a squash. `doomed`
    /// receives each entry id; entries for which it returns `true` are
    /// dropped. Returns how many were removed.
    pub fn squash<F: FnMut(u64) -> bool>(&mut self, mut doomed: F) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| !doomed(e.id));
        before - self.entries.len()
    }

    /// Whether any resident entry belongs to thread `tid` (used to gate the
    /// sync primitives: a `POST`/`WAIT` executes only after the thread's own
    /// stores have drained, giving release/acquire semantics).
    #[must_use]
    pub fn has_thread_entries(&self, tid: usize) -> bool {
        self.entries.iter().any(|e| e.tid == tid)
    }

    /// Iterates over resident entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &StoreEntry> {
        self.entries.iter()
    }

    /// Serializes resident entries, oldest first. Capacity is not
    /// serialized; it comes from the config at restore time.
    pub fn save(&self, w: &mut smt_checkpoint::Writer) {
        w.put_usize(self.entries.len());
        for e in &self.entries {
            w.put_u64(e.id);
            w.put_usize(e.tid);
            w.put_u64(e.addr);
            w.put_u64(e.value);
            w.put_usize(e.pc);
            w.put_bool(e.released);
        }
    }

    /// Rebuilds a buffer of `capacity` from [`save`](Self::save)d state.
    pub fn restore(
        capacity: usize,
        r: &mut smt_checkpoint::Reader<'_>,
    ) -> Result<Self, smt_checkpoint::DecodeError> {
        let mut sb = StoreBuffer::new(capacity);
        let n = r.take_usize()?;
        if n > capacity {
            return Err(smt_checkpoint::DecodeError::Malformed(format!(
                "store buffer: {n} entries for capacity {capacity}"
            )));
        }
        for _ in 0..n {
            sb.entries.push_back(StoreEntry {
                id: r.take_u64()?,
                tid: r.take_usize()?,
                addr: r.take_u64()?,
                value: r.take_u64()?,
                pc: r.take_usize()?,
                released: r.take_bool()?,
            });
        }
        Ok(sb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_to_capacity() {
        let mut sb = StoreBuffer::new(2);
        sb.insert(1, 0, 0, 1, 0).unwrap();
        sb.insert(2, 0, 8, 2, 0).unwrap();
        assert!(sb.is_full());
        assert_eq!(sb.insert(3, 0, 16, 3, 0), Err(StoreBufferFull));
        assert_eq!(sb.len(), 2);
    }

    #[test]
    fn forwards_youngest_match() {
        let mut sb = StoreBuffer::new(4);
        sb.insert(1, 0, 0x10, 1, 0).unwrap();
        sb.insert(2, 1, 0x10, 2, 0).unwrap();
        sb.insert(3, 0, 0x20, 3, 0).unwrap();
        assert_eq!(sb.forward(0x10), Some(2));
        assert_eq!(sb.forward(0x20), Some(3));
        assert_eq!(sb.forward(0x30), None);
    }

    #[test]
    fn drains_only_released_entries_in_order() {
        let mut sb = StoreBuffer::new(4);
        sb.insert(1, 0, 0x10, 1, 0).unwrap();
        sb.insert(2, 0, 0x20, 2, 0).unwrap();
        assert!(sb.take_drainable().is_none());
        assert!(sb.release(2));
        let e = sb.take_drainable().unwrap();
        assert_eq!(e.id, 2);
        assert!(sb.take_drainable().is_none());
        assert!(sb.release(1));
        assert_eq!(sb.take_drainable().unwrap().id, 1);
        assert!(sb.is_empty());
    }

    #[test]
    fn same_address_drains_strictly_in_order() {
        let mut sb = StoreBuffer::new(4);
        sb.insert(1, 0, 0x10, 1, 0).unwrap();
        sb.insert(2, 1, 0x10, 2, 0).unwrap();
        sb.release(2); // younger store released first (different thread)
                       // Must not drain entry 2 past entry 1 (same address).
        assert!(sb.take_drainable().is_none());
        sb.release(1);
        assert_eq!(sb.take_drainable().unwrap().id, 1);
        assert_eq!(sb.take_drainable().unwrap().id, 2);
    }

    #[test]
    fn release_of_unknown_id_reports_false() {
        let mut sb = StoreBuffer::new(2);
        assert!(!sb.release(9));
    }

    #[test]
    fn peek_matches_take() {
        let mut sb = StoreBuffer::new(4);
        sb.insert(1, 0, 0x10, 1, 0).unwrap();
        sb.insert(2, 0, 0x20, 2, 0).unwrap();
        sb.release(2);
        let peeked = sb.peek_drainable().unwrap();
        assert_eq!(sb.len(), 2, "peek does not remove");
        assert_eq!(sb.take_drainable().unwrap(), peeked);
    }

    #[test]
    fn remove_id_drops_specific_entry() {
        let mut sb = StoreBuffer::new(4);
        sb.insert(1, 0, 0x10, 1, 0).unwrap();
        sb.insert(2, 0, 0x20, 2, 0).unwrap();
        assert!(sb.remove_id(1));
        assert!(!sb.remove_id(1));
        assert_eq!(sb.len(), 1);
        assert_eq!(sb.forward(0x10), None);
    }

    #[test]
    fn squash_removes_doomed_entries() {
        let mut sb = StoreBuffer::new(4);
        sb.insert(1, 0, 0, 1, 0).unwrap();
        sb.insert(2, 0, 8, 2, 0).unwrap();
        sb.insert(3, 1, 16, 3, 0).unwrap();
        let removed = sb.squash(|id| id >= 2 && id != 3);
        assert_eq!(removed, 1);
        assert_eq!(sb.len(), 2);
        assert_eq!(sb.forward(8), None);
    }

    #[test]
    fn thread_occupancy_query() {
        let mut sb = StoreBuffer::new(4);
        sb.insert(1, 0, 0, 1, 0).unwrap();
        assert!(sb.has_thread_entries(0));
        assert!(!sb.has_thread_entries(1));
        sb.release(1);
        let _ = sb.take_drainable();
        assert!(!sb.has_thread_entries(0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = StoreBuffer::new(0);
    }
}
