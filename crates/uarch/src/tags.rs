//! Globally unique renaming tags.
//!
//! The decoder "assigns a unique tag to each and every valid instruction
//! decoded, irrespective of the thread … and does not reuse one until its
//! previous occurrence is no longer in use." Uniqueness across threads is
//! what lets the scheduling unit's wakeup logic ignore thread IDs entirely
//! (Section 3.3) — the key hardware-economy argument of the paper.
//!
//! The allocator hands out identifiers from a bounded pool (hardware has
//! finitely many tag encodings) and checks the no-reuse-while-live invariant
//! in debug builds.

use std::fmt;

/// A renaming tag. Values are opaque; only equality matters to the pipeline.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Tag(u64);

impl Tag {
    /// The raw identifier (stable for the lifetime of the allocation).
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs a tag from its raw identifier. Only meaningful for
    /// values previously observed via [`raw`](Self::raw) — the intended
    /// use is checkpoint restore, which re-materializes the exact tags
    /// resident in a serialized scheduling unit.
    #[must_use]
    pub fn from_raw(raw: u64) -> Self {
        Tag(raw)
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Bounded allocator of unique tags.
///
/// ```
/// use smt_uarch::TagAllocator;
///
/// let mut tags = TagAllocator::new(2);
/// let a = tags.alloc().unwrap();
/// let b = tags.alloc().unwrap();
/// assert_ne!(a, b);
/// assert!(tags.alloc().is_none(), "pool exhausted");
/// tags.free(a);
/// assert!(tags.alloc().is_some());
/// ```
#[derive(Clone, Debug)]
pub struct TagAllocator {
    capacity: usize,
    live: usize,
    next: u64,
    #[cfg(debug_assertions)]
    outstanding: std::collections::HashSet<u64>,
}

impl TagAllocator {
    /// Creates an allocator with `capacity` simultaneously live tags
    /// (typically the scheduling-unit depth — one tag per resident entry).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "tag capacity must be positive");
        TagAllocator {
            capacity,
            live: 0,
            next: 0,
            #[cfg(debug_assertions)]
            outstanding: std::collections::HashSet::new(),
        }
    }

    /// Allocates a tag, or `None` if `capacity` tags are already live.
    pub fn alloc(&mut self) -> Option<Tag> {
        if self.live == self.capacity {
            return None;
        }
        let tag = Tag(self.next);
        self.next = self.next.wrapping_add(1);
        self.live += 1;
        #[cfg(debug_assertions)]
        debug_assert!(
            self.outstanding.insert(tag.0),
            "tag {tag} reused while live"
        );
        Some(tag)
    }

    /// Returns `tag` to the pool.
    ///
    /// # Panics
    ///
    /// In debug builds, panics on double-free or foreign tags.
    pub fn free(&mut self, tag: Tag) {
        #[cfg(debug_assertions)]
        debug_assert!(
            self.outstanding.remove(&tag.0),
            "freeing unallocated tag {tag}"
        );
        #[cfg(not(debug_assertions))]
        let _ = tag;
        self.live -= 1;
    }

    /// Number of live tags.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Maximum simultaneously live tags.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Serializes allocator state (live count and next identifier).
    ///
    /// The debug-only outstanding set is *not* serialized: on restore it
    /// is rebuilt from the tags actually resident in the restored
    /// scheduling unit, which is the ground truth it mirrors.
    pub fn save(&self, w: &mut smt_checkpoint::Writer) {
        w.put_usize(self.live);
        w.put_u64(self.next);
    }

    /// Rebuilds an allocator from [`save`](Self::save)d state.
    ///
    /// `resident` must be the raw tags of every entry still live in the
    /// restored machine (scheduling-unit entries; store-buffer ids are
    /// already-freed tags and must not be included). Its length must
    /// equal the serialized live count.
    pub fn restore(
        capacity: usize,
        r: &mut smt_checkpoint::Reader<'_>,
        resident: &[u64],
    ) -> Result<Self, smt_checkpoint::DecodeError> {
        let live = r.take_usize()?;
        let next = r.take_u64()?;
        if live > capacity || resident.len() != live {
            return Err(smt_checkpoint::DecodeError::Malformed(format!(
                "tag allocator: {live} live of {capacity} capacity, {} resident",
                resident.len()
            )));
        }
        #[cfg(not(debug_assertions))]
        let _ = resident;
        Ok(TagAllocator {
            capacity,
            live,
            next,
            #[cfg(debug_assertions)]
            outstanding: resident.iter().copied().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_unique_across_free_boundaries() {
        let mut t = TagAllocator::new(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let tag = t.alloc().unwrap();
            assert!(seen.insert(tag), "tag {tag} repeated");
            t.free(tag);
        }
    }

    #[test]
    fn capacity_bounds_live_tags() {
        let mut t = TagAllocator::new(3);
        let a = t.alloc().unwrap();
        let _b = t.alloc().unwrap();
        let _c = t.alloc().unwrap();
        assert_eq!(t.live(), 3);
        assert!(t.alloc().is_none());
        t.free(a);
        assert_eq!(t.live(), 2);
        assert!(t.alloc().is_some());
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    #[cfg(debug_assertions)]
    fn double_free_caught_in_debug() {
        let mut t = TagAllocator::new(2);
        let a = t.alloc().unwrap();
        t.free(a);
        t.free(a);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = TagAllocator::new(0);
    }
}
