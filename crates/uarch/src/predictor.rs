//! The branch-predictor families selectable by `SimConfig`.
//!
//! The paper's predictor is [`BranchPredictor`]: one 2-bit BTB serving
//! every thread — the paper exploits homogeneous multitasking (all threads
//! run the same text) so a shared BTB even *benefits* from cross-thread
//! training: "Branch instructions of all threads update the same history
//! after execution. While this may seem too simplistic, it yielded
//! prediction accuracies upwards of 85% for all applications."
//!
//! Each direct-mapped BTB entry holds a PC tag, the branch target, and a
//! 2-bit saturating counter (`0,1` → predict not-taken; `2,3` → predict
//! taken). A PC that misses in the BTB predicts not-taken (fall through).
//! Updates happen at result commit, as in the paper (Section 5.4 notes the
//! delayed-update artifact this causes for very deep scheduling units).
//!
//! Two non-paper families let the front-end sweep quantify how much the
//! shared-BTB assumption costs (cf. Durbhakula, arXiv 1909.08999):
//!
//! * [`GsharePredictor`] — a shared untagged PHT of 2-bit counters indexed
//!   by `pc XOR per-thread global history`, with a shared tagged BTB for
//!   targets. History registers are per thread so one thread's outcomes
//!   never pollute another's *history* (the tables stay shared).
//! * [`PartitionedPredictor`] — the BTB budget statically partitioned into
//!   per-thread private 2-bit BTBs; no cross-thread training or
//!   interference at all.
//!
//! All families update at commit time and are dispatched through the
//! [`Predictor`] enum — enum dispatch, not `dyn Trait`, so the
//! default-config hot path stays monomorphic and branch-predictable.

/// Outcome of a prediction lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Prediction {
    /// Whether the control transfer is predicted taken.
    pub taken: bool,
    /// Predicted target (valid only when `taken`).
    pub target: usize,
}

impl Prediction {
    /// The fall-through prediction.
    #[must_use]
    pub fn not_taken() -> Self {
        Prediction {
            taken: false,
            target: 0,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    pc: usize,
    target: usize,
    counter: u8,
}

/// Counters accumulated by the predictor itself (lookup traffic); *accuracy*
/// is accounted by the pipeline, which knows actual outcomes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PredictorStats {
    /// Prediction lookups performed.
    pub lookups: u64,
    /// Lookups that found a matching BTB entry.
    pub btb_hits: u64,
    /// Commit-time updates applied.
    pub updates: u64,
}

/// A direct-mapped BTB of 2-bit saturating counters.
///
/// ```
/// use smt_uarch::BranchPredictor;
///
/// let mut p = BranchPredictor::new(16);
/// assert!(!p.predict(5).taken);      // cold: fall through
/// p.update(5, true, 42);
/// p.update(5, true, 42);
/// let pred = p.predict(5);
/// assert!(pred.taken);
/// assert_eq!(pred.target, 42);
/// ```
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    entries: Vec<Option<Entry>>,
    mask: usize,
    stats: PredictorStats,
}

/// Default BTB entry count (reconstructed parameter; see DESIGN.md).
pub const DEFAULT_BTB_ENTRIES: usize = 512;

impl Default for BranchPredictor {
    fn default() -> Self {
        BranchPredictor::new(DEFAULT_BTB_ENTRIES)
    }
}

impl BranchPredictor {
    /// Creates a predictor with `entries` BTB slots.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a nonzero power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "BTB size must be a power of two"
        );
        BranchPredictor {
            entries: vec![None; entries],
            mask: entries - 1,
            stats: PredictorStats::default(),
        }
    }

    /// Looks up the prediction for the control-transfer at `pc`.
    pub fn predict(&mut self, pc: usize) -> Prediction {
        self.stats.lookups += 1;
        match self.entries[pc & self.mask] {
            Some(e) if e.pc == pc => {
                self.stats.btb_hits += 1;
                Prediction {
                    taken: e.counter >= 2,
                    target: e.target,
                }
            }
            _ => Prediction::not_taken(),
        }
    }

    /// Applies the resolved outcome of the control transfer at `pc`.
    ///
    /// Taken updates (including unconditional jumps) install/refresh the BTB
    /// entry; a not-taken update for a PC owned by a *different* branch
    /// leaves the entry alone (no displacement on aliasing misses).
    pub fn update(&mut self, pc: usize, taken: bool, target: usize) {
        self.stats.updates += 1;
        let slot = &mut self.entries[pc & self.mask];
        match slot {
            Some(e) if e.pc == pc => {
                if taken {
                    e.counter = (e.counter + 1).min(3);
                    e.target = target;
                } else {
                    e.counter = e.counter.saturating_sub(1);
                }
            }
            _ => {
                if taken {
                    // Install weakly taken, as classic 2-bit BTBs do.
                    *slot = Some(Entry {
                        pc,
                        target,
                        counter: 2,
                    });
                }
            }
        }
    }

    /// Lookup/update traffic counters.
    #[must_use]
    pub fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    /// Serializes BTB contents and traffic counters.
    pub fn save(&self, w: &mut smt_checkpoint::Writer) {
        w.put_usize(self.entries.len());
        for slot in &self.entries {
            match slot {
                None => w.put_u8(0),
                Some(e) => {
                    w.put_u8(1);
                    w.put_usize(e.pc);
                    w.put_usize(e.target);
                    w.put_u8(e.counter);
                }
            }
        }
        w.put_u64(self.stats.lookups);
        w.put_u64(self.stats.btb_hits);
        w.put_u64(self.stats.updates);
    }

    /// Rebuilds a predictor from [`save`](Self::save)d state.
    pub fn restore(
        r: &mut smt_checkpoint::Reader<'_>,
    ) -> Result<Self, smt_checkpoint::DecodeError> {
        let len = r.take_usize()?;
        if !len.is_power_of_two() || len == 0 {
            return Err(smt_checkpoint::DecodeError::Malformed(format!(
                "BTB size {len} is not a power of two"
            )));
        }
        let mut p = BranchPredictor::new(len);
        for slot in &mut p.entries {
            *slot = match r.take_u8()? {
                0 => None,
                1 => Some(Entry {
                    pc: r.take_usize()?,
                    target: r.take_usize()?,
                    counter: take_counter(r)?,
                }),
                v => {
                    return Err(smt_checkpoint::DecodeError::Malformed(format!(
                        "BTB slot discriminant {v}"
                    )))
                }
            };
        }
        p.stats.lookups = r.take_u64()?;
        p.stats.btb_hits = r.take_u64()?;
        p.stats.updates = r.take_u64()?;
        Ok(p)
    }

    /// Number of BTB slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the BTB has zero slots (never true — construction forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Decodes one 2-bit saturating counter, rejecting values that escape the
/// saturation range (a corrupted byte would otherwise overflow
/// `counter + 1` on the next taken update in debug builds).
fn take_counter(r: &mut smt_checkpoint::Reader<'_>) -> Result<u8, smt_checkpoint::DecodeError> {
    let c = r.take_u8()?;
    if c > 3 {
        return Err(smt_checkpoint::DecodeError::Malformed(format!(
            "2-bit counter out of range: {c}"
        )));
    }
    Ok(c)
}

/// Which predictor family the machine is built with.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum PredictorKind {
    /// The paper's single 2-bit BTB shared by every thread.
    #[default]
    SharedBtb,
    /// Shared PHT indexed by `pc ^ per-thread global history`, shared
    /// tagged BTB for targets.
    Gshare,
    /// BTB budget statically partitioned into per-thread private tables.
    PartitionedBtb,
}

impl PredictorKind {
    /// Every family, in declaration order (sweep-axis iteration).
    pub const ALL: [PredictorKind; 3] = [
        PredictorKind::SharedBtb,
        PredictorKind::Gshare,
        PredictorKind::PartitionedBtb,
    ];

    /// Short stable identifier for cell ids and exports.
    #[must_use]
    pub fn abbrev(self) -> &'static str {
        match self {
            PredictorKind::SharedBtb => "btb",
            PredictorKind::Gshare => "gsh",
            PredictorKind::PartitionedBtb => "pbtb",
        }
    }
}

impl std::fmt::Display for PredictorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PredictorKind::SharedBtb => "Shared BTB",
            PredictorKind::Gshare => "Gshare",
            PredictorKind::PartitionedBtb => "Partitioned BTB",
        })
    }
}

/// Gshare: a shared untagged pattern-history table of 2-bit counters
/// indexed by `pc XOR thread-global-history`, plus a shared tagged BTB
/// (same geometry as the PHT) providing targets.
///
/// A branch predicts taken only when the PHT counter says taken *and* the
/// BTB has a matching target — without a target there is nothing to fetch,
/// so the machine falls through exactly like a cold shared-BTB lookup.
///
/// History registers advance at **commit time**, consistent with the
/// delayed-update discipline of the whole predictor layer: the index used
/// by a fetch-time lookup reflects the globally committed history, not
/// in-flight speculation. This makes the predictor state a pure function of
/// the commit stream, which is what lets it checkpoint bit-exactly.
#[derive(Clone, Debug)]
pub struct GsharePredictor {
    /// 2-bit counters, untagged (aliasing is constructive or destructive).
    pht: Vec<u8>,
    /// Tagged direct-mapped target store: `(pc, target)`.
    btb: Vec<Option<(usize, usize)>>,
    mask: usize,
    /// Per-thread global history, `log2(entries)` bits wide.
    history: Vec<u64>,
    hist_mask: u64,
    stats: PredictorStats,
}

impl GsharePredictor {
    /// Creates a gshare predictor with `entries` PHT/BTB slots serving
    /// `n_threads` history registers.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a nonzero power of two and
    /// `n_threads > 0`.
    #[must_use]
    pub fn new(entries: usize, n_threads: usize) -> Self {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "PHT size must be a power of two"
        );
        assert!(n_threads > 0, "need at least one thread");
        GsharePredictor {
            pht: vec![0; entries],
            btb: vec![None; entries],
            mask: entries - 1,
            history: vec![0; n_threads],
            hist_mask: (entries - 1) as u64,
            stats: PredictorStats::default(),
        }
    }

    fn index(&self, tid: usize, pc: usize) -> usize {
        (pc ^ self.history[tid] as usize) & self.mask
    }

    /// Looks up the prediction for thread `tid`'s control transfer at `pc`.
    pub fn predict(&mut self, tid: usize, pc: usize) -> Prediction {
        self.stats.lookups += 1;
        let dir_taken = self.pht[self.index(tid, pc)] >= 2;
        match self.btb[pc & self.mask] {
            Some((tag, target)) if tag == pc => {
                self.stats.btb_hits += 1;
                Prediction {
                    taken: dir_taken,
                    target,
                }
            }
            _ => Prediction::not_taken(),
        }
    }

    /// Applies the resolved outcome of thread `tid`'s control transfer.
    pub fn update(&mut self, tid: usize, pc: usize, taken: bool, target: usize) {
        self.stats.updates += 1;
        let idx = self.index(tid, pc);
        let c = &mut self.pht[idx];
        if taken {
            *c = (*c + 1).min(3);
            self.btb[pc & self.mask] = Some((pc, target));
        } else {
            *c = c.saturating_sub(1);
        }
        self.history[tid] = ((self.history[tid] << 1) | u64::from(taken)) & self.hist_mask;
    }

    /// Lookup/update traffic counters.
    #[must_use]
    pub fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    /// Serializes PHT, BTB, histories, and traffic counters.
    pub fn save(&self, w: &mut smt_checkpoint::Writer) {
        w.put_usize(self.pht.len());
        for &c in &self.pht {
            w.put_u8(c);
        }
        for slot in &self.btb {
            match slot {
                None => w.put_u8(0),
                Some((pc, target)) => {
                    w.put_u8(1);
                    w.put_usize(*pc);
                    w.put_usize(*target);
                }
            }
        }
        w.put_usize(self.history.len());
        for &h in &self.history {
            w.put_u64(h);
        }
        w.put_u64(self.stats.lookups);
        w.put_u64(self.stats.btb_hits);
        w.put_u64(self.stats.updates);
    }

    /// Rebuilds a predictor from [`save`](Self::save)d state.
    pub fn restore(
        r: &mut smt_checkpoint::Reader<'_>,
    ) -> Result<Self, smt_checkpoint::DecodeError> {
        let len = r.take_usize()?;
        if !len.is_power_of_two() || len == 0 {
            return Err(smt_checkpoint::DecodeError::Malformed(format!(
                "PHT size {len} is not a power of two"
            )));
        }
        let mut p = GsharePredictor::new(len, 1);
        for c in &mut p.pht {
            *c = take_counter(r)?;
        }
        for slot in &mut p.btb {
            *slot = match r.take_u8()? {
                0 => None,
                1 => Some((r.take_usize()?, r.take_usize()?)),
                v => {
                    return Err(smt_checkpoint::DecodeError::Malformed(format!(
                        "BTB slot discriminant {v}"
                    )))
                }
            };
        }
        let threads = r.take_usize()?;
        if threads == 0 {
            return Err(smt_checkpoint::DecodeError::Malformed(
                "gshare snapshot with zero history registers".into(),
            ));
        }
        p.history = Vec::with_capacity(threads);
        for _ in 0..threads {
            let h = r.take_u64()?;
            if h > p.hist_mask {
                return Err(smt_checkpoint::DecodeError::Malformed(format!(
                    "history register {h:#x} wider than the PHT index"
                )));
            }
            p.history.push(h);
        }
        p.stats.lookups = r.take_u64()?;
        p.stats.btb_hits = r.take_u64()?;
        p.stats.updates = r.take_u64()?;
        Ok(p)
    }

    /// Number of PHT (and BTB) slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pht.len()
    }

    /// Whether the PHT has zero slots (never true — construction forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pht.is_empty()
    }

    /// Number of per-thread history registers.
    #[must_use]
    pub fn n_threads(&self) -> usize {
        self.history.len()
    }
}

/// The per-thread-partitioned BTB: the entry budget split into private
/// 2-bit BTBs, one per thread, each `prev_pow2(entries / n_threads)` slots
/// (so a 512-entry budget across 6 threads yields 64-entry partitions —
/// the budget is never exceeded). No cross-thread training, no
/// cross-thread interference.
#[derive(Clone, Debug)]
pub struct PartitionedPredictor {
    tables: Vec<BranchPredictor>,
}

impl PartitionedPredictor {
    /// Creates per-thread partitions out of a total budget of `entries`.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a nonzero power of two and
    /// `n_threads > 0`.
    #[must_use]
    pub fn new(entries: usize, n_threads: usize) -> Self {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "BTB budget must be a power of two"
        );
        assert!(n_threads > 0, "need at least one thread");
        let per = Self::partition_size(entries, n_threads);
        PartitionedPredictor {
            tables: (0..n_threads).map(|_| BranchPredictor::new(per)).collect(),
        }
    }

    /// Slots each thread's private table gets: the largest power of two
    /// that fits `n_threads` times into `entries`, floored at 1.
    #[must_use]
    pub fn partition_size(entries: usize, n_threads: usize) -> usize {
        let per = (entries / n_threads).max(1);
        // Largest power of two <= per.
        1 << (usize::BITS - 1 - per.leading_zeros())
    }

    /// Looks up the prediction in thread `tid`'s private table.
    pub fn predict(&mut self, tid: usize, pc: usize) -> Prediction {
        self.tables[tid].predict(pc)
    }

    /// Applies the resolved outcome in thread `tid`'s private table.
    pub fn update(&mut self, tid: usize, pc: usize, taken: bool, target: usize) {
        self.tables[tid].update(pc, taken, target);
    }

    /// Aggregate traffic counters over every partition.
    #[must_use]
    pub fn stats(&self) -> PredictorStats {
        let mut total = PredictorStats::default();
        for t in &self.tables {
            total.lookups += t.stats().lookups;
            total.btb_hits += t.stats().btb_hits;
            total.updates += t.stats().updates;
        }
        total
    }

    /// Serializes every partition.
    pub fn save(&self, w: &mut smt_checkpoint::Writer) {
        w.put_usize(self.tables.len());
        for t in &self.tables {
            t.save(w);
        }
    }

    /// Rebuilds the partitions from [`save`](Self::save)d state.
    pub fn restore(
        r: &mut smt_checkpoint::Reader<'_>,
    ) -> Result<Self, smt_checkpoint::DecodeError> {
        let n = r.take_usize()?;
        if n == 0 {
            return Err(smt_checkpoint::DecodeError::Malformed(
                "partitioned predictor with zero partitions".into(),
            ));
        }
        let mut tables = Vec::with_capacity(n);
        for _ in 0..n {
            tables.push(BranchPredictor::restore(r)?);
        }
        Ok(PartitionedPredictor { tables })
    }

    /// Number of per-thread partitions.
    #[must_use]
    pub fn n_threads(&self) -> usize {
        self.tables.len()
    }

    /// Slots in each partition.
    #[must_use]
    pub fn slots_per_thread(&self) -> usize {
        self.tables[0].len()
    }
}

/// The family dispatcher the pipeline holds: one concrete variant per
/// [`PredictorKind`], enum-dispatched so the default configuration's hot
/// path is a single statically predictable match.
#[derive(Clone, Debug)]
pub enum Predictor {
    /// The paper's shared 2-bit BTB.
    Shared(BranchPredictor),
    /// Gshare with per-thread history.
    Gshare(GsharePredictor),
    /// Per-thread-partitioned BTBs.
    Partitioned(PartitionedPredictor),
}

impl Predictor {
    /// Builds the family `kind` with a total budget of `entries` slots for
    /// a machine with `n_threads` hardware threads.
    #[must_use]
    pub fn build(kind: PredictorKind, entries: usize, n_threads: usize) -> Self {
        match kind {
            PredictorKind::SharedBtb => Predictor::Shared(BranchPredictor::new(entries)),
            PredictorKind::Gshare => Predictor::Gshare(GsharePredictor::new(entries, n_threads)),
            PredictorKind::PartitionedBtb => {
                Predictor::Partitioned(PartitionedPredictor::new(entries, n_threads))
            }
        }
    }

    /// Which family this is.
    #[must_use]
    pub fn kind(&self) -> PredictorKind {
        match self {
            Predictor::Shared(_) => PredictorKind::SharedBtb,
            Predictor::Gshare(_) => PredictorKind::Gshare,
            Predictor::Partitioned(_) => PredictorKind::PartitionedBtb,
        }
    }

    /// Looks up the prediction for thread `tid`'s control transfer at `pc`.
    #[inline]
    pub fn predict(&mut self, tid: usize, pc: usize) -> Prediction {
        match self {
            Predictor::Shared(p) => p.predict(pc),
            Predictor::Gshare(p) => p.predict(tid, pc),
            Predictor::Partitioned(p) => p.predict(tid, pc),
        }
    }

    /// Applies the resolved outcome of thread `tid`'s control transfer.
    #[inline]
    pub fn update(&mut self, tid: usize, pc: usize, taken: bool, target: usize) {
        match self {
            Predictor::Shared(p) => p.update(pc, taken, target),
            Predictor::Gshare(p) => p.update(tid, pc, taken, target),
            Predictor::Partitioned(p) => p.update(tid, pc, taken, target),
        }
    }

    /// Aggregate lookup/update traffic counters.
    #[must_use]
    pub fn stats(&self) -> PredictorStats {
        match self {
            Predictor::Shared(p) => *p.stats(),
            Predictor::Gshare(p) => *p.stats(),
            Predictor::Partitioned(p) => p.stats(),
        }
    }

    /// Serializes a family tag followed by the family payload.
    pub fn save(&self, w: &mut smt_checkpoint::Writer) {
        match self {
            Predictor::Shared(p) => {
                w.put_u8(0);
                p.save(w);
            }
            Predictor::Gshare(p) => {
                w.put_u8(1);
                p.save(w);
            }
            Predictor::Partitioned(p) => {
                w.put_u8(2);
                p.save(w);
            }
        }
    }

    /// Rebuilds from [`save`](Self::save)d state, validating that the
    /// snapshot's family matches `kind` and that thread-indexed state
    /// matches `n_threads`.
    pub fn restore(
        kind: PredictorKind,
        n_threads: usize,
        r: &mut smt_checkpoint::Reader<'_>,
    ) -> Result<Self, smt_checkpoint::DecodeError> {
        let tag = r.take_u8()?;
        let expect = match kind {
            PredictorKind::SharedBtb => 0,
            PredictorKind::Gshare => 1,
            PredictorKind::PartitionedBtb => 2,
        };
        if tag != expect {
            return Err(smt_checkpoint::DecodeError::Malformed(format!(
                "predictor family tag {tag} does not match configured {kind}"
            )));
        }
        let p = match kind {
            PredictorKind::SharedBtb => Predictor::Shared(BranchPredictor::restore(r)?),
            PredictorKind::Gshare => Predictor::Gshare(GsharePredictor::restore(r)?),
            PredictorKind::PartitionedBtb => {
                Predictor::Partitioned(PartitionedPredictor::restore(r)?)
            }
        };
        let snapshot_threads = match &p {
            Predictor::Shared(_) => n_threads,
            Predictor::Gshare(g) => g.n_threads(),
            Predictor::Partitioned(t) => t.n_threads(),
        };
        if snapshot_threads != n_threads {
            return Err(smt_checkpoint::DecodeError::Malformed(format!(
                "predictor snapshot sized for {snapshot_threads} threads, machine has {n_threads}"
            )));
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_lookup_predicts_not_taken() {
        let mut p = BranchPredictor::new(8);
        assert_eq!(p.predict(3), Prediction::not_taken());
        assert_eq!(p.stats().lookups, 1);
        assert_eq!(p.stats().btb_hits, 0);
    }

    #[test]
    fn two_bit_hysteresis() {
        let mut p = BranchPredictor::new(8);
        p.update(1, true, 9); // install at 2 (weakly taken)
        assert!(p.predict(1).taken);
        p.update(1, true, 9); // 3 (strongly taken)
        p.update(1, false, 0); // 2 — still predicts taken
        assert!(p.predict(1).taken);
        p.update(1, false, 0); // 1 — now not taken
        assert!(!p.predict(1).taken);
        p.update(1, true, 9); // 2 — one taken flips it back
        assert!(p.predict(1).taken);
    }

    #[test]
    fn not_taken_history_never_installs() {
        let mut p = BranchPredictor::new(8);
        p.update(4, false, 0);
        p.update(4, false, 0);
        assert_eq!(p.stats().updates, 2);
        assert!(!p.predict(4).taken);
        assert_eq!(p.stats().btb_hits, 0);
    }

    #[test]
    fn aliasing_branches_share_a_slot() {
        let mut p = BranchPredictor::new(8);
        p.update(1, true, 100);
        // pc 9 aliases to the same slot; taken update displaces.
        p.update(9, true, 200);
        let pred = p.predict(9);
        assert!(pred.taken);
        assert_eq!(pred.target, 200);
        // pc 1 now misses (tag mismatch) → not taken.
        assert!(!p.predict(1).taken);
        // A not-taken update from the displaced branch must not clobber.
        p.update(1, false, 0);
        assert!(p.predict(9).taken);
    }

    #[test]
    fn target_refreshes_on_taken_update() {
        let mut p = BranchPredictor::new(8);
        p.update(2, true, 50);
        p.update(2, true, 60);
        assert_eq!(p.predict(2).target, 60);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = BranchPredictor::new(12);
    }

    /// Scalar reference model of a direct-mapped 2-bit BTB, written
    /// independently of the implementation (plain map of slot → entry).
    struct RefModel {
        slots: std::collections::HashMap<usize, (usize, usize, u8)>,
        size: usize,
    }

    impl RefModel {
        fn new(size: usize) -> Self {
            RefModel {
                slots: std::collections::HashMap::new(),
                size,
            }
        }

        /// (taken, target, btb_hit)
        fn predict(&self, pc: usize) -> (bool, usize, bool) {
            match self.slots.get(&(pc % self.size)) {
                Some(&(tag, target, counter)) if tag == pc => (counter >= 2, target, true),
                _ => (false, 0, false),
            }
        }

        fn update(&mut self, pc: usize, taken: bool, target: usize) {
            let slot = pc % self.size;
            match self.slots.get_mut(&slot) {
                Some(e) if e.0 == pc => {
                    if taken {
                        e.2 = if e.2 >= 3 { 3 } else { e.2 + 1 };
                        e.1 = target;
                    } else if e.2 > 0 {
                        e.2 -= 1;
                    }
                }
                _ if taken => {
                    self.slots.insert(slot, (pc, target, 2));
                }
                _ => {}
            }
        }
    }

    /// Property: over random predict/update streams (aliasing pcs, biased
    /// and anti-correlated outcomes), every 2-bit counter stays inside its
    /// saturation bounds and the predictor's predictions, hit/accuracy
    /// accounting, and traffic counters all equal the scalar reference
    /// model's recomputation.
    #[test]
    fn random_streams_match_scalar_reference_model() {
        smt_testkit::cases(40, |rng| {
            let size = 1usize << rng.range_usize(2, 6); // 4..32 slots
            let mut dut = BranchPredictor::new(size);
            let mut model = RefModel::new(size);
            // A few branch "sites", deliberately aliasing in small BTBs,
            // each with a per-site outcome behavior.
            let n_sites = rng.range_usize(2, 8);
            let sites: Vec<(usize, usize, u64)> = (0..n_sites)
                .map(|_| {
                    (
                        rng.range_usize(0, 4 * size), // pc
                        rng.range_usize(0, 1 << 20),  // target
                        rng.below(4),                 // behavior class
                    )
                })
                .collect();
            let mut correct = 0u64;
            let mut ref_correct = 0u64;
            let mut ref_hits = 0u64;
            let mut events = 0u64;
            for step in 0..400u64 {
                let &(pc, target, behavior) = rng.pick(&sites);
                let taken = match behavior {
                    0 => true,                // always taken
                    1 => false,               // never taken
                    2 => step % 2 == 0,       // alternating (worst case)
                    _ => rng.below(100) < 85, // biased taken
                };
                let pred = dut.predict(pc);
                let (ref_taken, ref_target, ref_hit) = model.predict(pc);
                assert_eq!(pred.taken, ref_taken, "prediction diverged at {pc}");
                if pred.taken {
                    assert_eq!(pred.target, ref_target, "target diverged at {pc}");
                }
                events += 1;
                ref_hits += u64::from(ref_hit);
                correct += u64::from(pred.taken == taken);
                ref_correct += u64::from(ref_taken == taken);
                dut.update(pc, taken, target);
                model.update(pc, taken, target);
                // Saturation bounds hold after every update, and every
                // resident counter agrees with the reference model's.
                for e in dut.entries.iter().flatten() {
                    assert!(e.counter <= 3, "counter escaped saturation: {}", e.counter);
                    let (tag, target, counter) = model.slots[&(e.pc % size)];
                    assert_eq!((tag, target, counter), (e.pc, e.target, e.counter));
                }
            }
            // Accuracy and traffic counters equal the scalar recomputation.
            assert_eq!(correct, ref_correct, "accuracy diverged from the model");
            assert_eq!(dut.stats().lookups, events);
            assert_eq!(dut.stats().updates, events);
            assert_eq!(dut.stats().btb_hits, ref_hits);
        });
    }

    /// Regression for the snapshot-hardening fix: a snapshot whose entry
    /// carries a counter outside the 2-bit saturation range must be
    /// rejected as malformed, not installed (an installed `counter > 3`
    /// overflows `counter + 1` in debug builds on the next taken update).
    #[test]
    fn restore_rejects_out_of_range_counter() {
        let mut good = BranchPredictor::new(4);
        good.update(1, true, 9);
        let mut w = smt_checkpoint::Writer::new();
        good.save(&mut w);
        let mut bytes = w.into_bytes();
        // Round-trips cleanly before corruption.
        assert!(BranchPredictor::restore(&mut smt_checkpoint::Reader::new(&bytes)).is_ok());
        // Forge the counter byte: the stream holds `counter: u8 = 2` for
        // the single occupied slot; corrupt every byte equal to 2 that
        // follows an occupancy marker by scanning for the known layout is
        // brittle, so rebuild the stream by hand instead.
        let mut w = smt_checkpoint::Writer::new();
        w.put_usize(4); // BTB size
        w.put_u8(1); // slot 0 occupied
        w.put_usize(16); // pc (aliases to slot 0)
        w.put_usize(9); // target
        w.put_u8(7); // counter out of range
        for _ in 0..3 {
            w.put_u8(0); // slots 1..3 empty
        }
        w.put_u64(0);
        w.put_u64(0);
        w.put_u64(1);
        bytes = w.into_bytes();
        let err = BranchPredictor::restore(&mut smt_checkpoint::Reader::new(&bytes)).unwrap_err();
        assert!(
            matches!(err, smt_checkpoint::DecodeError::Malformed(ref m) if m.contains("counter")),
            "expected a counter rejection, got {err:?}"
        );
    }

    /// Scalar reference model of gshare, written independently: maps for
    /// PHT and BTB, per-thread history recomputed by hand.
    struct RefGshare {
        pht: std::collections::HashMap<usize, u8>,
        btb: std::collections::HashMap<usize, (usize, usize)>,
        hist: Vec<u64>,
        size: usize,
    }

    impl RefGshare {
        fn new(size: usize, threads: usize) -> Self {
            RefGshare {
                pht: std::collections::HashMap::new(),
                btb: std::collections::HashMap::new(),
                hist: vec![0; threads],
                size,
            }
        }

        fn idx(&self, tid: usize, pc: usize) -> usize {
            (pc ^ self.hist[tid] as usize) % self.size
        }

        /// (taken, target, btb_hit)
        fn predict(&self, tid: usize, pc: usize) -> (bool, usize, bool) {
            let dir = self.pht.get(&self.idx(tid, pc)).copied().unwrap_or(0) >= 2;
            match self.btb.get(&(pc % self.size)) {
                Some(&(tag, target)) if tag == pc => (dir, target, true),
                _ => (false, 0, false),
            }
        }

        fn update(&mut self, tid: usize, pc: usize, taken: bool, target: usize) {
            let i = self.idx(tid, pc);
            let c = self.pht.entry(i).or_insert(0);
            if taken {
                *c = if *c >= 3 { 3 } else { *c + 1 };
                self.btb.insert(pc % self.size, (pc, target));
            } else if *c > 0 {
                *c -= 1;
            }
            self.hist[tid] = ((self.hist[tid] << 1) | u64::from(taken)) % self.size as u64;
        }
    }

    /// Property: gshare's predictions, traffic counters, and per-thread
    /// histories match the independent scalar model over random
    /// multi-thread branch streams.
    #[test]
    fn gshare_matches_scalar_reference_model() {
        smt_testkit::cases(40, |rng| {
            let size = 1usize << rng.range_usize(2, 6);
            let threads = rng.range_usize(1, 4);
            let mut dut = GsharePredictor::new(size, threads);
            let mut model = RefGshare::new(size, threads);
            let n_sites = rng.range_usize(2, 8);
            let sites: Vec<(usize, usize, u64)> = (0..n_sites)
                .map(|_| {
                    (
                        rng.range_usize(0, 4 * size),
                        rng.range_usize(0, 1 << 20),
                        rng.below(4),
                    )
                })
                .collect();
            let mut hits = 0u64;
            for step in 0..400u64 {
                let tid = rng.range_usize(0, threads);
                let &(pc, target, behavior) = rng.pick(&sites);
                let taken = match behavior {
                    0 => true,
                    1 => false,
                    2 => step % 2 == 0,
                    _ => rng.below(100) < 85,
                };
                let pred = dut.predict(tid, pc);
                let (ref_taken, ref_target, ref_hit) = model.predict(tid, pc);
                assert_eq!(pred.taken, ref_taken, "direction diverged at {pc}");
                if pred.taken {
                    assert_eq!(pred.target, ref_target, "target diverged at {pc}");
                }
                hits += u64::from(ref_hit);
                dut.update(tid, pc, taken, target);
                model.update(tid, pc, taken, target);
                for (t, &h) in dut.history.iter().enumerate() {
                    assert_eq!(h, model.hist[t], "history diverged for thread {t}");
                    assert!(h <= dut.hist_mask);
                }
                for &c in &dut.pht {
                    assert!(c <= 3, "PHT counter escaped saturation: {c}");
                }
            }
            assert_eq!(dut.stats().lookups, 400);
            assert_eq!(dut.stats().updates, 400);
            assert_eq!(dut.stats().btb_hits, hits);
        });
    }

    /// The point of gshare: a strictly alternating branch — the worst case
    /// for any 2-bit counter — becomes perfectly predictable once the
    /// history register captures the period.
    #[test]
    fn gshare_learns_an_alternating_branch_the_shared_btb_cannot() {
        let pc = 5;
        let mut gshare = GsharePredictor::new(64, 1);
        let mut shared = BranchPredictor::new(64);
        let mut gshare_correct = 0u32;
        let mut shared_correct = 0u32;
        for step in 0..200u32 {
            let taken = step % 2 == 0;
            let warm = step >= 32;
            if warm {
                gshare_correct += u32::from(gshare.predict(0, pc).taken == taken);
                shared_correct += u32::from(shared.predict(pc).taken == taken);
            }
            gshare.update(0, pc, taken, 40);
            shared.update(pc, taken, 40);
        }
        assert_eq!(gshare_correct, 168, "gshare should lock onto the period");
        assert!(
            shared_correct <= 84,
            "a 2-bit counter cannot beat chance on alternation, got {shared_correct}/168"
        );
    }

    /// Partition isolation: thread 0 saturating a branch site must not
    /// leak predictions into thread 1's table (the whole point of the
    /// partitioned family), while the shared BTB *does* cross-train.
    #[test]
    fn partitioned_tables_do_not_cross_train() {
        let mut part = PartitionedPredictor::new(128, 2);
        let mut shared = BranchPredictor::new(128);
        for _ in 0..4 {
            part.update(0, 7, true, 70);
            shared.update(7, true, 70);
        }
        assert!(part.predict(0, 7).taken, "trainer thread predicts taken");
        assert!(
            !part.predict(1, 7).taken,
            "partition must stay cold for the other thread"
        );
        assert!(shared.predict(7).taken, "shared BTB cross-trains by design");
    }

    #[test]
    fn partition_size_floors_to_a_power_of_two() {
        assert_eq!(PartitionedPredictor::partition_size(512, 1), 512);
        assert_eq!(PartitionedPredictor::partition_size(512, 4), 128);
        assert_eq!(PartitionedPredictor::partition_size(512, 6), 64);
        assert_eq!(PartitionedPredictor::partition_size(512, 8), 64);
        assert_eq!(PartitionedPredictor::partition_size(8, 16), 1);
        let p = PartitionedPredictor::new(512, 6);
        assert_eq!(p.n_threads(), 6);
        assert_eq!(p.slots_per_thread(), 64);
    }

    /// Every family round-trips through save/restore bit-identically:
    /// restoring a snapshot and saving again yields the same bytes.
    #[test]
    fn every_family_round_trips_bit_identically() {
        smt_testkit::cases(12, |rng| {
            for kind in PredictorKind::ALL {
                let threads = rng.range_usize(1, 4);
                let mut p = Predictor::build(kind, 64, threads);
                for _ in 0..200 {
                    let tid = rng.range_usize(0, threads);
                    let pc = rng.range_usize(0, 256);
                    if rng.coin() {
                        let _ = p.predict(tid, pc);
                    } else {
                        p.update(tid, pc, rng.coin(), rng.range_usize(0, 256));
                    }
                }
                let mut w = smt_checkpoint::Writer::new();
                p.save(&mut w);
                let bytes = w.into_bytes();
                let mut r = smt_checkpoint::Reader::new(&bytes);
                let restored = Predictor::restore(kind, threads, &mut r).unwrap();
                assert_eq!(restored.kind(), kind);
                assert_eq!(restored.stats(), p.stats());
                let mut w2 = smt_checkpoint::Writer::new();
                restored.save(&mut w2);
                assert_eq!(w2.into_bytes(), bytes, "{kind} snapshot not bit-stable");
            }
        });
    }

    /// A snapshot whose family tag disagrees with the configured family is
    /// rejected (a shared-BTB snapshot cannot silently restore into a
    /// gshare machine).
    #[test]
    fn restore_rejects_family_mismatch() {
        let p = Predictor::build(PredictorKind::SharedBtb, 16, 2);
        let mut w = smt_checkpoint::Writer::new();
        p.save(&mut w);
        let bytes = w.into_bytes();
        let err = Predictor::restore(
            PredictorKind::Gshare,
            2,
            &mut smt_checkpoint::Reader::new(&bytes),
        )
        .unwrap_err();
        assert!(matches!(err, smt_checkpoint::DecodeError::Malformed(_)));
    }

    /// A snapshot sized for a different thread count is rejected for the
    /// thread-indexed families.
    #[test]
    fn restore_rejects_thread_count_mismatch() {
        for kind in [PredictorKind::Gshare, PredictorKind::PartitionedBtb] {
            let p = Predictor::build(kind, 64, 4);
            let mut w = smt_checkpoint::Writer::new();
            p.save(&mut w);
            let bytes = w.into_bytes();
            let err =
                Predictor::restore(kind, 2, &mut smt_checkpoint::Reader::new(&bytes)).unwrap_err();
            assert!(
                matches!(err, smt_checkpoint::DecodeError::Malformed(_)),
                "{kind} accepted a wrong-thread-count snapshot"
            );
        }
    }

    /// Gshare restore applies the same counter hardening as the shared
    /// BTB: out-of-range PHT bytes and overwide histories are malformed.
    #[test]
    fn gshare_restore_rejects_corrupt_state() {
        let g = GsharePredictor::new(4, 1);
        let mut w = smt_checkpoint::Writer::new();
        g.save(&mut w);
        let clean = w.into_bytes();

        // Corrupt the first PHT counter (first byte after the usize len).
        let mut bad = clean.clone();
        let pht_start = clean.len() - (4 + 4 + 8 + 8 + 24); // counters+slots+len+hist+stats
        bad[pht_start] = 9;
        assert!(GsharePredictor::restore(&mut smt_checkpoint::Reader::new(&bad)).is_err());

        // An overwide history register (mask for 4 entries is 0b11).
        let mut w = smt_checkpoint::Writer::new();
        w.put_usize(4);
        for _ in 0..4 {
            w.put_u8(0); // PHT
        }
        for _ in 0..4 {
            w.put_u8(0); // BTB empty
        }
        w.put_usize(1);
        w.put_u64(0xff); // history wider than the index
        w.put_u64(0);
        w.put_u64(0);
        w.put_u64(0);
        let bytes = w.into_bytes();
        let err = GsharePredictor::restore(&mut smt_checkpoint::Reader::new(&bytes)).unwrap_err();
        assert!(matches!(err, smt_checkpoint::DecodeError::Malformed(_)));
    }
}
