//! The shared 2-bit branch predictor with branch-target buffer.
//!
//! One predictor serves every thread — the paper exploits homogeneous
//! multitasking (all threads run the same text) so a shared BTB even
//! *benefits* from cross-thread training: "Branch instructions of all
//! threads update the same history after execution. While this may seem too
//! simplistic, it yielded prediction accuracies upwards of 85% for all
//! applications."
//!
//! Each direct-mapped BTB entry holds a PC tag, the branch target, and a
//! 2-bit saturating counter (`0,1` → predict not-taken; `2,3` → predict
//! taken). A PC that misses in the BTB predicts not-taken (fall through).
//! Updates happen at result commit, as in the paper (Section 5.4 notes the
//! delayed-update artifact this causes for very deep scheduling units).

/// Outcome of a prediction lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Prediction {
    /// Whether the control transfer is predicted taken.
    pub taken: bool,
    /// Predicted target (valid only when `taken`).
    pub target: usize,
}

impl Prediction {
    /// The fall-through prediction.
    #[must_use]
    pub fn not_taken() -> Self {
        Prediction {
            taken: false,
            target: 0,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    pc: usize,
    target: usize,
    counter: u8,
}

/// Counters accumulated by the predictor itself (lookup traffic); *accuracy*
/// is accounted by the pipeline, which knows actual outcomes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PredictorStats {
    /// Prediction lookups performed.
    pub lookups: u64,
    /// Lookups that found a matching BTB entry.
    pub btb_hits: u64,
    /// Commit-time updates applied.
    pub updates: u64,
}

/// A direct-mapped BTB of 2-bit saturating counters.
///
/// ```
/// use smt_uarch::BranchPredictor;
///
/// let mut p = BranchPredictor::new(16);
/// assert!(!p.predict(5).taken);      // cold: fall through
/// p.update(5, true, 42);
/// p.update(5, true, 42);
/// let pred = p.predict(5);
/// assert!(pred.taken);
/// assert_eq!(pred.target, 42);
/// ```
#[derive(Clone, Debug)]
pub struct BranchPredictor {
    entries: Vec<Option<Entry>>,
    mask: usize,
    stats: PredictorStats,
}

/// Default BTB entry count (reconstructed parameter; see DESIGN.md).
pub const DEFAULT_BTB_ENTRIES: usize = 512;

impl Default for BranchPredictor {
    fn default() -> Self {
        BranchPredictor::new(DEFAULT_BTB_ENTRIES)
    }
}

impl BranchPredictor {
    /// Creates a predictor with `entries` BTB slots.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a nonzero power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "BTB size must be a power of two"
        );
        BranchPredictor {
            entries: vec![None; entries],
            mask: entries - 1,
            stats: PredictorStats::default(),
        }
    }

    /// Looks up the prediction for the control-transfer at `pc`.
    pub fn predict(&mut self, pc: usize) -> Prediction {
        self.stats.lookups += 1;
        match self.entries[pc & self.mask] {
            Some(e) if e.pc == pc => {
                self.stats.btb_hits += 1;
                Prediction {
                    taken: e.counter >= 2,
                    target: e.target,
                }
            }
            _ => Prediction::not_taken(),
        }
    }

    /// Applies the resolved outcome of the control transfer at `pc`.
    ///
    /// Taken updates (including unconditional jumps) install/refresh the BTB
    /// entry; a not-taken update for a PC owned by a *different* branch
    /// leaves the entry alone (no displacement on aliasing misses).
    pub fn update(&mut self, pc: usize, taken: bool, target: usize) {
        self.stats.updates += 1;
        let slot = &mut self.entries[pc & self.mask];
        match slot {
            Some(e) if e.pc == pc => {
                if taken {
                    e.counter = (e.counter + 1).min(3);
                    e.target = target;
                } else {
                    e.counter = e.counter.saturating_sub(1);
                }
            }
            _ => {
                if taken {
                    // Install weakly taken, as classic 2-bit BTBs do.
                    *slot = Some(Entry {
                        pc,
                        target,
                        counter: 2,
                    });
                }
            }
        }
    }

    /// Lookup/update traffic counters.
    #[must_use]
    pub fn stats(&self) -> &PredictorStats {
        &self.stats
    }

    /// Serializes BTB contents and traffic counters.
    pub fn save(&self, w: &mut smt_checkpoint::Writer) {
        w.put_usize(self.entries.len());
        for slot in &self.entries {
            match slot {
                None => w.put_u8(0),
                Some(e) => {
                    w.put_u8(1);
                    w.put_usize(e.pc);
                    w.put_usize(e.target);
                    w.put_u8(e.counter);
                }
            }
        }
        w.put_u64(self.stats.lookups);
        w.put_u64(self.stats.btb_hits);
        w.put_u64(self.stats.updates);
    }

    /// Rebuilds a predictor from [`save`](Self::save)d state.
    pub fn restore(
        r: &mut smt_checkpoint::Reader<'_>,
    ) -> Result<Self, smt_checkpoint::DecodeError> {
        let len = r.take_usize()?;
        if !len.is_power_of_two() || len == 0 {
            return Err(smt_checkpoint::DecodeError::Malformed(format!(
                "BTB size {len} is not a power of two"
            )));
        }
        let mut p = BranchPredictor::new(len);
        for slot in &mut p.entries {
            *slot = match r.take_u8()? {
                0 => None,
                1 => Some(Entry {
                    pc: r.take_usize()?,
                    target: r.take_usize()?,
                    counter: r.take_u8()?,
                }),
                v => {
                    return Err(smt_checkpoint::DecodeError::Malformed(format!(
                        "BTB slot discriminant {v}"
                    )))
                }
            };
        }
        p.stats.lookups = r.take_u64()?;
        p.stats.btb_hits = r.take_u64()?;
        p.stats.updates = r.take_u64()?;
        Ok(p)
    }

    /// Number of BTB slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the BTB has zero slots (never true — construction forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_lookup_predicts_not_taken() {
        let mut p = BranchPredictor::new(8);
        assert_eq!(p.predict(3), Prediction::not_taken());
        assert_eq!(p.stats().lookups, 1);
        assert_eq!(p.stats().btb_hits, 0);
    }

    #[test]
    fn two_bit_hysteresis() {
        let mut p = BranchPredictor::new(8);
        p.update(1, true, 9); // install at 2 (weakly taken)
        assert!(p.predict(1).taken);
        p.update(1, true, 9); // 3 (strongly taken)
        p.update(1, false, 0); // 2 — still predicts taken
        assert!(p.predict(1).taken);
        p.update(1, false, 0); // 1 — now not taken
        assert!(!p.predict(1).taken);
        p.update(1, true, 9); // 2 — one taken flips it back
        assert!(p.predict(1).taken);
    }

    #[test]
    fn not_taken_history_never_installs() {
        let mut p = BranchPredictor::new(8);
        p.update(4, false, 0);
        p.update(4, false, 0);
        assert_eq!(p.stats().updates, 2);
        assert!(!p.predict(4).taken);
        assert_eq!(p.stats().btb_hits, 0);
    }

    #[test]
    fn aliasing_branches_share_a_slot() {
        let mut p = BranchPredictor::new(8);
        p.update(1, true, 100);
        // pc 9 aliases to the same slot; taken update displaces.
        p.update(9, true, 200);
        let pred = p.predict(9);
        assert!(pred.taken);
        assert_eq!(pred.target, 200);
        // pc 1 now misses (tag mismatch) → not taken.
        assert!(!p.predict(1).taken);
        // A not-taken update from the displaced branch must not clobber.
        p.update(1, false, 0);
        assert!(p.predict(9).taken);
    }

    #[test]
    fn target_refreshes_on_taken_update() {
        let mut p = BranchPredictor::new(8);
        p.update(2, true, 50);
        p.update(2, true, 60);
        assert_eq!(p.predict(2).target, 60);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = BranchPredictor::new(12);
    }

    /// Scalar reference model of a direct-mapped 2-bit BTB, written
    /// independently of the implementation (plain map of slot → entry).
    struct RefModel {
        slots: std::collections::HashMap<usize, (usize, usize, u8)>,
        size: usize,
    }

    impl RefModel {
        fn new(size: usize) -> Self {
            RefModel {
                slots: std::collections::HashMap::new(),
                size,
            }
        }

        /// (taken, target, btb_hit)
        fn predict(&self, pc: usize) -> (bool, usize, bool) {
            match self.slots.get(&(pc % self.size)) {
                Some(&(tag, target, counter)) if tag == pc => (counter >= 2, target, true),
                _ => (false, 0, false),
            }
        }

        fn update(&mut self, pc: usize, taken: bool, target: usize) {
            let slot = pc % self.size;
            match self.slots.get_mut(&slot) {
                Some(e) if e.0 == pc => {
                    if taken {
                        e.2 = if e.2 >= 3 { 3 } else { e.2 + 1 };
                        e.1 = target;
                    } else if e.2 > 0 {
                        e.2 -= 1;
                    }
                }
                _ if taken => {
                    self.slots.insert(slot, (pc, target, 2));
                }
                _ => {}
            }
        }
    }

    /// Property: over random predict/update streams (aliasing pcs, biased
    /// and anti-correlated outcomes), every 2-bit counter stays inside its
    /// saturation bounds and the predictor's predictions, hit/accuracy
    /// accounting, and traffic counters all equal the scalar reference
    /// model's recomputation.
    #[test]
    fn random_streams_match_scalar_reference_model() {
        smt_testkit::cases(40, |rng| {
            let size = 1usize << rng.range_usize(2, 6); // 4..32 slots
            let mut dut = BranchPredictor::new(size);
            let mut model = RefModel::new(size);
            // A few branch "sites", deliberately aliasing in small BTBs,
            // each with a per-site outcome behavior.
            let n_sites = rng.range_usize(2, 8);
            let sites: Vec<(usize, usize, u64)> = (0..n_sites)
                .map(|_| {
                    (
                        rng.range_usize(0, 4 * size), // pc
                        rng.range_usize(0, 1 << 20),  // target
                        rng.below(4),                 // behavior class
                    )
                })
                .collect();
            let mut correct = 0u64;
            let mut ref_correct = 0u64;
            let mut ref_hits = 0u64;
            let mut events = 0u64;
            for step in 0..400u64 {
                let &(pc, target, behavior) = rng.pick(&sites);
                let taken = match behavior {
                    0 => true,                // always taken
                    1 => false,               // never taken
                    2 => step % 2 == 0,       // alternating (worst case)
                    _ => rng.below(100) < 85, // biased taken
                };
                let pred = dut.predict(pc);
                let (ref_taken, ref_target, ref_hit) = model.predict(pc);
                assert_eq!(pred.taken, ref_taken, "prediction diverged at {pc}");
                if pred.taken {
                    assert_eq!(pred.target, ref_target, "target diverged at {pc}");
                }
                events += 1;
                ref_hits += u64::from(ref_hit);
                correct += u64::from(pred.taken == taken);
                ref_correct += u64::from(ref_taken == taken);
                dut.update(pc, taken, target);
                model.update(pc, taken, target);
                // Saturation bounds hold after every update, and every
                // resident counter agrees with the reference model's.
                for e in dut.entries.iter().flatten() {
                    assert!(e.counter <= 3, "counter escaped saturation: {}", e.counter);
                    let (tag, target, counter) = model.slots[&(e.pc % size)];
                    assert_eq!((tag, target, counter), (e.pc, e.target, e.counter));
                }
            }
            // Accuracy and traffic counters equal the scalar recomputation.
            assert_eq!(correct, ref_correct, "accuracy diverged from the model");
            assert_eq!(dut.stats().lookups, events);
            assert_eq!(dut.stats().updates, events);
            assert_eq!(dut.stats().btb_hits, ref_hits);
        });
    }
}
