//! Functional-unit complement and occupancy tracking (the paper's Table 1).
//!
//! Two configurations are built in: the **default** (suitable for
//! single-threaded SDSP execution, per Wallace & Bagherzadeh) and the
//! **enhanced** ("++" in Figures 11/12) which adds two integer ALUs and one
//! of every other unit. Units within a class are allocated lowest-index
//! first, so the occupancy of the *highest-index* ("extra") unit measures
//! the marginal value of adding it — exactly what the paper's Table 3
//! reports.
//!
//! Latency semantics: an instruction issued at cycle `t` completes (writes
//! back) at `t + latency`. Pipelined classes accept a new instruction every
//! cycle; the iterative dividers (integer and FP) are unpipelined and accept
//! a new instruction only after the previous one completes.

use std::fmt;

use smt_isa::FuClass;

/// Per-class unit count, latency, and pipelining.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ClassConfig {
    /// Number of identical units.
    pub count: usize,
    /// Cycles from issue to writeback.
    pub latency: u64,
    /// Whether the unit accepts a new instruction every cycle.
    pub pipelined: bool,
}

/// The functional-unit configuration (Table 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FuConfig {
    classes: [ClassConfig; FuClass::ALL.len()],
}

fn class_index(class: FuClass) -> usize {
    class.index()
}

impl FuConfig {
    /// Table 1's "Default no." column (reconstructed counts; see DESIGN.md).
    #[must_use]
    pub fn paper_default() -> Self {
        let mut cfg = FuConfig {
            classes: [ClassConfig {
                count: 1,
                latency: 1,
                pipelined: true,
            }; FuClass::ALL.len()],
        };
        let set = |cfg: &mut FuConfig, class, count, latency, pipelined| {
            cfg.classes[class_index(class)] = ClassConfig {
                count,
                latency,
                pipelined,
            };
        };
        set(&mut cfg, FuClass::Alu, 4, 1, true);
        set(&mut cfg, FuClass::IntMul, 1, 3, true);
        set(&mut cfg, FuClass::IntDiv, 1, 8, false);
        set(&mut cfg, FuClass::Load, 1, 2, true);
        set(&mut cfg, FuClass::Store, 1, 1, true);
        set(&mut cfg, FuClass::Ctu, 1, 1, true);
        set(&mut cfg, FuClass::FpAdd, 1, 2, true);
        set(&mut cfg, FuClass::FpMul, 1, 4, true);
        set(&mut cfg, FuClass::FpDiv, 1, 12, false);
        set(&mut cfg, FuClass::Sync, 1, 1, true);
        cfg
    }

    /// Table 1's "Other no." column — the enhanced ("++") configuration:
    /// six ALUs and two of every other computational unit.
    #[must_use]
    pub fn paper_enhanced() -> Self {
        let mut cfg = Self::paper_default();
        for class in FuClass::ALL {
            if class == FuClass::Sync {
                continue; // the sync unit is not part of Table 1
            }
            let extra = if class == FuClass::Alu { 2 } else { 1 };
            cfg.classes[class_index(class)].count += extra;
        }
        cfg
    }

    /// Per-class parameters.
    #[must_use]
    pub fn class(&self, class: FuClass) -> ClassConfig {
        self.classes[class_index(class)]
    }

    /// Returns a copy with `class`'s unit count replaced (for ablations).
    #[must_use]
    pub fn with_count(mut self, class: FuClass, count: usize) -> Self {
        self.classes[class_index(class)].count = count;
        self
    }

    /// Returns a copy with `class`'s latency replaced (for ablations).
    #[must_use]
    pub fn with_latency(mut self, class: FuClass, latency: u64) -> Self {
        self.classes[class_index(class)].latency = latency;
        self
    }

    /// Total number of units across all classes.
    #[must_use]
    pub fn total_units(&self) -> usize {
        self.classes.iter().map(|c| c.count).sum()
    }
}

impl Default for FuConfig {
    fn default() -> Self {
        FuConfig::paper_default()
    }
}

impl fmt::Display for FuConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for class in FuClass::ALL {
            let c = self.class(class);
            writeln!(
                f,
                "{class}: {} unit(s), latency {}{}",
                c.count,
                c.latency,
                if c.pipelined { "" } else { " (unpipelined)" }
            )?;
        }
        Ok(())
    }
}

#[derive(Clone, Debug)]
struct Unit {
    /// First cycle at which the unit can accept a new instruction.
    free_at: u64,
    /// Cycles this unit has been occupied (accept-port cycles for pipelined
    /// units; full occupancy for unpipelined ones).
    busy_cycles: u64,
    /// Instructions issued to this unit.
    issues: u64,
}

/// Runtime state of every functional unit, with per-unit occupancy counters.
#[derive(Clone, Debug)]
pub struct FuPool {
    config: FuConfig,
    units: Vec<Vec<Unit>>,
}

impl FuPool {
    /// Creates an idle pool for `config`.
    #[must_use]
    pub fn new(config: FuConfig) -> Self {
        let units = FuClass::ALL
            .iter()
            .map(|&class| {
                vec![
                    Unit {
                        free_at: 0,
                        busy_cycles: 0,
                        issues: 0
                    };
                    config.class(class).count
                ]
            })
            .collect();
        FuPool { config, units }
    }

    /// The pool's configuration.
    #[must_use]
    pub fn config(&self) -> &FuConfig {
        &self.config
    }

    /// Attempts to issue an instruction of `class` at cycle `now`.
    ///
    /// On success returns the completion (writeback) cycle; `None` means
    /// every unit of the class is busy this cycle.
    pub fn try_issue(&mut self, class: FuClass, now: u64) -> Option<u64> {
        let cfg = self.config.class(class);
        let units = &mut self.units[class_index(class)];
        let unit = units.iter_mut().find(|u| u.free_at <= now)?;
        let occupied = if cfg.pipelined { 1 } else { cfg.latency };
        unit.free_at = now + occupied;
        unit.busy_cycles += occupied;
        unit.issues += 1;
        Some(now + cfg.latency)
    }

    /// Whether at least one unit of `class` can accept at cycle `now`.
    #[must_use]
    pub fn can_issue(&self, class: FuClass, now: u64) -> bool {
        self.units[class_index(class)]
            .iter()
            .any(|u| u.free_at <= now)
    }

    /// Occupied cycles of unit `index` within `class` (see module docs for
    /// the occupancy definition).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the class.
    #[must_use]
    pub fn busy_cycles(&self, class: FuClass, index: usize) -> u64 {
        self.units[class_index(class)][index].busy_cycles
    }

    /// Instructions issued to unit `index` within `class`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the class.
    #[must_use]
    pub fn issues(&self, class: FuClass, index: usize) -> u64 {
        self.units[class_index(class)][index].issues
    }

    /// Serializes every unit's runtime state (`free_at`, occupancy and
    /// issue counters), in class-then-unit allocation order.
    pub fn save(&self, w: &mut smt_checkpoint::Writer) {
        for class_units in &self.units {
            w.put_usize(class_units.len());
            for u in class_units {
                w.put_u64(u.free_at);
                w.put_u64(u.busy_cycles);
                w.put_u64(u.issues);
            }
        }
    }

    /// Rebuilds a pool for `config` from [`save`](Self::save)d state.
    pub fn restore(
        config: FuConfig,
        r: &mut smt_checkpoint::Reader<'_>,
    ) -> Result<Self, smt_checkpoint::DecodeError> {
        let mut pool = FuPool::new(config);
        for class_units in &mut pool.units {
            let n = r.take_usize()?;
            if n != class_units.len() {
                return Err(smt_checkpoint::DecodeError::Malformed(format!(
                    "fu pool: {n} serialized units for a class configured with {}",
                    class_units.len()
                )));
            }
            for u in class_units.iter_mut() {
                u.free_at = r.take_u64()?;
                u.busy_cycles = r.take_u64()?;
                u.issues = r.take_u64()?;
            }
        }
        Ok(pool)
    }

    /// Occupancy of the class's *last* (extra) unit as a percentage of
    /// `total_cycles` — the paper's Table 3 metric.
    #[must_use]
    pub fn extra_unit_usage_pct(&self, class: FuClass, total_cycles: u64) -> f64 {
        let units = &self.units[class_index(class)];
        let last = units.last().expect("class has at least one unit");
        if total_cycles == 0 {
            0.0
        } else {
            100.0 * last.busy_cycles as f64 / total_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1_shape() {
        let cfg = FuConfig::paper_default();
        assert_eq!(cfg.class(FuClass::Alu).count, 4);
        assert_eq!(cfg.class(FuClass::Load).count, 1);
        assert_eq!(cfg.class(FuClass::FpMul).latency, 4);
        assert!(!cfg.class(FuClass::IntDiv).pipelined);
        assert!(!cfg.class(FuClass::FpDiv).pipelined);
        assert_eq!(cfg.total_units(), 4 + 8 + 1);
    }

    #[test]
    fn enhanced_adds_expected_units() {
        let d = FuConfig::paper_default();
        let e = FuConfig::paper_enhanced();
        assert_eq!(e.class(FuClass::Alu).count, d.class(FuClass::Alu).count + 2);
        for class in FuClass::ALL {
            if class == FuClass::Alu || class == FuClass::Sync {
                continue;
            }
            assert_eq!(e.class(class).count, d.class(class).count + 1, "{class}");
        }
        assert_eq!(e.class(FuClass::Sync).count, 1);
    }

    #[test]
    fn pipelined_unit_accepts_every_cycle() {
        let mut pool = FuPool::new(FuConfig::paper_default().with_count(FuClass::FpMul, 1));
        assert_eq!(pool.try_issue(FuClass::FpMul, 0), Some(4));
        assert_eq!(
            pool.try_issue(FuClass::FpMul, 0),
            None,
            "one accept port per cycle"
        );
        assert_eq!(pool.try_issue(FuClass::FpMul, 1), Some(5));
    }

    #[test]
    fn unpipelined_divider_blocks_for_full_latency() {
        let mut pool = FuPool::new(FuConfig::paper_default());
        assert_eq!(pool.try_issue(FuClass::IntDiv, 0), Some(8));
        assert_eq!(pool.try_issue(FuClass::IntDiv, 7), None);
        assert_eq!(pool.try_issue(FuClass::IntDiv, 8), Some(16));
    }

    #[test]
    fn units_fill_lowest_index_first() {
        let mut pool = FuPool::new(FuConfig::paper_default());
        // 4 ALUs: three issues in one cycle use units 0..3.
        for _ in 0..3 {
            assert!(pool.try_issue(FuClass::Alu, 0).is_some());
        }
        assert_eq!(pool.issues(FuClass::Alu, 0), 1);
        assert_eq!(pool.issues(FuClass::Alu, 2), 1);
        assert_eq!(pool.issues(FuClass::Alu, 3), 0, "extra unit untouched");
    }

    #[test]
    fn extra_unit_usage_pct_reflects_pressure() {
        let mut pool = FuPool::new(FuConfig::paper_default().with_count(FuClass::Alu, 2));
        for now in 0..10 {
            let _ = pool.try_issue(FuClass::Alu, now); // unit 0 every cycle
            if now < 3 {
                let _ = pool.try_issue(FuClass::Alu, now); // unit 1 on 3 cycles
            }
        }
        assert!((pool.extra_unit_usage_pct(FuClass::Alu, 10) - 30.0).abs() < 1e-9);
        assert_eq!(pool.extra_unit_usage_pct(FuClass::Alu, 0), 0.0);
    }

    #[test]
    fn can_issue_matches_try_issue() {
        let mut pool = FuPool::new(FuConfig::paper_default());
        assert!(pool.can_issue(FuClass::FpDiv, 0));
        let _ = pool.try_issue(FuClass::FpDiv, 0);
        assert!(!pool.can_issue(FuClass::FpDiv, 5));
        assert!(pool.can_issue(FuClass::FpDiv, 12));
    }
}
