//! Microarchitecture building blocks shared by the SMT pipeline.
//!
//! * [`predictor::BranchPredictor`] — the paper's 2-bit hardware predictor
//!   with a *single* BTB shared by all threads ("only one BTB is maintained,
//!   regardless of the number of threads … it yielded prediction accuracies
//!   upwards of 85% for all applications").
//! * [`fu::FuPool`] — the functional-unit complement of Table 1, with the
//!   default and "enhanced" configurations and per-unit occupancy counters
//!   used to regenerate Table 3.
//! * [`tags::TagAllocator`] — globally unique renaming tags: "the renaming
//!   hardware continues to allocate tags as if all instructions belonged to
//!   the same thread, and does not reuse one until its previous occurrence is
//!   no longer in use."

pub mod fu;
pub mod predictor;
pub mod tags;

pub use fu::{FuConfig, FuPool};
pub use predictor::{
    BranchPredictor, GsharePredictor, PartitionedPredictor, Prediction, Predictor, PredictorKind,
    PredictorStats,
};
pub use tags::{Tag, TagAllocator};
