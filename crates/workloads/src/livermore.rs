//! The six Livermore loops of Group I.
//!
//! Each kernel follows the homogeneous-multitasking template: materialize
//! the array base addresses into registers, compute the thread's partition
//! of the index space from `tid`/`nthreads`, run the loop body over it, and
//! halt. LL3 adds a parallel-reduction combine and LL5 a cross-iteration
//! hand-off chain with explicit `WAIT`/`POST` synchronization — the
//! structure the paper highlights when discussing why one loop consistently
//! loses from multithreading.

use smt_isa::builder::ProgramBuilder;

use crate::common::{
    check_f64_array, emit_barrier, emit_partition, for_range, synth, CheckError, MemView,
};
use crate::{Scale, Workload, WorkloadKind};

fn size(scale: Scale, test: usize, paper: usize) -> usize {
    match scale {
        Scale::Test => test,
        Scale::Paper => paper,
    }
}

/// Passes over the data. The Livermore kernels are benchmarked as repeated
/// sweeps over arrays sized near the cache capacity (the paper: "the
/// working sets of most threads can be accommodated" at low thread counts),
/// which is what gives the cache study of Section 5.3 its signal.
fn passes(scale: Scale) -> i64 {
    match scale {
        Scale::Test => 2,
        Scale::Paper => 3,
    }
}

/// Emits `reps` repetitions of the partitioned loop `[lo_s, hi)`, copying
/// `lo_s` into the loop counter `lo` before each sweep.
#[allow(clippy::too_many_arguments)] // five registers of loop state, passed flat
fn repeat_sweep(
    b: &mut ProgramBuilder,
    reps: i64,
    pass: smt_isa::Reg,
    npass: smt_isa::Reg,
    lo: smt_isa::Reg,
    lo_s: smt_isa::Reg,
    hi: smt_isa::Reg,
    body: impl Fn(&mut ProgramBuilder, smt_isa::Reg) + Copy,
) {
    b.li(pass, 0);
    b.li(npass, reps);
    for_range(b, pass, npass, |b| {
        b.mov(lo, lo_s);
        for_range(b, lo, hi, |b| body(b, lo));
    });
}

/// LL1 — hydro fragment: `x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])`.
#[must_use]
pub fn ll1(scale: Scale) -> Workload {
    let n = size(scale, 40, 301);
    let (q, r, t) = (0.5, 0.25, 0.125);
    let y: Vec<f64> = (0..n).map(synth).collect();
    let z: Vec<f64> = (0..n + 11).map(|i| synth(i + 7)).collect();

    let mut b = ProgramBuilder::new();
    b.align_to(4096);
    let yb = b.data_f64(&y);
    b.align_to(4096);
    let zb = b.data_f64(&z);
    b.align_to(4096);
    let xb = b.alloc_zeroed((n * 8) as u64);
    let [nreg, lo, lo_s, hi, pass, npass, addr, v1, v2, qr, rr, tr, ybr, zbr, xbr] = b.regs();
    b.li(nreg, n as i64);
    b.lif(qr, q);
    b.lif(rr, r);
    b.lif(tr, t);
    b.li(ybr, yb as i64);
    b.li(zbr, zb as i64);
    b.li(xbr, xb as i64);
    emit_partition(&mut b, nreg, lo_s, hi, addr);
    repeat_sweep(&mut b, passes(scale), pass, npass, lo, lo_s, hi, |b, k| {
        b.slli(addr, k, 3);
        b.add(addr, addr, zbr);
        b.ld(v1, addr, 80); // z[k+10]
        b.ld(v2, addr, 88); // z[k+11]
        b.fmul(v1, rr, v1);
        b.fmul(v2, tr, v2);
        b.fadd(v1, v1, v2);
        b.slli(addr, k, 3);
        b.add(addr, addr, ybr);
        b.ld(v2, addr, 0);
        b.fmul(v1, v2, v1);
        b.fadd(v1, qr, v1);
        b.slli(addr, k, 3);
        b.add(addr, addr, xbr);
        b.sd(v1, addr, 0);
    });
    b.halt();

    let expected: Vec<f64> = (0..n)
        .map(|k| q + y[k] * (r * z[k + 10] + t * z[k + 11]))
        .collect();
    Workload::from_parts(
        WorkloadKind::Ll1,
        b,
        Box::new(move |words| check_f64_array("LL1", "x", MemView::new(words), xb, &expected)),
    )
}

/// LL2 — ICCG-style strided gather (simplified; see crate docs):
/// `x[i] = z[2i]*y[i] + z[2i+1]`.
#[must_use]
pub fn ll2(scale: Scale) -> Workload {
    let n = size(scale, 40, 201);
    let y: Vec<f64> = (0..n).map(|i| synth(i + 3)).collect();
    let z: Vec<f64> = (0..2 * n).map(|i| synth(i + 19)).collect();

    let mut b = ProgramBuilder::new();
    b.align_to(4096);
    let yb = b.data_f64(&y);
    b.align_to(4096);
    let zb = b.data_f64(&z);
    b.align_to(4096);
    let xb = b.alloc_zeroed((n * 8) as u64);
    let [nreg, lo, lo_s, hi, pass, npass, scratch, addr, v1, v2, ybr, zbr, xbr] = b.regs();
    b.li(nreg, n as i64);
    b.li(ybr, yb as i64);
    b.li(zbr, zb as i64);
    b.li(xbr, xb as i64);
    emit_partition(&mut b, nreg, lo_s, hi, scratch);
    repeat_sweep(&mut b, passes(scale), pass, npass, lo, lo_s, hi, |b, i| {
        b.slli(addr, i, 4); // 2i words = 16i bytes
        b.add(addr, addr, zbr);
        b.ld(v1, addr, 0); // z[2i]
        b.ld(v2, addr, 8); // z[2i+1]
        b.slli(addr, i, 3);
        b.add(addr, addr, ybr);
        b.ld(scratch, addr, 0); // y[i] (scratch reused as a value reg)
        b.fmul(v1, v1, scratch);
        b.fadd(v1, v1, v2);
        b.slli(addr, i, 3);
        b.add(addr, addr, xbr);
        b.sd(v1, addr, 0);
    });
    b.halt();

    let expected: Vec<f64> = (0..n).map(|i| z[2 * i] * y[i] + z[2 * i + 1]).collect();
    Workload::from_parts(
        WorkloadKind::Ll2,
        b,
        Box::new(move |words| check_f64_array("LL2", "x", MemView::new(words), xb, &expected)),
    )
}

/// LL3 — inner product: per-thread partial sums, a barrier, then thread 0
/// combines the partials into a single scalar.
#[must_use]
pub fn ll3(scale: Scale) -> Workload {
    let n = size(scale, 64, 451);
    let x: Vec<f64> = (0..n).map(|i| synth(i + 5)).collect();
    let z: Vec<f64> = (0..n).map(|i| synth(i + 31)).collect();

    let mut b = ProgramBuilder::new();
    b.align_to(4096);
    let xbase = b.data_f64(&x);
    b.align_to(4096);
    let zbase = b.data_f64(&z);
    let partial = b.alloc_zeroed(6 * 8);
    let bar = b.alloc_zeroed(8);
    let out = b.alloc_zeroed(8);
    let [nreg, lo, lo_s, hi, pass, npass, addr, v1, v2, acc, barr, zero, xbr, zbr, pbr] = b.regs();
    let nt = b.nthreads_reg();
    let tid = b.tid_reg();
    b.li(nreg, n as i64);
    b.li(zero, 0);
    b.li(xbr, xbase as i64);
    b.li(zbr, zbase as i64);
    b.li(pbr, partial as i64);
    emit_partition(&mut b, nreg, lo_s, hi, addr);
    // Each pass recomputes the partial sum from scratch (idempotent), so
    // repeated sweeps exercise cache reuse without changing the answer.
    b.li(pass, 0);
    b.li(npass, passes(scale));
    for_range(&mut b, pass, npass, |b| {
        b.li(acc, 0); // 0.0 bits
        b.mov(lo, lo_s);
        for_range(b, lo, hi, |b| {
            b.slli(addr, lo, 3);
            b.add(addr, addr, zbr);
            b.ld(v1, addr, 0);
            b.slli(addr, lo, 3);
            b.add(addr, addr, xbr);
            b.ld(v2, addr, 0);
            b.fmul(v1, v1, v2);
            b.fadd(acc, acc, v1);
        });
    });
    // partial[tid] = acc
    b.slli(addr, tid, 3);
    b.add(addr, addr, pbr);
    b.sd(acc, addr, 0);
    // barrier, then thread 0 combines in thread order
    b.li(barr, bar as i64);
    emit_barrier(&mut b, barr, nt);
    let done = b.label();
    b.bne(tid, zero, done);
    b.li(acc, 0);
    b.li(lo, 0);
    for_range(&mut b, lo, nt, |b| {
        b.slli(addr, lo, 3);
        b.add(addr, addr, pbr);
        b.ld(v1, addr, 0);
        b.fadd(acc, acc, v1);
    });
    b.li(addr, out as i64);
    b.sd(acc, addr, 0);
    b.bind(done);
    b.halt();

    // The checker cannot know the thread count, so it accepts the combined
    // sum for any partition 1..=6 (all are reassociations of the same
    // inner product).
    Workload::from_parts(
        WorkloadKind::Ll3,
        b,
        Box::new(move |words| {
            let mem = MemView::new(words);
            let got = mem.f64(out);
            for threads in 1..=6usize {
                let chunk = n / threads;
                let mut total = 0.0f64;
                for t in 0..threads {
                    let lo = t * chunk;
                    let hi = if t + 1 == threads { n } else { lo + chunk };
                    let mut p = 0.0f64;
                    for i in lo..hi {
                        p += z[i] * x[i];
                    }
                    total += p;
                }
                if crate::common::approx_eq(got, total) {
                    return Ok(());
                }
            }
            Err(CheckError {
                benchmark: "LL3",
                detail: format!("inner product {got} matches no thread count's reference"),
            })
        }),
    )
}

/// LL5 — tri-diagonal elimination: `x[i] = z[i]*(y[i] - x[i-1])`, a serial
/// chain. Iterations are dealt cyclically and hand off through a `done[]`
/// flag array with `WAIT`/`POST` — heavy synchronization that makes this
/// the benchmark multithreading *hurts*, as in the paper.
#[must_use]
pub fn ll5(scale: Scale) -> Workload {
    let n = size(scale, 24, 501);
    let x0 = 0.3;
    let y: Vec<f64> = (0..n).map(|i| synth(i + 13)).collect();
    let z: Vec<f64> = (0..n).map(|i| synth(i + 41).min(0.9)).collect();

    let mut b = ProgramBuilder::new();
    let mut xinit = vec![0.0; n];
    xinit[0] = x0;
    let xb = b.data_f64(&xinit);
    let yb = b.data_f64(&y);
    let zb = b.data_f64(&z);
    // done[0] = 1 so the chain can start.
    let mut done_init = vec![0u64; n];
    done_init[0] = 1;
    let db = b.data_u64(&done_init);
    let [nreg, one, i, a1, a2, vx, vy, xbr, ybr, zbr, dbr] = b.regs();
    let nt = b.nthreads_reg();
    let tid = b.tid_reg();
    b.li(nreg, n as i64);
    b.li(one, 1);
    b.li(xbr, xb as i64);
    b.li(ybr, yb as i64);
    b.li(zbr, zb as i64);
    b.li(dbr, db as i64);
    b.addi(i, tid, 1); // first owned index
    let end = b.label();
    let top = b.label();
    b.bge(i, nreg, end);
    b.bind(top);
    // wait for done[i-1]
    b.slli(a1, i, 3);
    b.add(a1, a1, dbr);
    b.addi(a1, a1, -8); // &done[i-1]
    b.wait(a1, one);
    b.addi(a1, a1, 8); // &done[i]
                       // x[i] = z[i]*(y[i] - x[i-1])
    b.slli(a2, i, 3);
    b.add(a2, a2, xbr);
    b.ld(vx, a2, -8); // x[i-1]
    b.slli(vy, i, 3);
    b.add(vy, vy, ybr);
    b.ld(vy, vy, 0); // y[i]
    b.fsub(vy, vy, vx);
    b.slli(vx, i, 3);
    b.add(vx, vx, zbr);
    b.ld(vx, vx, 0); // z[i]
    b.fmul(vx, vx, vy);
    b.sd(vx, a2, 0);
    b.post(a1); // publish done[i]
    b.add(i, i, nt);
    b.blt(i, nreg, top);
    b.bind(end);
    b.halt();

    let mut expected = vec![0.0f64; n];
    expected[0] = x0;
    for k in 1..n {
        expected[k] = z[k] * (y[k] - expected[k - 1]);
    }
    Workload::from_parts(
        WorkloadKind::Ll5,
        b,
        Box::new(move |words| check_f64_array("LL5", "x", MemView::new(words), xb, &expected)),
    )
}

/// LL7 — equation-of-state fragment, the FLOP-dense fully parallel loop:
///
/// ```text
/// x[k] = u[k] + r*(z[k] + r*y[k])
///       + t*(u[k+3] + r*(u[k+2] + r*u[k+1])
///       + t*(u[k+6] + q*(u[k+5] + q*u[k+4])))
/// ```
#[must_use]
pub fn ll7(scale: Scale) -> Workload {
    let n = size(scale, 32, 201);
    let (q, r, t) = (0.5, 0.25, 0.125);
    let u: Vec<f64> = (0..n + 6).map(|i| synth(i + 23)).collect();
    let y: Vec<f64> = (0..n).map(|i| synth(i + 3)).collect();
    let z: Vec<f64> = (0..n).map(|i| synth(i + 59)).collect();

    let mut b = ProgramBuilder::new();
    let ub = b.data_f64(&u);
    b.align_to(4096);
    let yb = b.data_f64(&y);
    b.align_to(4096);
    let zb = b.data_f64(&z);
    b.align_to(4096);
    let xb = b.alloc_zeroed((n * 8) as u64);
    let [nreg, lo, lo_s, hi, pass, npass, addr, v1, v2, v3, qr, rr, tr, ubr, ybr, zbr, xbr] =
        b.regs();
    b.li(nreg, n as i64);
    b.lif(qr, q);
    b.lif(rr, r);
    b.lif(tr, t);
    b.li(ubr, ub as i64);
    b.li(ybr, yb as i64);
    b.li(zbr, zb as i64);
    b.li(xbr, xb as i64);
    emit_partition(&mut b, nreg, lo_s, hi, addr);
    repeat_sweep(&mut b, passes(scale), pass, npass, lo, lo_s, hi, |b, lo| {
        b.slli(addr, lo, 3);
        b.add(addr, addr, ubr); // &u[k]
                                // inner t-term: u[k+6] + q*(u[k+5] + q*u[k+4])
        b.ld(v1, addr, 32); // u[k+4]
        b.fmul(v1, qr, v1);
        b.ld(v2, addr, 40); // u[k+5]
        b.fadd(v1, v2, v1);
        b.fmul(v1, qr, v1);
        b.ld(v2, addr, 48); // u[k+6]
        b.fadd(v1, v2, v1);
        b.fmul(v1, tr, v1);
        // middle r-term: u[k+3] + r*(u[k+2] + r*u[k+1])
        b.ld(v2, addr, 8); // u[k+1]
        b.fmul(v2, rr, v2);
        b.ld(v3, addr, 16); // u[k+2]
        b.fadd(v2, v3, v2);
        b.fmul(v2, rr, v2);
        b.ld(v3, addr, 24); // u[k+3]
        b.fadd(v2, v3, v2);
        b.fadd(v1, v2, v1);
        b.fmul(v1, tr, v1);
        // leading term: u[k] + r*(z[k] + r*y[k])
        b.slli(v2, lo, 3);
        b.add(v2, v2, ybr);
        b.ld(v2, v2, 0); // y[k]
        b.fmul(v2, rr, v2);
        b.slli(v3, lo, 3);
        b.add(v3, v3, zbr);
        b.ld(v3, v3, 0); // z[k]
        b.fadd(v2, v3, v2);
        b.fmul(v2, rr, v2);
        b.ld(v3, addr, 0); // u[k]
        b.fadd(v2, v3, v2);
        b.fadd(v1, v2, v1);
        b.slli(addr, lo, 3);
        b.add(addr, addr, xbr);
        b.sd(v1, addr, 0);
    });
    b.halt();

    let expected: Vec<f64> = (0..n)
        .map(|k| {
            let inner = t * (q * ((q * u[k + 4]) + u[k + 5]) + u[k + 6]);
            let middle = r * ((r * u[k + 1]) + u[k + 2]) + u[k + 3];
            let lead = r * ((r * y[k]) + z[k]) + u[k];
            lead + t * (middle + inner)
        })
        .collect();
    Workload::from_parts(
        WorkloadKind::Ll7,
        b,
        Box::new(move |words| check_f64_array("LL7", "x", MemView::new(words), xb, &expected)),
    )
}

/// LL12 — first difference: `x[k] = y[k+1] - y[k]`. One FLOP per two loads:
/// the memory-bound member of the set.
#[must_use]
pub fn ll12(scale: Scale) -> Workload {
    let n = size(scale, 64, 451);
    let y: Vec<f64> = (0..n + 1).map(|i| synth(i + 17)).collect();

    let mut b = ProgramBuilder::new();
    b.align_to(4096);
    let yb = b.data_f64(&y);
    b.align_to(4096);
    let xb = b.alloc_zeroed((n * 8) as u64);
    let [nreg, lo, lo_s, hi, pass, npass, addr, v1, v2, ybr, xbr] = b.regs();
    b.li(nreg, n as i64);
    b.li(ybr, yb as i64);
    b.li(xbr, xb as i64);
    emit_partition(&mut b, nreg, lo_s, hi, addr);
    repeat_sweep(&mut b, passes(scale), pass, npass, lo, lo_s, hi, |b, k| {
        b.slli(addr, k, 3);
        b.add(addr, addr, ybr);
        b.ld(v1, addr, 8); // y[k+1]
        b.ld(v2, addr, 0); // y[k]
        b.fsub(v1, v1, v2);
        b.slli(addr, k, 3);
        b.add(addr, addr, xbr);
        b.sd(v1, addr, 0);
    });
    b.halt();

    let expected: Vec<f64> = (0..n).map(|k| y[k + 1] - y[k]).collect();
    Workload::from_parts(
        WorkloadKind::Ll12,
        b,
        Box::new(move |words| check_f64_array("LL12", "x", MemView::new(words), xb, &expected)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::interp::Interp;

    fn run_kernel(w: &Workload, threads: usize) -> Vec<u64> {
        let p = w.build(threads).unwrap();
        let mut interp = Interp::new(&p, threads);
        interp.run().unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        interp.mem_words().to_vec()
    }

    #[test]
    fn ll1_correct_across_thread_counts() {
        let w = ll1(Scale::Test);
        for threads in [1, 2, 4, 5] {
            w.check(&run_kernel(&w, threads)).unwrap();
        }
    }

    #[test]
    fn ll3_reduction_correct() {
        let w = ll3(Scale::Test);
        for threads in [1, 3, 6] {
            w.check(&run_kernel(&w, threads)).unwrap();
        }
    }

    #[test]
    fn ll5_serial_chain_correct_under_cyclic_distribution() {
        let w = ll5(Scale::Test);
        for threads in [1, 2, 4, 6] {
            w.check(&run_kernel(&w, threads)).unwrap();
        }
    }

    #[test]
    fn ll7_and_ll12_correct() {
        for w in [ll7(Scale::Test), ll12(Scale::Test)] {
            for threads in [1, 4] {
                w.check(&run_kernel(&w, threads)).unwrap();
            }
        }
    }

    #[test]
    fn checkers_reject_corrupted_memory() {
        // These three lay their checked output array out *last* in memory,
        // so the corrupted word is guaranteed to be inside it.
        for w in [ll1(Scale::Test), ll2(Scale::Test), ll12(Scale::Test)] {
            let mut words = run_kernel(&w, 2);
            let idx = (words.len() / 2..words.len())
                .rev()
                .find(|&i| words[i] != 0)
                .expect("output exists");
            words[idx] ^= 1 << 40;
            assert!(
                w.check(&words).is_err(),
                "{}: corruption must be detected",
                w.name()
            );
        }
    }

    #[test]
    fn kernels_encode_to_valid_machine_words() {
        // Every emitted instruction must fit the 32-bit encoding (no
        // oversized immediates sneak in through the builder).
        for w in [
            ll1(Scale::Test),
            ll2(Scale::Test),
            ll3(Scale::Test),
            ll5(Scale::Test),
            ll7(Scale::Test),
            ll12(Scale::Test),
        ] {
            let p = w.build(4).unwrap();
            let words = p
                .encode_text()
                .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
            assert_eq!(words.len(), p.len());
        }
    }
}
