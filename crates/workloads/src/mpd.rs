//! MPD — particle advection with irregular table lookups, standing in for
//! SPLASH MP3D (see DESIGN.md's substitution notes).
//!
//! Each particle integrates position and velocity over a few steps; the
//! acceleration is fetched from a lookup table indexed by the *truncated
//! position* — a data-dependent, irregular access pattern that stresses the
//! shared cache the way the original's cell structure does.

use smt_isa::builder::ProgramBuilder;

use crate::common::{check_f64_array, emit_partition, for_range, synth, MemView};
use crate::{Scale, Workload, WorkloadKind};

const CELLS: usize = 64;

/// Builds the MPD workload at the given scale.
#[must_use]
pub fn mpd(scale: Scale) -> Workload {
    let (n, steps) = match scale {
        Scale::Test => (32usize, 2usize),
        Scale::Paper => (2001, 8),
    };
    let dt = 0.1f64;
    let damp = 0.9f64;
    let x0: Vec<f64> = (0..n).map(|i| synth(i + 2)).collect();
    let v0: Vec<f64> = (0..n).map(|i| synth(i + 47)).collect();
    let table: Vec<f64> = (0..CELLS).map(|i| synth(i + 83) * 0.1).collect();

    let mut b = ProgramBuilder::new();
    let xb = b.data_f64(&x0);
    let vb = b.data_f64(&v0);
    let tb = b.data_f64(&table);
    let [xbr, vbr, tbr, dtr, dampr, nreg, lo, hi, s, steps_r, vx, vv, addr, addr2, idx] = b.regs();
    b.li(xbr, xb as i64);
    b.li(vbr, vb as i64);
    b.li(tbr, tb as i64);
    b.lif(dtr, dt);
    b.lif(dampr, damp);
    b.li(nreg, n as i64);
    b.li(steps_r, steps as i64);
    emit_partition(&mut b, nreg, lo, hi, addr);
    for_range(&mut b, lo, hi, |b| {
        b.slli(addr, lo, 3);
        b.add(addr, addr, xbr);
        b.slli(addr2, lo, 3);
        b.add(addr2, addr2, vbr);
        b.ld(vx, addr, 0);
        b.ld(vv, addr2, 0);
        b.li(s, 0);
        for_range(b, s, steps_r, |b| {
            b.fmul(idx, vv, dtr);
            b.fadd(vx, vx, idx); // x += v*dt
            b.f2i(idx, vx);
            b.andi(idx, idx, (CELLS - 1) as i32); // cell index
            b.slli(idx, idx, 3);
            b.add(idx, idx, tbr);
            b.ld(idx, idx, 0); // accel[cell]
            b.fmul(vv, vv, dampr);
            b.fadd(vv, vv, idx); // v = v*damp + accel
        });
        b.sd(vx, addr, 0);
        b.sd(vv, addr2, 0);
    });
    b.halt();

    let mut ex = x0;
    let mut ev = v0;
    for i in 0..n {
        for _ in 0..steps {
            ex[i] += ev[i] * dt;
            let cell = ((ex[i] as i64) as u64 & (CELLS as u64 - 1)) as usize;
            ev[i] = ev[i] * damp + table[cell];
        }
    }
    Workload::from_parts(
        WorkloadKind::Mpd,
        b,
        Box::new(move |words| {
            let mem = MemView::new(words);
            check_f64_array("MPD", "x", mem, xb, &ex)?;
            check_f64_array("MPD", "v", mem, vb, &ev)
        }),
    )
}

/// Exposes the synthetic acceleration table for tests and docs.
#[must_use]
pub fn reference_table() -> Vec<f64> {
    (0..CELLS).map(|i| synth(i + 83) * 0.1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::interp::Interp;

    #[test]
    fn mpd_correct_for_several_thread_counts() {
        let w = mpd(Scale::Test);
        for threads in [1, 2, 5] {
            let p = w.build(threads).unwrap();
            let mut interp = Interp::new(&p, threads);
            interp.run().unwrap();
            w.check(interp.mem_words())
                .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
        }
    }

    #[test]
    fn truncation_semantics_match_the_isa() {
        // The reference's cell computation must equal the kernel's
        // f2i + andi sequence for negative positions too.
        for x in [-3.7f64, -0.2, 0.0, 1.9, 100.4] {
            let isa = {
                let t = smt_isa::semantics::alu_result(
                    smt_isa::Opcode::F2I,
                    smt_isa::semantics::from_f64(x),
                    0,
                    0,
                );
                smt_isa::semantics::alu_result(smt_isa::Opcode::Andi, t, 0, 63)
            };
            let rust = (x as i64) as u64 & 63;
            assert_eq!(isa, rust, "x = {x}");
        }
    }
}
