//! Laplace — Jacobi relaxation on a 2-D grid with per-iteration barriers.
//!
//! Interior rows are block-partitioned across threads; each iteration
//! updates `dst` from `src` with the 4-point stencil, synchronizes on a
//! phase-counting barrier, and swaps the buffers. The per-iteration barrier
//! traffic and the row-boundary sharing give this benchmark the larger
//! working set and synchronization cost characteristic of Group II.

use smt_isa::builder::ProgramBuilder;

use crate::common::{check_f64_array, emit_partition, for_range, synth, MemView};
use crate::{Scale, Workload, WorkloadKind};

/// Builds the Laplace workload at the given scale.
///
/// # Panics
///
/// Panics if the internal grid constant exceeds the displacement encoding
/// (cannot happen for the built-in scales).
#[must_use]
pub fn laplace(scale: Scale) -> Workload {
    let (g, iters) = match scale {
        Scale::Test => (8usize, 2usize),
        Scale::Paper => (32, 4),
    };
    let w = g + 2; // grid width including boundary
    let stride = (w * 8) as i32;
    assert!(stride <= 2047, "grid too wide for the 12-bit displacement");

    // Initial grid: fixed boundary, zero interior. Both buffers share the
    // boundary so reads of the swapped buffer's edge are correct.
    let mut init = vec![0.0f64; w * w];
    for r in 0..w {
        for c in 0..w {
            if r == 0 || c == 0 || r == w - 1 || c == w - 1 {
                init[r * w + c] = synth(r * w + c);
            }
        }
    }

    let mut b = ProgramBuilder::new();
    // Page-aligned grid buffers (as a real allocator would hand out): in
    // the direct-mapped cache the two buffers' corresponding rows collide,
    // which is what separates the cache organizations in Figure 8.
    b.align_to(8192);
    let buf_a = b.data_f64(&init);
    b.align_to(8192);
    let buf_b = b.data_f64(&init);
    let bar = b.alloc_zeroed(8);
    let [srcb, dstb, tmp, quarter, lo_s, hi, i, j, jlim, addr, v1, v2, barr, phase, it, iters_r, greg] =
        b.regs();
    let nt = b.nthreads_reg();
    b.li(greg, g as i64);
    b.li(srcb, buf_a as i64);
    b.li(dstb, buf_b as i64);
    b.lif(quarter, 0.25);
    b.li(barr, bar as i64);
    b.li(phase, 0);
    b.li(it, 0);
    b.li(iters_r, iters as i64);
    b.li(jlim, (g + 1) as i64);
    emit_partition(&mut b, greg, lo_s, hi, tmp);
    b.addi(lo_s, lo_s, 1); // interior rows are 1..=g
    b.addi(hi, hi, 1);
    for_range(&mut b, it, iters_r, |b| {
        b.mov(i, lo_s);
        for_range(b, i, hi, |b| {
            // src row base
            b.li(v1, stride as i64);
            b.mul(tmp, i, v1);
            b.add(tmp, tmp, srcb);
            b.li(j, 1);
            for_range(b, j, jlim, |b| {
                b.slli(addr, j, 3);
                b.add(addr, addr, tmp);
                b.ld(v1, addr, -stride); // up
                b.ld(v2, addr, stride); // down
                b.fadd(v1, v1, v2);
                b.ld(v2, addr, -8); // left
                b.fadd(v1, v1, v2);
                b.ld(v2, addr, 8); // right
                b.fadd(v1, v1, v2);
                b.fmul(v1, v1, quarter);
                b.sub(v2, addr, srcb);
                b.add(v2, v2, dstb);
                b.sd(v1, v2, 0);
            });
        });
        // Phase-counting barrier: wait for (it+1) * nthreads arrivals.
        b.add(phase, phase, nt);
        b.post(barr);
        b.wait(barr, phase);
        // Swap buffers.
        b.mov(tmp, srcb);
        b.mov(srcb, dstb);
        b.mov(dstb, tmp);
    });
    b.halt();

    // Reference: the same Jacobi dance with identical FP ordering.
    let mut a = init.clone();
    let mut c = init;
    for _ in 0..iters {
        for r in 1..=g {
            for col in 1..=g {
                let v = (((a[(r - 1) * w + col] + a[(r + 1) * w + col]) + a[r * w + col - 1])
                    + a[r * w + col + 1])
                    * 0.25;
                c[r * w + col] = v;
            }
        }
        std::mem::swap(&mut a, &mut c);
    }
    // After the swaps, `a` mirrors the kernel's final `srcb` buffer, which
    // is buf_a for even iteration counts and buf_b for odd.
    let (expect_a, expect_b) = if iters % 2 == 0 { (a, c) } else { (c, a) };

    Workload::from_parts(
        WorkloadKind::Laplace,
        b,
        Box::new(move |words| {
            let mem = MemView::new(words);
            check_f64_array("Laplace", "bufA", mem, buf_a, &expect_a)?;
            check_f64_array("Laplace", "bufB", mem, buf_b, &expect_b)
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::interp::Interp;

    #[test]
    fn laplace_correct_for_several_thread_counts() {
        let w = laplace(Scale::Test);
        for threads in [1, 2, 4] {
            let p = w.build(threads).unwrap();
            let mut interp = Interp::new(&p, threads);
            interp
                .run()
                .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
            w.check(interp.mem_words())
                .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
        }
    }

    #[test]
    fn laplace_encodes() {
        let w = laplace(Scale::Test);
        w.build(4).unwrap().encode_text().unwrap();
    }
}
