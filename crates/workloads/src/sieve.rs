//! Sieve of Eratosthenes with the outer (prime-candidate) loop dealt
//! cyclically across threads.
//!
//! Threads race benignly: a thread may see a candidate's flag before
//! another thread has cleared it and then sieve a composite's multiples —
//! but every such multiple is itself composite, so the final flag array is
//! deterministic regardless of interleaving. (Integer-only: the paper notes
//! the SDSP targets integer processing; Sieve is its classic integer
//! benchmark.)

use smt_isa::builder::ProgramBuilder;

use crate::common::check_u64_array;
use crate::{Scale, Workload, WorkloadKind};

/// Builds the sieve workload at the given scale.
#[must_use]
pub fn sieve(scale: Scale) -> Workload {
    let m = match scale {
        Scale::Test => 128usize,
        Scale::Paper => 4096,
    };
    let mut flags = vec![1u64; m];
    flags[0] = 0;
    flags[1] = 0;

    let mut b = ProgramBuilder::new();
    let fb = b.data_u64(&flags);
    let [fbr, mreg, p, k, zv, addr, v1] = b.regs();
    let nt = b.nthreads_reg();
    let tid = b.tid_reg();
    b.li(fbr, fb as i64);
    b.li(mreg, m as i64);
    b.li(zv, 0);
    b.addi(p, tid, 2);
    let outer = b.label();
    let end = b.label();
    let next = b.label();
    b.bind(outer);
    b.mul(v1, p, p);
    b.bge(v1, mreg, end); // p*p >= m: no multiples left for any larger p
    b.slli(addr, p, 3);
    b.add(addr, addr, fbr);
    b.ld(v1, addr, 0); // flag[p]
    b.beq(v1, zv, next); // composite candidate: skip
    b.mul(k, p, p);
    let inner = b.label();
    b.bind(inner);
    b.slli(addr, k, 3);
    b.add(addr, addr, fbr);
    b.sd(zv, addr, 0); // flag[k] = 0
    b.add(k, k, p);
    b.blt(k, mreg, inner);
    b.bind(next);
    b.add(p, p, nt);
    b.j(outer);
    b.bind(end);
    b.halt();

    let mut expected = flags;
    let mut p = 2usize;
    while p * p < m {
        if expected[p] == 1 {
            let mut k = p * p;
            while k < m {
                expected[k] = 0;
                k += p;
            }
        }
        p += 1;
    }
    Workload::from_parts(
        WorkloadKind::Sieve,
        b,
        Box::new(move |words| {
            check_u64_array("Sieve", "flags", crate::MemView::new(words), fb, &expected)
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::MemView;
    use smt_isa::interp::Interp;

    #[test]
    fn sieve_finds_the_primes() {
        let w = sieve(Scale::Test);
        for threads in [1, 2, 4, 6] {
            let p = w.build(threads).unwrap();
            let mut interp = Interp::new(&p, threads);
            interp.run().unwrap();
            w.check(interp.mem_words())
                .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
        }
    }

    #[test]
    fn known_primes_are_flagged() {
        let w = sieve(Scale::Test);
        let p = w.build(1).unwrap();
        let mut interp = Interp::new(&p, 1);
        interp.run().unwrap();
        let mem = MemView::new(interp.mem_words());
        let base = smt_isa::program::DATA_BASE;
        for prime in [2u64, 3, 5, 7, 11, 13, 127] {
            assert_eq!(mem.word(base + prime * 8), 1, "{prime} is prime");
        }
        for composite in [4u64, 9, 25, 121, 126] {
            assert_eq!(
                mem.word(base + composite * 8),
                0,
                "{composite} is composite"
            );
        }
    }
}
