//! Shared code-generation helpers and result checking.

use std::fmt;

use smt_isa::builder::ProgramBuilder;
use smt_isa::semantics::as_f64;
use smt_isa::{Reg, WORD_BYTES};

/// Error produced by a workload checker.
#[derive(Clone, PartialEq, Debug)]
pub struct CheckError {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// What differed.
    pub detail: String,
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.benchmark, self.detail)
    }
}

impl std::error::Error for CheckError {}

/// Read-only view over architectural memory words.
#[derive(Clone, Copy, Debug)]
pub struct MemView<'a> {
    words: &'a [u64],
}

impl<'a> MemView<'a> {
    /// Wraps a word array (index = byte address / 8).
    #[must_use]
    pub fn new(words: &'a [u64]) -> Self {
        MemView { words }
    }

    /// The word at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-range addresses.
    #[must_use]
    pub fn word(&self, addr: u64) -> u64 {
        assert_eq!(addr % WORD_BYTES, 0, "unaligned address {addr:#x}");
        self.words[(addr / WORD_BYTES) as usize]
    }

    /// The `f64` at byte address `addr`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned or out-of-range addresses.
    #[must_use]
    pub fn f64(&self, addr: u64) -> f64 {
        as_f64(self.word(addr))
    }
}

/// Relative/absolute floating-point comparison. Kernels and references
/// perform identical IEEE-754 operations in identical order, so results are
/// bit-equal in practice; the tolerance only guards against benign
/// reassociation if a kernel is ever optimized.
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-9 * scale
}

/// Compares an `f64` output array against its reference.
///
/// # Errors
///
/// Reports the first mismatching element.
pub fn check_f64_array(
    benchmark: &'static str,
    label: &str,
    mem: MemView<'_>,
    base: u64,
    expected: &[f64],
) -> Result<(), CheckError> {
    for (i, &want) in expected.iter().enumerate() {
        let got = mem.f64(base + i as u64 * WORD_BYTES);
        if !approx_eq(got, want) {
            return Err(CheckError {
                benchmark,
                detail: format!("{label}[{i}] = {got}, expected {want}"),
            });
        }
    }
    Ok(())
}

/// Compares a `u64` output array against its reference.
///
/// # Errors
///
/// Reports the first mismatching element.
pub fn check_u64_array(
    benchmark: &'static str,
    label: &str,
    mem: MemView<'_>,
    base: u64,
    expected: &[u64],
) -> Result<(), CheckError> {
    for (i, &want) in expected.iter().enumerate() {
        let got = mem.word(base + i as u64 * WORD_BYTES);
        if got != want {
            return Err(CheckError {
                benchmark,
                detail: format!("{label}[{i}] = {got}, expected {want}"),
            });
        }
    }
    Ok(())
}

/// Deterministic pseudo-random data in roughly `[0.1, 1.1)` — stands in for
/// the benchmark input sets without pulling in an RNG.
#[must_use]
pub fn synth(i: usize) -> f64 {
    0.1 + ((i.wrapping_mul(37) + 11) % 101) as f64 * 0.01
}

/// Emits a counted loop: `for (; i < limit; i += 1) body`, with one branch
/// per iteration (bottom-tested, top-guarded). `i` and `limit` must be
/// live registers; `i` advances by 1 per iteration.
pub fn for_range(
    b: &mut ProgramBuilder,
    i: Reg,
    limit: Reg,
    body: impl FnOnce(&mut ProgramBuilder),
) {
    let end = b.label();
    let top = b.label();
    b.bge(i, limit, end);
    b.bind(top);
    body(b);
    b.addi(i, i, 1);
    b.blt(i, limit, top);
    b.bind(end);
}

/// Emits the block partition of `[0, n)` for this thread:
/// `lo = tid * (n / nthreads)`, `hi = lo + chunk`, with the last thread
/// absorbing the remainder. Clobbers `scratch`.
pub fn emit_partition(b: &mut ProgramBuilder, n: Reg, lo: Reg, hi: Reg, scratch: Reg) {
    let keep = b.label();
    b.div(scratch, n, b.nthreads_reg()); // chunk
    b.mul(lo, b.tid_reg(), scratch);
    b.add(hi, lo, scratch);
    b.addi(scratch, b.tid_reg(), 1);
    b.bne(scratch, b.nthreads_reg(), keep);
    b.mov(hi, n); // last thread takes the remainder
    b.bind(keep);
}

/// Emits a one-shot barrier: arrive (`post`) then wait until all
/// `target` arrivals are visible. `bar` holds the barrier counter's address
/// and `target` the arrival count to wait for (typically `nthreads`).
pub fn emit_barrier(b: &mut ProgramBuilder, bar: Reg, target: Reg) {
    b.post(bar);
    b.wait(bar, target);
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::interp::Interp;

    #[test]
    fn for_range_executes_exact_count() {
        let mut b = ProgramBuilder::new();
        let out = b.alloc_zeroed(8);
        let [i, limit, acc, addr] = b.regs();
        b.li(i, 3);
        b.li(limit, 10);
        b.li(acc, 0);
        for_range(&mut b, i, limit, |b| b.addi(acc, acc, 1));
        b.li(addr, out as i64);
        b.sd(acc, addr, 0);
        b.halt();
        let p = b.build(1).unwrap();
        let mut interp = Interp::new(&p, 1);
        interp.run().unwrap();
        assert_eq!(interp.load_word(out), 7);
    }

    #[test]
    fn for_range_skips_empty_ranges() {
        let mut b = ProgramBuilder::new();
        let out = b.alloc_zeroed(8);
        let [i, limit, acc, addr] = b.regs();
        b.li(i, 5);
        b.li(limit, 5);
        b.li(acc, 0);
        for_range(&mut b, i, limit, |b| b.addi(acc, acc, 1));
        b.li(addr, out as i64);
        b.sd(acc, addr, 0);
        b.halt();
        let p = b.build(1).unwrap();
        let mut interp = Interp::new(&p, 1);
        interp.run().unwrap();
        assert_eq!(interp.load_word(out), 0);
    }

    #[test]
    fn partition_covers_range_without_overlap() {
        // Each thread marks its [lo, hi) slice; afterwards every element
        // must be marked exactly once.
        for threads in [1usize, 2, 3, 5, 6] {
            let n = 23u64;
            let mut b = ProgramBuilder::new();
            let marks = b.alloc_zeroed(n * 8);
            let [nreg, lo, hi, scratch, addr, v] = b.regs();
            b.li(nreg, n as i64);
            emit_partition(&mut b, nreg, lo, hi, scratch);
            for_range(&mut b, lo, hi, |b| {
                b.slli(addr, lo, 3);
                b.addi(addr, addr, marks as i32);
                b.ld(v, addr, 0);
                b.addi(v, v, 1);
                b.sd(v, addr, 0);
            });
            b.halt();
            let p = b.build(threads).unwrap();
            let mut interp = Interp::new(&p, threads);
            interp.run().unwrap();
            for k in 0..n {
                assert_eq!(
                    interp.load_word(marks + k * 8),
                    1,
                    "element {k} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn barrier_synchronizes_all_threads() {
        // Each thread adds 1 to a counter before the barrier; after the
        // barrier every thread reads the full count.
        let threads = 4;
        let mut b = ProgramBuilder::new();
        let bar = b.alloc_zeroed(8);
        let out = b.alloc_zeroed(6 * 8);
        let [barr, target, v, addr] = b.regs();
        b.li(barr, bar as i64);
        b.mov(target, b.nthreads_reg());
        emit_barrier(&mut b, barr, target);
        b.ld(v, barr, 0);
        b.slli(addr, b.tid_reg(), 3);
        b.addi(addr, addr, out as i32);
        b.sd(v, addr, 0);
        b.halt();
        let p = b.build(threads).unwrap();
        let mut interp = Interp::new(&p, threads);
        interp.run().unwrap();
        for tid in 0..threads as u64 {
            assert_eq!(interp.load_word(out + tid * 8), threads as u64);
        }
    }

    #[test]
    fn approx_eq_behaviour() {
        assert!(approx_eq(1.0, 1.0));
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.001));
        assert!(approx_eq(0.0, 0.0));
        assert!(approx_eq(1e20, 1e20 * (1.0 + 1e-12)));
    }

    #[test]
    fn synth_is_deterministic_and_bounded() {
        for i in 0..1000 {
            let v = synth(i);
            assert!((0.1..1.11).contains(&v));
            assert_eq!(v, synth(i));
        }
    }
}
