//! Water — O(N²) pairwise force computation plus integration, standing in
//! for SPLASH Water (see DESIGN.md's substitution notes).
//!
//! Phase 1 computes, for each owned particle, an anharmonic pair potential
//! `Σ d·d·(d+c)` over all other particles (multiply/add dense, like the
//! original's intra-molecular terms), finishing each particle with one
//! square root and one divide (`f = acc / (√|acc| + 1)`). A barrier
//! separates it from phase 2, which integrates positions, so no thread
//! reads a position already advanced by another.

use smt_isa::builder::ProgramBuilder;

use crate::common::{check_f64_array, emit_partition, for_range, synth, MemView};
use crate::{Scale, Workload, WorkloadKind};

/// Builds the water workload at the given scale.
#[must_use]
pub fn water(scale: Scale) -> Workload {
    let n = match scale {
        Scale::Test => 12usize,
        Scale::Paper => 96,
    };
    let c = 0.125f64;
    let dt = 1e-4f64;
    let x0: Vec<f64> = (0..n).map(|i| synth(i * 3 + 1)).collect();

    let mut b = ProgramBuilder::new();
    let xb = b.data_f64(&x0);
    let fb = b.alloc_zeroed((n * 8) as u64);
    let bar = b.alloc_zeroed(8);
    let [xbr, fbr, nreg, lo, hi, j, xi, acc, v1, v2, cr, dtr, addr, barr, onef] = b.regs();
    let nt = b.nthreads_reg();
    b.li(xbr, xb as i64);
    b.li(fbr, fb as i64);
    b.li(nreg, n as i64);
    b.lif(cr, c);
    b.lif(dtr, dt);
    b.lif(onef, 1.0);
    b.li(barr, bar as i64);
    // Phase 1: forces.
    emit_partition(&mut b, nreg, lo, hi, v1);
    for_range(&mut b, lo, hi, |b| {
        b.slli(addr, lo, 3);
        b.add(addr, addr, xbr);
        b.ld(xi, addr, 0);
        b.li(acc, 0); // 0.0
        b.li(j, 0);
        for_range(b, j, nreg, |b| {
            let skip = b.label();
            b.beq(j, lo, skip); // j == i
            b.slli(v1, j, 3);
            b.add(v1, v1, xbr);
            b.ld(v1, v1, 0); // x[j]
            b.fsub(v1, xi, v1); // d
            b.fadd(v2, v1, cr); // d + c
            b.fmul(v1, v1, v1); // d²
            b.fmul(v1, v1, v2); // d²(d + c)
            b.fadd(acc, acc, v1);
            b.bind(skip);
        });
        // f[i] = acc / (√|acc| + 1)
        b.fabs(v1, acc);
        b.fsqrt(v1, v1);
        b.fadd(v1, v1, onef);
        b.fdiv(acc, acc, v1);
        b.sub(v1, addr, xbr);
        b.add(v1, v1, fbr);
        b.sd(acc, v1, 0); // f[i]
    });
    // Barrier.
    b.post(barr);
    b.wait(barr, nt);
    // Phase 2: integrate.
    emit_partition(&mut b, nreg, lo, hi, v1);
    for_range(&mut b, lo, hi, |b| {
        b.slli(addr, lo, 3);
        b.add(addr, addr, xbr);
        b.sub(v1, addr, xbr);
        b.add(v1, v1, fbr);
        b.ld(v1, v1, 0); // f[i]
        b.fmul(v1, v1, dtr);
        b.ld(xi, addr, 0);
        b.fadd(xi, xi, v1);
        b.sd(xi, addr, 0);
    });
    b.halt();

    let mut forces = vec![0.0f64; n];
    for i in 0..n {
        let mut acc = 0.0f64;
        for jj in 0..n {
            if jj == i {
                continue;
            }
            let d = x0[i] - x0[jj];
            acc += (d * d) * (d + c);
        }
        forces[i] = acc / (acc.abs().sqrt() + 1.0);
    }
    let expected_x: Vec<f64> = (0..n).map(|i| x0[i] + forces[i] * dt).collect();
    let expected_f = forces;
    Workload::from_parts(
        WorkloadKind::Water,
        b,
        Box::new(move |words| {
            let mem = MemView::new(words);
            check_f64_array("Water", "f", mem, fb, &expected_f)?;
            check_f64_array("Water", "x", mem, xb, &expected_x)
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::interp::Interp;

    #[test]
    fn water_correct_for_several_thread_counts() {
        let w = water(Scale::Test);
        for threads in [1, 2, 4, 6] {
            let p = w.build(threads).unwrap();
            let mut interp = Interp::new(&p, threads);
            interp.run().unwrap();
            w.check(interp.mem_words())
                .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
        }
    }

    #[test]
    fn pair_potential_is_finite_and_antisymmetric_in_sign() {
        // d²(d+c) flips the cubic part's sign with d, keeping magnitudes
        // sane for the synthetic positions.
        let x: Vec<f64> = (0..8).map(|i| synth(i * 3 + 1)).collect();
        for i in 0..8 {
            for j in 0..8 {
                let d = x[i] - x[j];
                let v = (d * d) * (d + 0.125);
                assert!(v.is_finite());
            }
        }
    }
}
