//! Matrix — dense `C = A × B` multiply, rows block-partitioned.
//!
//! The classic data-parallel benchmark of the paper's Group II: regular
//! strided access (row-major A, column walks of B) and an FP
//! multiply/accumulate inner loop.

use smt_isa::builder::ProgramBuilder;

use crate::common::{check_f64_array, emit_partition, for_range, synth, MemView};
use crate::{Scale, Workload, WorkloadKind};

/// Builds the matrix-multiply workload at the given scale.
///
/// # Panics
///
/// Panics if the matrix is too large for the column-walk displacement
/// (cannot happen for the built-in scales).
#[must_use]
pub fn matrix(scale: Scale) -> Workload {
    let n = match scale {
        Scale::Test => 6usize,
        Scale::Paper => 24,
    };
    let row_bytes = (n * 8) as i32;
    assert!(
        row_bytes <= 2047,
        "matrix too large for the 12-bit immediate"
    );

    let a: Vec<f64> = (0..n * n).map(|i| synth(i + 29)).collect();
    let bm: Vec<f64> = (0..n * n).map(|i| synth(i + 71)).collect();

    let mut b = ProgramBuilder::new();
    let ab = b.data_f64(&a);
    let bb = b.data_f64(&bm);
    let cb = b.alloc_zeroed((n * n * 8) as u64);
    let [abr, bbr, cbr, nreg, lo, hi, j, k, acc, v1, v2, addr_a, addr_b, rowa, rowc] = b.regs();
    b.li(abr, ab as i64);
    b.li(bbr, bb as i64);
    b.li(cbr, cb as i64);
    b.li(nreg, n as i64);
    emit_partition(&mut b, nreg, lo, hi, v1);
    for_range(&mut b, lo, hi, |b| {
        b.li(v2, i64::from(row_bytes));
        b.mul(rowa, lo, v2);
        b.add(rowa, rowa, abr);
        b.sub(rowc, rowa, abr);
        b.add(rowc, rowc, cbr);
        b.li(j, 0);
        for_range(b, j, nreg, |b| {
            b.li(acc, 0); // 0.0
            b.slli(addr_b, j, 3);
            b.add(addr_b, addr_b, bbr);
            b.mov(addr_a, rowa);
            b.li(k, 0);
            for_range(b, k, nreg, |b| {
                b.ld(v1, addr_a, 0); // A[i][k]
                b.ld(v2, addr_b, 0); // B[k][j]
                b.fmul(v1, v1, v2);
                b.fadd(acc, acc, v1);
                b.addi(addr_a, addr_a, 8);
                b.addi(addr_b, addr_b, row_bytes);
            });
            b.slli(v1, j, 3);
            b.add(v1, v1, rowc);
            b.sd(acc, v1, 0);
        });
    });
    b.halt();

    let mut expected = vec![0.0f64; n * n];
    for i in 0..n {
        for jj in 0..n {
            let mut acc = 0.0f64;
            for kk in 0..n {
                acc += a[i * n + kk] * bm[kk * n + jj];
            }
            expected[i * n + jj] = acc;
        }
    }
    Workload::from_parts(
        WorkloadKind::Matrix,
        b,
        Box::new(move |words| check_f64_array("Matrix", "C", MemView::new(words), cb, &expected)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::interp::Interp;

    #[test]
    fn matrix_correct_for_several_thread_counts() {
        let w = matrix(Scale::Test);
        for threads in [1, 2, 3, 6] {
            let p = w.build(threads).unwrap();
            let mut interp = Interp::new(&p, threads);
            interp.run().unwrap();
            w.check(interp.mem_words())
                .unwrap_or_else(|e| panic!("{threads} threads: {e}"));
        }
    }

    #[test]
    fn matrix_detects_corruption() {
        let w = matrix(Scale::Test);
        let p = w.build(1).unwrap();
        let mut interp = Interp::new(&p, 1);
        interp.run().unwrap();
        let mut words = interp.mem_words().to_vec();
        let last_nonzero = (0..words.len()).rev().find(|&i| words[i] != 0).unwrap();
        words[last_nonzero] = 0;
        assert!(w.check(&words).is_err());
    }
}
