//! The paper's eleven benchmarks, written for the SDSP-like ISA in the
//! *homogeneous multitasking* style: every thread executes the same code on
//! a different partition of the data, distinguished only by the `tid`
//! register seeded at reset (Section 4 of the paper).
//!
//! **Group I** is the six Livermore loops; **Group II** is Laplace, MPD,
//! Matrix, Sieve, and Water. The OCR of the paper lost the loop numbers
//! (only LL7 survives), so LL1/LL2/LL3/LL5/LL7/LL12 were chosen to match
//! the stated selection criterion — "varying amounts of data parallelism,
//! and of different granularity" — with LL5 carrying the cross-iteration
//! dependence that requires explicit synchronization (the benchmark the
//! paper singles out as degrading under many threads). See DESIGN.md.
//!
//! Every workload carries a *checker* that validates the architectural
//! memory produced by a run against a plain-Rust reference implementation
//! performing the identical arithmetic, so both the functional interpreter
//! and the cycle simulator are verified end to end.
//!
//! ```
//! use smt_workloads::{workload, Scale, WorkloadKind};
//! use smt_isa::interp::Interp;
//!
//! let w = workload(WorkloadKind::Matrix, Scale::Test);
//! let program = w.build(2)?;
//! let mut interp = Interp::new(&program, 2);
//! interp.run()?;
//! w.check(interp.mem_words())?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod common;
pub mod laplace;
pub mod livermore;
pub mod matrix;
pub mod mpd;
pub mod sieve;
pub mod water;

use std::fmt;

use smt_isa::builder::{BuildError, ProgramBuilder};
use smt_isa::Program;

pub use common::{CheckError, MemView};

/// The two benchmark groups of Section 5.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Group {
    /// Livermore loops.
    I,
    /// Laplace, MPD, Matrix, Sieve, Water.
    II,
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Group::I => f.write_str("Group I (Livermore loops)"),
            Group::II => f.write_str("Group II"),
        }
    }
}

/// Identifies one of the eleven benchmarks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WorkloadKind {
    /// Livermore loop 1 — hydro fragment (fully parallel).
    Ll1,
    /// Livermore loop 2 — ICCG-style strided gather (simplified; see docs).
    Ll2,
    /// Livermore loop 3 — inner product (parallel reduction + combine).
    Ll3,
    /// Livermore loop 5 — tri-diagonal elimination (serial chain, explicit
    /// synchronization).
    Ll5,
    /// Livermore loop 7 — equation of state (FLOP-dense, fully parallel).
    Ll7,
    /// Livermore loop 12 — first difference (memory-bound).
    Ll12,
    /// Jacobi relaxation on a 2-D grid with per-iteration barriers.
    Laplace,
    /// Particle advection with irregular table lookups (MP3D stand-in).
    Mpd,
    /// Dense matrix multiply.
    Matrix,
    /// Sieve of Eratosthenes (benign write races, deterministic memory).
    Sieve,
    /// O(N²) pairwise forces + integration with a barrier (Water stand-in).
    Water,
}

impl WorkloadKind {
    /// All eleven benchmarks, Group I first.
    pub const ALL: [WorkloadKind; 11] = [
        WorkloadKind::Ll1,
        WorkloadKind::Ll2,
        WorkloadKind::Ll3,
        WorkloadKind::Ll5,
        WorkloadKind::Ll7,
        WorkloadKind::Ll12,
        WorkloadKind::Laplace,
        WorkloadKind::Mpd,
        WorkloadKind::Matrix,
        WorkloadKind::Sieve,
        WorkloadKind::Water,
    ];

    /// Display name, matching the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Ll1 => "LL1",
            WorkloadKind::Ll2 => "LL2",
            WorkloadKind::Ll3 => "LL3",
            WorkloadKind::Ll5 => "LL5",
            WorkloadKind::Ll7 => "LL7",
            WorkloadKind::Ll12 => "LL12",
            WorkloadKind::Laplace => "Laplace",
            WorkloadKind::Mpd => "MPD",
            WorkloadKind::Matrix => "Matrix",
            WorkloadKind::Sieve => "Sieve",
            WorkloadKind::Water => "Water",
        }
    }

    /// Which benchmark group the workload belongs to.
    #[must_use]
    pub fn group(self) -> Group {
        match self {
            WorkloadKind::Ll1
            | WorkloadKind::Ll2
            | WorkloadKind::Ll3
            | WorkloadKind::Ll5
            | WorkloadKind::Ll7
            | WorkloadKind::Ll12 => Group::I,
            _ => Group::II,
        }
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Problem sizes: small for fast unit tests, paper-scale for experiments.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Scale {
    /// Tiny inputs for test suites.
    Test,
    /// Evaluation-scale inputs used by the experiment harness.
    #[default]
    Paper,
}

type CheckFn = Box<dyn Fn(&[u64]) -> Result<(), CheckError> + Send + Sync>;

/// A benchmark: emitted kernel code plus a result checker.
///
/// The same `Workload` builds for any thread count (homogeneous
/// multitasking: the code partitions itself at runtime via `tid` and
/// `nthreads`).
pub struct Workload {
    kind: WorkloadKind,
    builder: ProgramBuilder,
    checker: CheckFn,
}

impl Workload {
    /// Assembles a workload from emitted code and its checker. Used by the
    /// per-benchmark constructors.
    #[must_use]
    pub fn from_parts(kind: WorkloadKind, builder: ProgramBuilder, checker: CheckFn) -> Self {
        Workload {
            kind,
            builder,
            checker,
        }
    }

    /// Which benchmark this is.
    #[must_use]
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Benchmark group.
    #[must_use]
    pub fn group(&self) -> Group {
        self.kind.group()
    }

    /// Links the kernel for an `n_threads` register partition.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] — in practice only if a kernel ever
    /// exceeded the 6-thread register window (the test suite builds every
    /// kernel at 6 threads to prove none does).
    pub fn build(&self, n_threads: usize) -> Result<Program, BuildError> {
        self.builder.build(n_threads)
    }

    /// Validates the architectural memory of a completed run against the
    /// plain-Rust reference implementation.
    ///
    /// # Errors
    ///
    /// [`CheckError`] describing the first mismatching location.
    pub fn check(&self, mem_words: &[u64]) -> Result<(), CheckError> {
        (self.checker)(mem_words)
    }
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload")
            .field("kind", &self.kind)
            .finish_non_exhaustive()
    }
}

/// Constructs one benchmark at the given scale.
#[must_use]
pub fn workload(kind: WorkloadKind, scale: Scale) -> Workload {
    match kind {
        WorkloadKind::Ll1 => livermore::ll1(scale),
        WorkloadKind::Ll2 => livermore::ll2(scale),
        WorkloadKind::Ll3 => livermore::ll3(scale),
        WorkloadKind::Ll5 => livermore::ll5(scale),
        WorkloadKind::Ll7 => livermore::ll7(scale),
        WorkloadKind::Ll12 => livermore::ll12(scale),
        WorkloadKind::Laplace => laplace::laplace(scale),
        WorkloadKind::Mpd => mpd::mpd(scale),
        WorkloadKind::Matrix => matrix::matrix(scale),
        WorkloadKind::Sieve => sieve::sieve(scale),
        WorkloadKind::Water => water::water(scale),
    }
}

/// All eleven benchmarks at the given scale.
#[must_use]
pub fn suite(scale: Scale) -> Vec<Workload> {
    WorkloadKind::ALL
        .iter()
        .map(|&k| workload(k, scale))
        .collect()
}

/// The Group-I (Livermore) benchmarks.
#[must_use]
pub fn group_i(scale: Scale) -> Vec<Workload> {
    suite(scale)
        .into_iter()
        .filter(|w| w.group() == Group::I)
        .collect()
}

/// The Group-II benchmarks.
#[must_use]
pub fn group_ii(scale: Scale) -> Vec<Workload> {
    suite(scale)
        .into_iter()
        .filter(|w| w.group() == Group::II)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::interp::Interp;

    #[test]
    fn groups_partition_the_suite() {
        assert_eq!(group_i(Scale::Test).len(), 6);
        assert_eq!(group_ii(Scale::Test).len(), 5);
        assert_eq!(suite(Scale::Test).len(), 11);
    }

    #[test]
    fn every_kernel_fits_the_six_thread_register_window() {
        for w in suite(Scale::Test) {
            w.build(6).unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        }
    }

    #[test]
    fn every_kernel_is_correct_on_the_reference_interpreter() {
        for w in suite(Scale::Test) {
            for threads in [1, 2, 3, 6] {
                let program = w.build(threads).unwrap();
                let mut interp = Interp::new(&program, threads);
                interp
                    .run()
                    .unwrap_or_else(|e| panic!("{} × {threads} threads: {e}", w.name()));
                w.check(interp.mem_words())
                    .unwrap_or_else(|e| panic!("{} × {threads} threads: {e}", w.name()));
            }
        }
    }

    #[test]
    fn names_and_groups_are_stable() {
        assert_eq!(WorkloadKind::Ll5.name(), "LL5");
        assert_eq!(WorkloadKind::Ll5.group(), Group::I);
        assert_eq!(WorkloadKind::Water.group(), Group::II);
        assert_eq!(WorkloadKind::ALL.len(), 11);
    }
}
