//! End-to-end tests over the repository's real `corpus/` directory:
//! the manifest loads, every kernel assembles, round-trips through the
//! disassembler bit-identically, and — run functionally at 1, 2, 4,
//! and 8 threads — satisfies its own check predicate.

use smt_corpus::{Corpus, CorpusError};
use smt_isa::asm::assemble;
use smt_isa::interp::Interp;
use smt_workloads::Scale;

fn repo_corpus() -> Corpus {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../corpus");
    Corpus::load(dir).expect("the repository corpus must load")
}

#[test]
fn manifest_declares_the_six_kernels() {
    let corpus = repo_corpus();
    let names: Vec<&str> = corpus.names().collect();
    assert_eq!(
        names,
        [
            "blur3",
            "chase",
            "matmul",
            "memstress",
            "primes",
            "quicksort"
        ],
        "workloads are sorted by name"
    );
}

#[test]
fn every_workload_assembles_at_both_scales() {
    let corpus = repo_corpus();
    for w in corpus.workloads() {
        for scale in [Scale::Test, Scale::Paper] {
            let p = w.build(scale).expect("kernel must assemble");
            assert!(!p.text().is_empty());
        }
    }
}

#[test]
fn assembly_round_trips_through_disassembly_bit_identically() {
    // The corpus loader's contract with the assembler: for every
    // kernel, assemble -> disassemble -> reassemble reproduces the
    // exact instruction sequence (labels collapse to absolute branch
    // targets in the disassembly, which the assembler accepts).
    let corpus = repo_corpus();
    for w in corpus.workloads() {
        let p = w.build(Scale::Test).unwrap();
        let dis = p.disassemble();
        let p2 = assemble(&dis, w.image(Scale::Test))
            .unwrap_or_else(|e| panic!("{}: disassembly must reassemble: {e}", w.name()));
        assert_eq!(
            p.text(),
            p2.text(),
            "{}: reassembled text must be bit-identical",
            w.name()
        );
        assert_eq!(p.data(), p2.data(), "{}: data image must survive", w.name());
    }
}

#[test]
fn every_workload_passes_its_own_check_at_1_2_4_and_8_threads() {
    let corpus = repo_corpus();
    for w in corpus.workloads() {
        let p = w.build(Scale::Test).unwrap();
        for threads in [1usize, 2, 4, 8] {
            let mut interp = Interp::new(&p, threads).with_fuel(50_000_000);
            interp
                .run()
                .unwrap_or_else(|e| panic!("{} at {threads} threads: {e}", w.name()));
            w.verify(interp.mem_words(), Scale::Test)
                .unwrap_or_else(|e| panic!("{} at {threads} threads: {e}", w.name()));
        }
    }
}

#[test]
fn paper_scale_passes_at_4_threads() {
    let corpus = repo_corpus();
    for w in corpus.workloads() {
        let p = w.build(Scale::Paper).unwrap();
        let mut interp = Interp::new(&p, 4).with_fuel(200_000_000);
        interp
            .run()
            .unwrap_or_else(|e| panic!("{} at paper scale: {e}", w.name()));
        w.verify(interp.mem_words(), Scale::Paper)
            .unwrap_or_else(|e| panic!("{} at paper scale: {e}", w.name()));
    }
}

#[test]
fn checkers_reject_a_corrupted_output_word() {
    let corpus = repo_corpus();
    for w in corpus.workloads() {
        let p = w.build(Scale::Test).unwrap();
        let mut interp = Interp::new(&p, 2).with_fuel(50_000_000);
        interp.run().unwrap();
        let mut words = interp.mem_words().to_vec();
        let l = w.layout(Scale::Test);
        let idx = (l.out_base / 8) as usize;
        words[idx] = words[idx].wrapping_add(1);
        assert!(
            w.verify(&words, Scale::Test).is_err(),
            "{}: corrupting OUT[0] must fail the predicate",
            w.name()
        );
    }
}

#[test]
fn load_rejects_a_name_colliding_with_a_builtin() {
    let dir = std::env::temp_dir().join(format!("smt-corpus-collide-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("manifest.toml"),
        "[sieve]\nsource = \"sieve.s\"\ncheck = \"copy\"\nn = 8\n",
    )
    .unwrap();
    std::fs::write(dir.join("sieve.s"), "halt\n").unwrap();
    let err = Corpus::load(&dir).unwrap_err();
    std::fs::remove_dir_all(&dir).ok();
    match err {
        CorpusError::Invalid { workload, message } => {
            assert_eq!(workload, "sieve");
            assert!(message.contains("built-in"), "{message}");
        }
        other => panic!("expected Invalid, got {other}"),
    }
}

#[test]
fn load_surfaces_assembler_diagnostics_with_position() {
    let dir = std::env::temp_dir().join(format!("smt-corpus-asm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("manifest.toml"),
        "[broken]\nsource = \"broken.s\"\ncheck = \"copy\"\nn = 8\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("broken.s"),
        "addi r2, r1, 1\nfrobnicate r2\nhalt\n",
    )
    .unwrap();
    let err = Corpus::load(&dir).unwrap_err();
    std::fs::remove_dir_all(&dir).ok();
    match err {
        CorpusError::Asm { workload, error } => {
            assert_eq!(workload, "broken");
            assert_eq!(error.line, 2, "diagnostic carries the source line");
            assert_eq!(error.token(), Some("frobnicate"));
        }
        other => panic!("expected Asm, got {other}"),
    }
}
