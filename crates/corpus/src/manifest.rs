//! A self-contained parser for the corpus manifest — the small TOML
//! subset the corpus actually needs: `[section]` headers, `key = value`
//! pairs where a value is a double-quoted string (no escapes) or a
//! decimal integer, and `#` comments. Anything else is a typed error
//! carrying the 1-based line number.
//!
//! The subset is deliberate: the workspace has no TOML dependency, and
//! a manifest that needs escapes or nested tables is a manifest that
//! has outgrown the corpus format.

use std::fmt;

/// A parsed `key = value` right-hand side.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ManValue {
    /// Double-quoted string.
    Str(String),
    /// Decimal integer (possibly negative).
    Int(i64),
}

impl ManValue {
    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ManValue::Str(s) => Some(s),
            ManValue::Int(_) => None,
        }
    }

    /// The integer payload, if this is an integer.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ManValue::Int(v) => Some(*v),
            ManValue::Str(_) => None,
        }
    }
}

/// One `[name]` section with its key/value pairs in file order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Section {
    /// Section name (the workload name).
    pub name: String,
    /// 1-based line of the section header, for diagnostics.
    pub line: usize,
    /// Keys in declaration order.
    pub entries: Vec<(String, ManValue)>,
}

impl Section {
    /// Looks a key up by name.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&ManValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A manifest parse error: what went wrong and on which line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ManifestError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "manifest line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ManifestError {}

fn err(line: usize, message: impl Into<String>) -> ManifestError {
    ManifestError {
        line,
        message: message.into(),
    }
}

/// Whether `name` is a legal section/key identifier: lowercase ASCII
/// letters, digits, and underscores, starting with a letter. The
/// charset keeps corpus names embeddable in cell ids and in the `'+'`
/// mix spelling of the serve protocol.
#[must_use]
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

fn parse_value(text: &str, line: usize) -> Result<ManValue, ManifestError> {
    if let Some(body) = text.strip_prefix('"') {
        let Some(s) = body.strip_suffix('"') else {
            return Err(err(line, format!("unterminated string {text:?}")));
        };
        if s.contains('"') || s.contains('\\') {
            return Err(err(
                line,
                format!("string {text:?} holds a quote or backslash (escapes unsupported)"),
            ));
        }
        return Ok(ManValue::Str(s.to_string()));
    }
    text.parse::<i64>().map(ManValue::Int).map_err(|_| {
        err(
            line,
            format!("value {text:?} is neither a string nor an integer"),
        )
    })
}

/// Parses manifest text into its sections, in file order.
///
/// # Errors
///
/// [`ManifestError`] on malformed lines, keys outside a section,
/// duplicate sections, duplicate keys, or illegal identifiers.
pub fn parse(text: &str) -> Result<Vec<Section>, ManifestError> {
    let mut sections: Vec<Section> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let code = raw.split('#').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        if let Some(header) = code.strip_prefix('[') {
            let Some(name) = header.strip_suffix(']') else {
                return Err(err(line, format!("malformed section header {code:?}")));
            };
            let name = name.trim();
            if !valid_name(name) {
                return Err(err(
                    line,
                    format!("section name {name:?} must be [a-z][a-z0-9_]*"),
                ));
            }
            if sections.iter().any(|s| s.name == name) {
                return Err(err(line, format!("duplicate section [{name}]")));
            }
            sections.push(Section {
                name: name.to_string(),
                line,
                entries: Vec::new(),
            });
            continue;
        }
        let Some((key, value)) = code.split_once('=') else {
            return Err(err(line, format!("expected `key = value`, got {code:?}")));
        };
        let key = key.trim();
        if !valid_name(key) {
            return Err(err(line, format!("key {key:?} must be [a-z][a-z0-9_]*")));
        }
        let Some(section) = sections.last_mut() else {
            return Err(err(line, format!("key {key:?} outside any [section]")));
        };
        if section.get(key).is_some() {
            return Err(err(
                line,
                format!("duplicate key {key:?} in [{}]", section.name),
            ));
        }
        let value = parse_value(value.trim(), line)?;
        section.entries.push((key.to_string(), value));
    }
    Ok(sections)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_strings_and_integers() {
        let text = "
# corpus manifest
[alpha]
source = \"alpha.s\"   # trailing comment
n = 64
offset = -3

[beta_2]
source = \"beta.s\"
";
        let sections = parse(text).unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].name, "alpha");
        assert_eq!(sections[0].get("source").unwrap().as_str(), Some("alpha.s"));
        assert_eq!(sections[0].get("n").unwrap().as_int(), Some(64));
        assert_eq!(sections[0].get("offset").unwrap().as_int(), Some(-3));
        assert_eq!(sections[1].name, "beta_2");
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        let e = parse("[alpha]\nnonsense\n").unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse("key = 1\n").unwrap_err();
        assert!(e.message.contains("outside any"));
        let e = parse("[alpha]\nk = \"unterminated\n").unwrap_err();
        assert!(e.message.contains("unterminated"));
        let e = parse("[Alpha]\n").unwrap_err();
        assert!(e.message.contains("must be"));
    }

    #[test]
    fn rejects_duplicates() {
        let e = parse("[a]\n[a]\n").unwrap_err();
        assert!(e.message.contains("duplicate section"));
        let e = parse("[a]\nk = 1\nk = 2\n").unwrap_err();
        assert!(e.message.contains("duplicate key"));
    }

    #[test]
    fn name_charset() {
        assert!(valid_name("quicksort"));
        assert!(valid_name("blur3"));
        assert!(valid_name("mem_stress"));
        assert!(!valid_name("3blur"));
        assert!(!valid_name("a+b"));
        assert!(!valid_name(""));
        assert!(!valid_name("Upper"));
    }
}
