//! The on-disk workload corpus: assembly kernels loaded from a
//! `corpus/` directory and presented with the same contract as the
//! built-in benchmarks — a buildable [`Program`] plus a self-check
//! predicate over final memory.
//!
//! A corpus is a directory holding `manifest.toml` (parsed by
//! [`manifest`], a dependency-free TOML subset) and one `.s` file per
//! workload, assembled through [`smt_isa::asm::assemble`]. Each
//! manifest section names the source file, the scale knobs (`n` /
//! `n_paper`, plus `steps` for the pointer chase), the initial-data
//! fill, and the check predicate:
//!
//! ```text
//! [quicksort]
//! source = "quicksort.s"
//! check  = "sorted"
//! fill   = "lcg"
//! seed   = 1
//! n      = 48
//! n_paper = 192
//! ```
//!
//! # Memory layout contract
//!
//! Every kernel sees the same map, so one loader serves all of them.
//! The first data page ([`DATA_BASE`] = `0x1000`) starts with an
//! 8-word parameter block; the input, output, and scratch regions
//! follow, their base addresses published in that block so the `.s`
//! sources never hard-code region sizes:
//!
//! ```text
//! 0x1000  n          problem size (element count or matrix dim)
//! 0x1008  steps      auxiliary knob (pointer-chase hop count)
//! 0x1010  IN base    input region,  `in_words(n)` words, filled
//! 0x1018  OUT base   output region, `out_words(n)` words, zeroed
//! 0x1020  AUX base   scratch (barrier, slice table, sort stacks)
//! ```
//!
//! Kernels are SPMD over `r0 = tid`, `r1 = nthreads` and stay inside
//! `r0..=r15`, so they run unchanged from 1 to 8 hardware threads and
//! as single-thread members of a heterogeneous mix. All data values
//! are masked positive (below [`FILL_MASK`]) so the ISA's signed
//! compares and divides agree with the unsigned reference math.

pub mod manifest;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use smt_isa::asm::{self, AsmError};
use smt_isa::program::{DataImage, Program, DATA_BASE};
use smt_isa::WORD_BYTES;
use smt_workloads::{Scale, WorkloadKind};

use manifest::{ManValue, Section};

/// Fill values stay below this mask so every data word is positive as
/// an `i64`: the kernels' `blt`/`div` are signed, the checkers' Rust
/// reference math is unsigned, and keeping values in the common range
/// makes the two agree bit-for-bit.
pub const FILL_MASK: u64 = 0x3fff_ffff;

/// Words in the parameter block at [`DATA_BASE`].
const PARAM_WORDS: u64 = 8;

/// Byte address of the input region (parameter block + padding).
const IN_BASE: u64 = DATA_BASE + PARAM_WORDS * WORD_BYTES;

/// Scratch bytes the quicksort kernel expects: one barrier word, an
/// 8-entry `{cursor, end}` slice table (16 bytes each, at `AUX + 8`),
/// and eight 512-byte explicit quicksort stacks (at `AUX + 136`).
/// These offsets are part of the kernel ABI — `quicksort.s` hard-codes
/// them.
const SORT_AUX_BYTES: u64 = 8 + 8 * 16 + 8 * 512;

/// How a workload's input region is initialized.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fill {
    /// `in[i] = i`.
    Ramp,
    /// All zeros.
    Zero,
    /// Deterministic pseudo-random words (masked by [`FILL_MASK`]).
    Lcg,
    /// A seeded permutation of `0..len` (for the pointer chase).
    Perm,
}

impl Fill {
    fn parse(name: &str) -> Option<Fill> {
        Some(match name {
            "ramp" => Fill::Ramp,
            "zero" => Fill::Zero,
            "lcg" => Fill::Lcg,
            "perm" => Fill::Perm,
            _ => return None,
        })
    }
}

/// The final-state predicate a workload is checked against.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckKind {
    /// `OUT` is the input sorted ascending.
    Sorted,
    /// `OUT` is the product of the two `n x n` matrices in `IN`.
    Matmul,
    /// `OUT` is the 3-point box blur of `IN` (clamped edges).
    Blur3,
    /// `OUT[i] = 1` exactly for composite `i` (prime-sieve flags).
    Sieve,
    /// `OUT` equals `IN`.
    Copy,
    /// `OUT[s]` is the node reached after `steps` hops from `s`
    /// through the permutation in `IN`.
    Chase,
}

impl CheckKind {
    fn parse(name: &str) -> Option<CheckKind> {
        Some(match name {
            "sorted" => CheckKind::Sorted,
            "matmul" => CheckKind::Matmul,
            "blur3" => CheckKind::Blur3,
            "sieve" => CheckKind::Sieve,
            "copy" => CheckKind::Copy,
            "chase" => CheckKind::Chase,
            _ => return None,
        })
    }

    fn in_words(self, n: u64) -> u64 {
        match self {
            CheckKind::Matmul => 2 * n * n,
            CheckKind::Sieve => 0,
            _ => n,
        }
    }

    fn out_words(self, n: u64) -> u64 {
        match self {
            CheckKind::Matmul => n * n,
            _ => n,
        }
    }

    fn aux_bytes(self) -> u64 {
        match self {
            CheckKind::Sorted => SORT_AUX_BYTES,
            _ => 0,
        }
    }
}

/// Anything that can go wrong loading or building a corpus.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CorpusError {
    /// Filesystem failure.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error text.
        message: String,
    },
    /// The manifest did not parse.
    Manifest(manifest::ManifestError),
    /// A section parsed but describes an unusable workload.
    Invalid {
        /// The offending workload.
        workload: String,
        /// What is wrong with it.
        message: String,
    },
    /// A source file did not assemble.
    Asm {
        /// The offending workload.
        workload: String,
        /// The assembler diagnostic (line/column/token).
        error: AsmError,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
            CorpusError::Manifest(e) => e.fmt(f),
            CorpusError::Invalid { workload, message } => {
                write!(f, "workload [{workload}]: {message}")
            }
            CorpusError::Asm { workload, error } => {
                write!(f, "workload [{workload}]: {error}")
            }
        }
    }
}

impl std::error::Error for CorpusError {}

/// The scale-resolved memory layout of one workload instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Layout {
    /// Problem size (element count, or matrix dimension for matmul).
    pub n: u64,
    /// Auxiliary knob (pointer-chase hops; 0 elsewhere).
    pub steps: u64,
    /// Byte address of the input region.
    pub in_base: u64,
    /// Input region length in words.
    pub in_words: u64,
    /// Byte address of the output region.
    pub out_base: u64,
    /// Output region length in words.
    pub out_words: u64,
    /// Byte address of the scratch region.
    pub aux_base: u64,
    /// Total data-image size in bytes.
    pub size: u64,
}

/// One manifest-declared workload: source text plus its knobs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CorpusWorkload {
    name: String,
    source_file: String,
    source: String,
    check: CheckKind,
    fill: Fill,
    seed: u64,
    n: u64,
    n_paper: u64,
    steps: u64,
    steps_paper: u64,
}

impl CorpusWorkload {
    /// The workload's manifest name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The assembly source text.
    #[must_use]
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The manifest's source file name (relative to the corpus dir).
    #[must_use]
    pub fn source_file(&self) -> &str {
        &self.source_file
    }

    /// The check predicate this workload is verified against.
    #[must_use]
    pub fn check_kind(&self) -> CheckKind {
        self.check
    }

    /// The scale-resolved layout (region bases, sizes).
    #[must_use]
    pub fn layout(&self, scale: Scale) -> Layout {
        let (n, steps) = match scale {
            Scale::Test => (self.n, self.steps),
            Scale::Paper => (self.n_paper, self.steps_paper),
        };
        let in_words = self.check.in_words(n);
        let out_words = self.check.out_words(n);
        let out_base = IN_BASE + in_words * WORD_BYTES;
        let aux_base = out_base + out_words * WORD_BYTES;
        Layout {
            n,
            steps,
            in_base: IN_BASE,
            in_words,
            out_base,
            out_words,
            aux_base,
            size: aux_base + self.check.aux_bytes(),
        }
    }

    /// The input-region fill at `scale`, exactly as the data image
    /// places it (checkers recompute their reference from this).
    #[must_use]
    pub fn input(&self, scale: Scale) -> Vec<u64> {
        let l = self.layout(scale);
        fill_words(self.fill, self.seed, l.in_words as usize)
    }

    /// The initial data image at `scale`: the null page, the parameter
    /// block, and the filled input region.
    #[must_use]
    pub fn image(&self, scale: Scale) -> DataImage {
        let l = self.layout(scale);
        let mut words: Vec<(u64, u64)> = vec![
            (DATA_BASE, l.n),
            (DATA_BASE + 8, l.steps),
            (DATA_BASE + 16, l.in_base),
            (DATA_BASE + 24, l.out_base),
            (DATA_BASE + 32, l.aux_base),
        ];
        for (i, &v) in self.input(scale).iter().enumerate() {
            if v != 0 {
                words.push((l.in_base + (i as u64) * WORD_BYTES, v));
            }
        }
        DataImage {
            size: l.size,
            words,
        }
    }

    /// Assembles the workload at `scale`. The program is thread-count
    /// independent: it partitions work over `r0`/`r1` at run time.
    ///
    /// # Errors
    ///
    /// [`CorpusError::Asm`] with the assembler's line/column diagnostic.
    pub fn build(&self, scale: Scale) -> Result<Program, CorpusError> {
        asm::assemble(&self.source, self.image(scale)).map_err(|error| CorpusError::Asm {
            workload: self.name.clone(),
            error,
        })
    }

    /// Verifies final memory (word-indexed from address 0) against the
    /// workload's predicate, recomputing the reference from the
    /// deterministic input fill.
    ///
    /// # Errors
    ///
    /// A description of the first mismatch.
    pub fn verify(&self, mem_words: &[u64], scale: Scale) -> Result<(), String> {
        let l = self.layout(scale);
        let need = (l.size / WORD_BYTES) as usize;
        if mem_words.len() < need {
            return Err(format!(
                "{}: memory holds {} words, layout needs {need}",
                self.name,
                mem_words.len()
            ));
        }
        let input = self.input(scale);
        let out = region(mem_words, l.out_base, l.out_words);
        let expected = expected_output(self.check, &input, &l);
        for (i, (&got, &want)) in out.iter().zip(&expected).enumerate() {
            if got != want {
                return Err(format!(
                    "{}: OUT[{i}] (addr {:#x}) is {got}, expected {want}",
                    self.name,
                    l.out_base + (i as u64) * WORD_BYTES
                ));
            }
        }
        Ok(())
    }
}

fn region(words: &[u64], base: u64, len: u64) -> &[u64] {
    let lo = (base / WORD_BYTES) as usize;
    &words[lo..lo + len as usize]
}

/// The reference output every predicate compares against, computed
/// with the ISA's arithmetic (wrapping ops, signed division).
fn expected_output(check: CheckKind, input: &[u64], l: &Layout) -> Vec<u64> {
    let n = l.n as usize;
    match check {
        CheckKind::Copy => input.to_vec(),
        CheckKind::Sorted => {
            let mut v = input.to_vec();
            v.sort_unstable();
            v
        }
        CheckKind::Blur3 => (0..n)
            .map(|i| {
                let left = input[i.saturating_sub(1)];
                let right = input[(i + 1).min(n - 1)];
                let sum = left.wrapping_add(input[i]).wrapping_add(right);
                ((sum as i64) / 3) as u64
            })
            .collect(),
        CheckKind::Matmul => {
            let (a, b) = input.split_at(n * n);
            let mut c = vec![0u64; n * n];
            for i in 0..n {
                for j in 0..n {
                    let mut acc = 0u64;
                    for k in 0..n {
                        acc = acc.wrapping_add(a[i * n + k].wrapping_mul(b[k * n + j]));
                    }
                    c[i * n + j] = acc;
                }
            }
            c
        }
        CheckKind::Sieve => (0..n as u64)
            .map(|i| u64::from(i >= 4 && (2..i).take_while(|p| p * p <= i).any(|p| i % p == 0)))
            .collect(),
        CheckKind::Chase => (0..n)
            .map(|s| {
                let mut idx = s as u64;
                for _ in 0..l.steps {
                    idx = input[idx as usize];
                }
                idx
            })
            .collect(),
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic input fill: same `(fill, seed, len)` always produces
/// the same words, so checkers can recompute their reference instead
/// of carrying the initial image around.
#[must_use]
pub fn fill_words(fill: Fill, seed: u64, len: usize) -> Vec<u64> {
    let mut state = seed ^ 0x00C0_49B5_D0CA_11ED;
    match fill {
        Fill::Ramp => (0..len as u64).collect(),
        Fill::Zero => vec![0; len],
        Fill::Lcg => (0..len).map(|_| splitmix(&mut state) & FILL_MASK).collect(),
        Fill::Perm => {
            let mut v: Vec<u64> = (0..len as u64).collect();
            for i in (1..len).rev() {
                let j = (splitmix(&mut state) % (i as u64 + 1)) as usize;
                v.swap(i, j);
            }
            v
        }
    }
}

/// A loaded corpus: every manifest workload, sorted by name.
#[derive(Clone, PartialEq, Eq)]
pub struct Corpus {
    dir: PathBuf,
    workloads: Vec<CorpusWorkload>,
}

impl fmt::Debug for Corpus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Corpus")
            .field("dir", &self.dir)
            .field("workloads", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

impl Corpus {
    /// Loads `dir/manifest.toml` and every referenced source file,
    /// validating each workload (known keys, legal knobs, no name
    /// collision with a built-in benchmark, assembles at both scales).
    ///
    /// # Errors
    ///
    /// The first [`CorpusError`] encountered.
    pub fn load(dir: impl AsRef<Path>) -> Result<Corpus, CorpusError> {
        let dir = dir.as_ref().to_path_buf();
        let manifest_path = dir.join("manifest.toml");
        let text = fs::read_to_string(&manifest_path).map_err(|e| CorpusError::Io {
            path: manifest_path.clone(),
            message: e.to_string(),
        })?;
        let sections = manifest::parse(&text).map_err(CorpusError::Manifest)?;
        if sections.is_empty() {
            return Err(CorpusError::Manifest(manifest::ManifestError {
                line: 0,
                message: "manifest declares no workloads".into(),
            }));
        }
        let mut workloads = Vec::with_capacity(sections.len());
        for section in &sections {
            workloads.push(load_workload(&dir, section)?);
        }
        workloads.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(Corpus { dir, workloads })
    }

    /// The directory this corpus was loaded from.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Looks a workload up by manifest name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&CorpusWorkload> {
        self.workloads.iter().find(|w| w.name == name)
    }

    /// All workloads, sorted by name.
    #[must_use]
    pub fn workloads(&self) -> &[CorpusWorkload] {
        &self.workloads
    }

    /// Workload names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.workloads.iter().map(|w| w.name.as_str())
    }
}

fn invalid(workload: &str, message: impl Into<String>) -> CorpusError {
    CorpusError::Invalid {
        workload: workload.to_string(),
        message: message.into(),
    }
}

const KNOWN_KEYS: &[&str] = &[
    "source",
    "check",
    "fill",
    "seed",
    "n",
    "n_paper",
    "steps",
    "steps_paper",
];

fn load_workload(dir: &Path, section: &Section) -> Result<CorpusWorkload, CorpusError> {
    let name = section.name.as_str();
    if let Some(kind) = WorkloadKind::ALL
        .iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
    {
        return Err(invalid(
            name,
            format!("name collides with built-in benchmark {}", kind.name()),
        ));
    }
    for (key, _) in &section.entries {
        if !KNOWN_KEYS.contains(&key.as_str()) {
            return Err(invalid(name, format!("unknown key {key:?}")));
        }
    }
    let str_key = |key: &str| -> Result<&str, CorpusError> {
        section
            .get(key)
            .ok_or_else(|| invalid(name, format!("missing key {key:?}")))?
            .as_str()
            .ok_or_else(|| invalid(name, format!("key {key:?} must be a string")))
    };
    let int_key = |key: &str, default: i64| -> Result<u64, CorpusError> {
        let v = match section.get(key) {
            None => default,
            Some(ManValue::Int(v)) => *v,
            Some(ManValue::Str(_)) => {
                return Err(invalid(name, format!("key {key:?} must be an integer")))
            }
        };
        u64::try_from(v).map_err(|_| invalid(name, format!("key {key:?} must be non-negative")))
    };

    let source_file = str_key("source")?.to_string();
    let check_name = str_key("check")?;
    let check = CheckKind::parse(check_name)
        .ok_or_else(|| invalid(name, format!("unknown check {check_name:?}")))?;
    let fill = match section.get("fill") {
        None => Fill::Zero,
        Some(v) => {
            let text = v
                .as_str()
                .ok_or_else(|| invalid(name, "key \"fill\" must be a string"))?;
            Fill::parse(text).ok_or_else(|| invalid(name, format!("unknown fill {text:?}")))?
        }
    };
    let seed = int_key("seed", 0)?;
    let n = int_key("n", 0)?;
    if n == 0 {
        return Err(invalid(name, "`n` must be a positive integer"));
    }
    let n_paper = match section.get("n_paper") {
        None => n,
        Some(_) => int_key("n_paper", 0)?,
    };
    if n_paper == 0 {
        return Err(invalid(name, "`n_paper` must be positive"));
    }
    let steps = int_key("steps", 0)?;
    let steps_paper = match section.get("steps_paper") {
        None => steps,
        Some(_) => int_key("steps_paper", 0)?,
    };
    if check == CheckKind::Chase && steps == 0 {
        return Err(invalid(name, "the chase predicate needs `steps` >= 1"));
    }
    if check == CheckKind::Chase && fill != Fill::Perm {
        return Err(invalid(name, "the chase predicate needs `fill = \"perm\"`"));
    }

    let source_path = dir.join(&source_file);
    let source = fs::read_to_string(&source_path).map_err(|e| CorpusError::Io {
        path: source_path,
        message: e.to_string(),
    })?;
    let workload = CorpusWorkload {
        name: name.to_string(),
        source_file,
        source,
        check,
        fill,
        seed,
        n,
        n_paper,
        steps,
        steps_paper,
    };
    // Surface assembly diagnostics at load time, for both scales, so a
    // broken kernel fails the `Corpus::load` call instead of the first
    // sweep cell that touches it.
    workload.build(Scale::Test)?;
    workload.build(Scale::Paper)?;
    Ok(workload)
}
