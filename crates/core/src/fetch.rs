//! The instruction unit: per-thread program counters and the fetch
//! policies — the three of Section 5.1 plus occupancy-driven ICOUNT.
//!
//! One selected thread fetches one block of up to `fetch_width` contiguous
//! instructions per port per cycle ("Instructions fetched in one cycle all
//! belong to the same thread, but fetching in different cycles is done from
//! different streams" — with more than one port, each port serves a
//! distinct thread). The unit consults the configured branch predictor so
//! a predicted-taken control transfer ends the block and redirects the
//! thread's PC speculatively.

use smt_isa::{DecodedInsn, Opcode, Program};
use smt_uarch::{Predictor, Tag};

use crate::config::FetchPolicy;

/// One fetched instruction with its fetch-time prediction.
#[derive(Clone, Copy, Debug)]
pub struct FetchedInsn {
    /// Instruction index.
    pub pc: usize,
    /// The predecoded instruction.
    pub insn: DecodedInsn,
    /// Fetch-time prediction: taken?
    pub predicted_taken: bool,
    /// Fetch-time predicted target (valid when `predicted_taken`).
    pub predicted_target: usize,
}

/// A block fetched in one cycle, owned by a single thread.
#[derive(Clone, Debug)]
pub struct FetchedBlock {
    /// Owning thread.
    pub tid: usize,
    /// 1..=block_size instructions.
    pub insns: Vec<FetchedInsn>,
    /// Cycle the block was fetched (stamped by the simulator's fetch
    /// stage; lifecycle tracing reports it as the `F` stage start).
    pub fetched_at: u64,
}

#[derive(Clone, Debug)]
struct ThreadState {
    pc: usize,
    /// A `halt` was fetched: stop fetching until squash-redirect or retire.
    fetch_halted: bool,
    /// A decoded `wait` suspends fetch until the tag writes back.
    suspended_on: Option<Tag>,
    /// PC to resume at when the suspension lifts.
    resume_pc: usize,
    /// The thread's `halt` has committed.
    retired: bool,
    /// Masked Round Robin: excluded while true.
    masked: bool,
    /// Conditional Switch: the decoder saw a trigger instruction.
    switch_pending: bool,
    /// Speculation-depth limit hit: the thread has too many unresolved
    /// conditional branches in flight, so it cannot fetch this cycle
    /// (True Round Robin wastes its slot, like a suspension). Transient —
    /// the simulator's fetch stage recomputes it from the scheduling unit
    /// every cycle before selection, so it is never serialized and resets
    /// to `false` on restore.
    spec_stalled: bool,
}

/// The multithreaded instruction unit.
#[derive(Clone, Debug)]
pub struct InstructionUnit {
    threads: Vec<ThreadState>,
    policy: FetchPolicy,
    width: usize,
    /// Fetch blocks start at multiples of `width` (Section 6 model).
    aligned: bool,
    /// True Round Robin position ("a modulo N binary counter").
    rr: usize,
    /// Conditional Switch active thread.
    active: usize,
    /// Recycled fetch-group storage. The fetch queue keeps several groups
    /// in flight (multi-port fetch, decode backpressure), so a small pool —
    /// not a single spare — is what keeps the fetch path allocation-free in
    /// steady state. Squashed and dropped groups return here too.
    pool: Vec<Vec<FetchedInsn>>,
}

impl InstructionUnit {
    /// Creates the unit with all threads at `entry`, with free block
    /// placement.
    #[must_use]
    pub fn new(n_threads: usize, policy: FetchPolicy, entry: usize, width: usize) -> Self {
        Self::with_alignment(n_threads, policy, entry, width, false)
    }

    /// Creates the unit, choosing aligned or free fetch-block placement.
    ///
    /// # Panics
    ///
    /// Panics if `aligned` is requested with a non-power-of-two width.
    #[must_use]
    pub fn with_alignment(
        n_threads: usize,
        policy: FetchPolicy,
        entry: usize,
        width: usize,
        aligned: bool,
    ) -> Self {
        Self::with_entries(policy, &vec![entry; n_threads], width, aligned)
    }

    /// Creates the unit with one entry point per thread — heterogeneous
    /// mixes run a distinct program per hardware thread, so each thread
    /// starts at its own program's entry.
    ///
    /// # Panics
    ///
    /// Panics if `aligned` is requested with a non-power-of-two width.
    #[must_use]
    pub fn with_entries(
        policy: FetchPolicy,
        entries: &[usize],
        width: usize,
        aligned: bool,
    ) -> Self {
        assert!(
            !aligned || width.is_power_of_two(),
            "aligned fetch needs a power-of-two block size"
        );
        InstructionUnit {
            threads: entries
                .iter()
                .map(|&entry| ThreadState {
                    pc: entry,
                    fetch_halted: false,
                    suspended_on: None,
                    resume_pc: entry,
                    retired: false,
                    masked: false,
                    switch_pending: false,
                    spec_stalled: false,
                })
                .collect(),
            policy,
            width,
            aligned,
            rr: 0,
            active: 0,
            pool: Vec::new(),
        }
    }

    /// Number of threads.
    #[must_use]
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }

    /// Whether the thread still participates in fetch rotation at all.
    fn in_rotation(&self, tid: usize) -> bool {
        let t = &self.threads[tid];
        !t.retired && !t.fetch_halted
    }

    /// Whether the thread could actually fetch this cycle.
    fn fetchable(&self, tid: usize) -> bool {
        let t = &self.threads[tid];
        self.in_rotation(tid) && t.suspended_on.is_none() && !t.spec_stalled
    }

    /// Selects the thread that owns this cycle's (single) fetch slot —
    /// [`select_fetch`](Self::select_fetch) with no occupancy signal and
    /// no exclusions.
    pub fn select(&mut self) -> Option<usize> {
        self.select_fetch(&[], 0)
    }

    /// Selects the thread that owns one fetch slot this cycle, advancing
    /// the policy state. Returns `None` when the slot is wasted (True
    /// Round Robin grants a slot to a waiting thread) or no thread can
    /// fetch.
    ///
    /// `occupancy[tid]` is the per-thread count of instructions resident
    /// in the front end and scheduling unit — the ICOUNT priority signal;
    /// threads past the slice's end count as empty (only ICOUNT reads it).
    /// `exclude` is a bitmask of threads that already won a fetch port
    /// this cycle: a multi-ported front end fetches *distinct* threads, so
    /// every policy skips them (for Conditional Switch the second port
    /// serves a sibling without moving the active thread or consuming an
    /// armed switch signal).
    pub fn select_fetch(&mut self, occupancy: &[u32], exclude: u32) -> Option<usize> {
        let n = self.threads.len();
        let excluded = |tid: usize| exclude & (1 << tid) != 0;
        match self.policy {
            FetchPolicy::TrueRoundRobin => {
                // Rotate over threads still in the rotation; a suspended
                // thread consumes (wastes) its slot, per the paper: the
                // counter advances "irrespective of the state of execution".
                // A thread that already holds a port this cycle is skipped
                // outright — a second port never re-grants the same stream.
                for step in 0..n {
                    let tid = (self.rr + step) % n;
                    if self.in_rotation(tid) && !excluded(tid) {
                        self.rr = (tid + 1) % n;
                        return self.fetchable(tid).then_some(tid);
                    }
                }
                None
            }
            FetchPolicy::MaskedRoundRobin => {
                // Skip masked and waiting threads instead of wasting slots.
                for step in 0..n {
                    let tid = (self.rr + step) % n;
                    if self.fetchable(tid) && !self.threads[tid].masked && !excluded(tid) {
                        self.rr = (tid + 1) % n;
                        return Some(tid);
                    }
                }
                None
            }
            FetchPolicy::ConditionalSwitch => {
                if excluded(self.active) {
                    // A secondary port: serve the nearest fetchable sibling
                    // without moving the active thread or consuming an
                    // armed switch signal.
                    for step in 1..n {
                        let tid = (self.active + step) % n;
                        if self.fetchable(tid) && !excluded(tid) {
                            return Some(tid);
                        }
                    }
                    return None;
                }
                let must_switch =
                    self.threads[self.active].switch_pending || !self.fetchable(self.active);
                if must_switch {
                    for step in 1..n {
                        let tid = (self.active + step) % n;
                        if self.fetchable(tid) && !excluded(tid) {
                            self.threads[self.active].switch_pending = false;
                            self.active = tid;
                            return Some(tid);
                        }
                    }
                    // No *sibling* to switch to; stay if the active thread
                    // can fetch. The pending switch signal stays armed so
                    // the switch happens as soon as a sibling becomes
                    // fetchable — the old code let the search fall through
                    // to the active thread itself and consumed the signal,
                    // dropping the request entirely.
                    self.fetchable(self.active).then_some(self.active)
                } else {
                    Some(self.active)
                }
            }
            FetchPolicy::Icount => {
                // Lowest front-end + scheduling-unit occupancy wins; ties
                // break in rotation order starting at the cursor, which
                // then advances past the winner so equally empty threads
                // share the port fairly.
                let mut best: Option<usize> = None;
                let occ = |tid: usize| occupancy.get(tid).copied().unwrap_or(0);
                for step in 0..n {
                    let tid = (self.rr + step) % n;
                    if !self.fetchable(tid) || excluded(tid) {
                        continue;
                    }
                    if best.is_none_or(|b| occ(tid) < occ(b)) {
                        best = Some(tid);
                    }
                }
                if let Some(tid) = best {
                    self.rr = (tid + 1) % n;
                }
                best
            }
        }
    }

    /// Fetches a block for `tid`, consulting `predictor` for control
    /// transfers and advancing the thread's speculative PC. Returns `None`
    /// if the PC has run off the text segment (wrong-path overrun — a squash
    /// will redirect).
    pub fn fetch_block(
        &mut self,
        tid: usize,
        program: &Program,
        predictor: &mut Predictor,
    ) -> Option<FetchedBlock> {
        debug_assert!(self.fetchable(tid), "fetching for an unfetchable thread");
        let mut pc = self.threads[tid].pc;
        let mut insns = self.pool.pop().unwrap_or_default();
        insns.reserve(self.width);
        // Aligned mode: the block spans [start, start + width); entering it
        // mid-way forfeits the leading slots.
        let block_end = if self.aligned {
            (pc & !(self.width - 1)) + self.width
        } else {
            pc + self.width
        };
        while pc < block_end {
            let Some(&insn) = program.fetch_decoded(pc) else {
                break;
            };
            let mut fetched = FetchedInsn {
                pc,
                insn,
                predicted_taken: false,
                predicted_target: 0,
            };
            match insn.op {
                Opcode::Halt => {
                    insns.push(fetched);
                    self.threads[tid].fetch_halted = true;
                    pc += 1;
                    break;
                }
                _ if insn.is_control() => {
                    let p = predictor.predict(tid, pc);
                    fetched.predicted_taken = p.taken;
                    fetched.predicted_target = p.target;
                    insns.push(fetched);
                    if p.taken {
                        pc = p.target;
                        break;
                    }
                    pc += 1;
                }
                _ => {
                    insns.push(fetched);
                    pc += 1;
                }
            }
        }
        self.threads[tid].pc = pc;
        if insns.is_empty() {
            self.pool.push(insns);
            None
        } else {
            Some(FetchedBlock {
                tid,
                insns,
                fetched_at: 0,
            })
        }
    }

    /// Returns a consumed fetch group's storage for reuse by the next
    /// [`fetch_block`](Self::fetch_block). The pool is bounded by the
    /// number of groups that can be in flight at once, so it never grows
    /// past a handful of buffers; a cap guards the pathological case.
    pub fn recycle(&mut self, mut storage: Vec<FetchedInsn>) {
        if self.pool.len() < 2 * self.threads.len() + 2 {
            storage.clear();
            self.pool.push(storage);
        }
    }

    /// Squash recovery: redirect the thread to `pc` and clear speculative
    /// fetch state (halt seen on the wrong path, wrong-path suspension).
    pub fn redirect(&mut self, tid: usize, pc: usize) {
        let t = &mut self.threads[tid];
        t.pc = pc;
        t.fetch_halted = false;
        t.suspended_on = None;
    }

    /// Decode-time PC fix (unconditional jump resolved at decode). Keeps
    /// halt/suspension state untouched.
    pub fn set_pc(&mut self, tid: usize, pc: usize) {
        self.threads[tid].pc = pc;
    }

    /// Suspends fetch for `tid` until `tag` (a decoded `WAIT`) writes back;
    /// fetch will resume at `resume_pc`.
    pub fn suspend(&mut self, tid: usize, tag: Tag, resume_pc: usize) {
        let t = &mut self.threads[tid];
        t.suspended_on = Some(tag);
        t.resume_pc = resume_pc;
    }

    /// Lifts a suspension waiting on `tag`, if any. Call on `WAIT`
    /// writeback.
    pub fn resume_if(&mut self, tid: usize, tag: Tag) {
        let t = &mut self.threads[tid];
        if t.suspended_on == Some(tag) {
            t.suspended_on = None;
            t.pc = t.resume_pc;
        }
    }

    /// Clears the fetched-a-halt flag. The decoder calls this when it
    /// discards a `halt` that fetch ran into on a fall-through path the
    /// program never takes (e.g. the instruction after an unconditional
    /// jump) — the thread must keep fetching from the corrected PC.
    pub fn clear_fetch_halted(&mut self, tid: usize) {
        self.threads[tid].fetch_halted = false;
    }

    /// Marks the thread's `halt` as committed: it leaves the rotation for
    /// good.
    pub fn retire(&mut self, tid: usize) {
        self.threads[tid].retired = true;
    }

    /// Whether the thread has retired.
    #[must_use]
    pub fn is_retired(&self, tid: usize) -> bool {
        self.threads[tid].retired
    }

    /// Whether every thread has retired.
    #[must_use]
    pub fn all_retired(&self) -> bool {
        self.threads.iter().all(|t| t.retired)
    }

    /// Updates the Masked Round-Robin mask from the bottom reorder-buffer
    /// block: the thread owning a commit-blocked bottom block is masked;
    /// all other threads are unmasked.
    pub fn update_mask(&mut self, bottom: Option<(usize, bool)>) {
        for (tid, t) in self.threads.iter_mut().enumerate() {
            t.masked = matches!(bottom, Some((btid, true)) if btid == tid);
        }
    }

    /// Conditional Switch: the decoder saw a long-latency trigger in `tid`'s
    /// stream.
    pub fn signal_switch(&mut self, tid: usize) {
        self.threads[tid].switch_pending = true;
    }

    /// Sets the speculation-depth stall for `tid`. The simulator's fetch
    /// stage recomputes this for every thread each cycle (from the count
    /// of unresolved conditional branches resident in the scheduling
    /// unit) before any port selects, so the flag never carries stale
    /// state across cycles or through a checkpoint.
    pub fn set_spec_stall(&mut self, tid: usize, stalled: bool) {
        self.threads[tid].spec_stalled = stalled;
    }

    /// Whether the speculation-depth limit currently stalls `tid`.
    #[must_use]
    pub fn is_spec_stalled(&self, tid: usize) -> bool {
        self.threads[tid].spec_stalled
    }

    /// Current speculative fetch PC of `tid` (for tests/debugging).
    #[must_use]
    pub fn pc(&self, tid: usize) -> usize {
        self.threads[tid].pc
    }

    /// Whether fetch for `tid` is suspended on a `WAIT` (debugging).
    #[must_use]
    pub fn is_suspended(&self, tid: usize) -> bool {
        self.threads[tid].suspended_on.is_some()
    }

    /// Whether `tid` has fetched its `halt` (debugging).
    #[must_use]
    pub fn is_fetch_halted(&self, tid: usize) -> bool {
        self.threads[tid].fetch_halted
    }

    /// Whether Masked Round Robin currently excludes `tid` from fetch.
    #[must_use]
    pub fn is_masked(&self, tid: usize) -> bool {
        self.threads[tid].masked
    }

    /// Whether a Conditional-Switch request for `tid` is still armed
    /// (signalled but not yet honoured by a switch).
    #[must_use]
    pub fn has_switch_pending(&self, tid: usize) -> bool {
        self.threads[tid].switch_pending
    }

    /// The thread Conditional Switch currently fetches from (meaningless
    /// under the round-robin policies).
    #[must_use]
    pub fn active_thread(&self) -> usize {
        self.active
    }

    /// Serializes per-thread fetch state and the policy cursors. The
    /// policy, width, and alignment are configuration, not state; the
    /// spare-storage pool is a pure optimization — neither is serialized.
    pub fn save(&self, w: &mut smt_checkpoint::Writer) {
        w.put_usize(self.threads.len());
        for t in &self.threads {
            w.put_usize(t.pc);
            w.put_bool(t.fetch_halted);
            w.put_opt_u64(t.suspended_on.map(Tag::raw));
            w.put_usize(t.resume_pc);
            w.put_bool(t.retired);
            w.put_bool(t.masked);
            w.put_bool(t.switch_pending);
        }
        w.put_usize(self.rr);
        w.put_usize(self.active);
    }

    /// Rebuilds a unit from [`save`](Self::save)d state under the given
    /// configuration.
    pub fn restore(
        n_threads: usize,
        policy: FetchPolicy,
        width: usize,
        aligned: bool,
        r: &mut smt_checkpoint::Reader<'_>,
    ) -> Result<Self, smt_checkpoint::DecodeError> {
        let n = r.take_usize()?;
        if n != n_threads {
            return Err(smt_checkpoint::DecodeError::Malformed(format!(
                "fetch unit: {n} serialized threads, config has {n_threads}"
            )));
        }
        let mut iu = InstructionUnit::with_alignment(n_threads, policy, 0, width, aligned);
        for t in &mut iu.threads {
            t.pc = r.take_usize()?;
            t.fetch_halted = r.take_bool()?;
            t.suspended_on = r.take_opt_u64()?.map(Tag::from_raw);
            t.resume_pc = r.take_usize()?;
            t.retired = r.take_bool()?;
            t.masked = r.take_bool()?;
            t.switch_pending = r.take_bool()?;
        }
        iu.rr = r.take_usize()?;
        iu.active = r.take_usize()?;
        if iu.rr >= n_threads || iu.active >= n_threads {
            return Err(smt_checkpoint::DecodeError::Malformed(format!(
                "fetch cursors rr={} active={} for {n_threads} threads",
                iu.rr, iu.active
            )));
        }
        Ok(iu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::builder::ProgramBuilder;
    use smt_isa::Reg;

    fn straightline_program(n: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let r = b.reg();
        for _ in 0..n {
            b.addi(r, r, 1);
        }
        b.halt();
        b.build(4).unwrap()
    }

    fn unit(n: usize, policy: FetchPolicy) -> InstructionUnit {
        InstructionUnit::new(n, policy, 0, 4)
    }

    fn shared_predictor() -> Predictor {
        Predictor::Shared(smt_uarch::BranchPredictor::new(16))
    }

    #[test]
    fn true_rr_rotates_through_all_threads() {
        let mut iu = unit(3, FetchPolicy::TrueRoundRobin);
        let order: Vec<_> = (0..6).map(|_| iu.select()).collect();
        assert_eq!(
            order,
            vec![Some(0), Some(1), Some(2), Some(0), Some(1), Some(2)]
        );
    }

    #[test]
    fn true_rr_wastes_slot_of_suspended_thread() {
        let mut iu = unit(3, FetchPolicy::TrueRoundRobin);
        let tag = smt_uarch::TagAllocator::new(4).alloc().unwrap();
        iu.suspend(1, tag, 7);
        assert_eq!(iu.select(), Some(0));
        assert_eq!(iu.select(), None, "thread 1's slot is wasted");
        assert_eq!(iu.select(), Some(2));
        iu.resume_if(1, tag);
        assert_eq!(iu.select(), Some(0));
        assert_eq!(iu.select(), Some(1), "resumed thread fetches again");
        assert_eq!(iu.pc(1), 7, "resumes at the stored pc");
    }

    #[test]
    fn masked_rr_skips_masked_and_suspended_threads() {
        let mut iu = unit(3, FetchPolicy::MaskedRoundRobin);
        iu.update_mask(Some((1, true)));
        assert!(!iu.is_masked(0) && iu.is_masked(1) && !iu.is_masked(2));
        assert_eq!(iu.select(), Some(0));
        assert_eq!(iu.select(), Some(2), "masked thread skipped, not wasted");
        iu.update_mask(Some((1, false)));
        assert!(!iu.is_masked(1), "commit-unblocked bottom block unmasks");
        assert_eq!(iu.select(), Some(0));
        assert_eq!(
            iu.select(),
            Some(1),
            "unmasked once the bottom block commits"
        );
    }

    #[test]
    fn mask_rehomes_to_the_new_bottom_block_owner() {
        let mut iu = unit(3, FetchPolicy::MaskedRoundRobin);
        iu.update_mask(Some((2, true)));
        assert!(iu.is_masked(2));
        // The bottom block drained; a different thread's block is now
        // bottom and commit-blocked: exactly the ownership moves.
        iu.update_mask(Some((0, true)));
        assert!(iu.is_masked(0) && !iu.is_masked(1) && !iu.is_masked(2));
        // Empty scheduling unit: nobody is masked.
        iu.update_mask(None);
        assert!((0..3).all(|t| !iu.is_masked(t)));
    }

    #[test]
    fn cswitch_stays_until_triggered() {
        let mut iu = unit(3, FetchPolicy::ConditionalSwitch);
        assert_eq!(iu.select(), Some(0));
        assert_eq!(iu.select(), Some(0));
        iu.signal_switch(0);
        assert_eq!(iu.select(), Some(1));
        assert_eq!(iu.select(), Some(1));
    }

    #[test]
    fn cswitch_pending_switch_survives_until_a_sibling_is_fetchable() {
        let mut iu = unit(2, FetchPolicy::ConditionalSwitch);
        let tag = smt_uarch::TagAllocator::new(4).alloc().unwrap();
        // Thread 1 is suspended: a triggered switch has nowhere to go.
        iu.suspend(1, tag, 0);
        iu.signal_switch(0);
        assert_eq!(iu.select(), Some(0), "stays on the active thread for now");
        assert!(
            iu.has_switch_pending(0),
            "the unhonoured request must stay armed"
        );
        assert_eq!(iu.active_thread(), 0);
        // The sibling wakes up. The switch signal must still be armed —
        // the old code cleared it in the nowhere-to-switch fallback and
        // stuck with thread 0 forever.
        iu.resume_if(1, tag);
        assert_eq!(iu.select(), Some(1), "pending switch fires once possible");
        assert_eq!(iu.active_thread(), 1);
        assert!(!iu.has_switch_pending(0), "consumed by the switch");
        assert_eq!(
            iu.select(),
            Some(1),
            "and the signal is consumed by the switch"
        );
    }

    #[test]
    fn cswitch_switches_away_from_halted_thread() {
        let mut iu = unit(2, FetchPolicy::ConditionalSwitch);
        assert_eq!(iu.select(), Some(0));
        iu.retire(0);
        assert_eq!(iu.select(), Some(1));
    }

    #[test]
    fn retired_threads_leave_the_rotation() {
        let mut iu = unit(2, FetchPolicy::TrueRoundRobin);
        iu.retire(0);
        assert_eq!(iu.select(), Some(1));
        assert_eq!(iu.select(), Some(1), "no slot wasted on the dead thread");
        iu.retire(1);
        assert_eq!(iu.select(), None);
        assert!(iu.all_retired());
    }

    #[test]
    fn fetch_block_stops_at_halt() {
        let program = straightline_program(2); // addi, addi, halt
        let mut iu = unit(1, FetchPolicy::TrueRoundRobin);
        let mut pred = shared_predictor();
        let block = iu.fetch_block(0, &program, &mut pred).unwrap();
        assert_eq!(block.insns.len(), 3);
        assert_eq!(block.insns[2].insn.op, Opcode::Halt);
        // Fetch is now halted: thread no longer selected.
        assert_eq!(iu.select(), None);
    }

    #[test]
    fn fetch_block_truncates_at_predicted_taken_branch() {
        let mut b = ProgramBuilder::new();
        let r = b.reg();
        let top = b.named_label("top");
        b.addi(r, r, 1);
        b.addi(r, r, 1);
        let zero = Reg::TID; // tid 0 == 0 in single-thread tests
        b.beq(zero, zero, top);
        b.halt();
        let program = b.build(1).unwrap();

        let mut iu = unit(1, FetchPolicy::TrueRoundRobin);
        let mut pred = shared_predictor();
        // Cold predictor: block runs through the branch into the halt.
        let block = iu.fetch_block(0, &program, &mut pred).unwrap();
        assert_eq!(block.insns.len(), 4);
        assert!(!block.insns[2].predicted_taken);

        // Train the predictor: the branch (pc 2) is taken to 0.
        pred.update(0, 2, true, 0);
        iu.redirect(0, 0);
        let block = iu.fetch_block(0, &program, &mut pred).unwrap();
        assert_eq!(
            block.insns.len(),
            3,
            "block ends at the predicted-taken branch"
        );
        assert!(block.insns[2].predicted_taken);
        assert_eq!(iu.pc(0), 0, "speculative pc follows the prediction");
    }

    #[test]
    fn fetch_past_text_end_returns_none() {
        let program = straightline_program(0); // just halt at pc 0
        let mut iu = unit(1, FetchPolicy::TrueRoundRobin);
        let mut pred = shared_predictor();
        iu.set_pc(0, 99);
        assert!(iu.fetch_block(0, &program, &mut pred).is_none());
    }

    #[test]
    fn redirect_clears_wrong_path_halt_and_suspension() {
        let mut iu = unit(1, FetchPolicy::TrueRoundRobin);
        let tag = smt_uarch::TagAllocator::new(4).alloc().unwrap();
        iu.suspend(0, tag, 5);
        assert_eq!(iu.select(), None);
        iu.redirect(0, 2);
        assert_eq!(iu.select(), Some(0));
        assert_eq!(iu.pc(0), 2);
    }

    #[test]
    fn icount_prefers_the_emptiest_thread() {
        let mut iu = unit(3, FetchPolicy::Icount);
        // Thread 1 is nearly drained; it must win over fuller siblings.
        assert_eq!(iu.select_fetch(&[8, 1, 5], 0), Some(1));
        assert_eq!(iu.select_fetch(&[8, 1, 5], 0), Some(1), "signal, not state");
        // Once it fills past a sibling, priority moves.
        assert_eq!(iu.select_fetch(&[8, 6, 5], 0), Some(2));
    }

    #[test]
    fn icount_breaks_ties_by_rotating_priority() {
        let mut iu = unit(3, FetchPolicy::Icount);
        // All-equal occupancy degenerates to round robin: the cursor
        // advances past each winner.
        let order: Vec<_> = (0..6).map(|_| iu.select_fetch(&[2, 2, 2], 0)).collect();
        assert_eq!(
            order,
            vec![Some(0), Some(1), Some(2), Some(0), Some(1), Some(2)]
        );
    }

    #[test]
    fn icount_skips_unfetchable_and_excluded_threads() {
        let mut iu = unit(3, FetchPolicy::Icount);
        let tag = smt_uarch::TagAllocator::new(4).alloc().unwrap();
        iu.suspend(1, tag, 0);
        // Thread 1 is emptiest but suspended: no wasted slot under ICOUNT.
        assert_eq!(iu.select_fetch(&[4, 0, 2], 0), Some(2));
        // Port exclusion: thread 2 already fetched this cycle.
        assert_eq!(iu.select_fetch(&[4, 0, 2], 1 << 2), Some(0));
        // Everyone suspended/excluded: nothing to grant.
        assert_eq!(iu.select_fetch(&[4, 0, 2], (1 << 0) | (1 << 2)), None);
    }

    #[test]
    fn icount_treats_missing_occupancy_as_empty() {
        let mut iu = unit(2, FetchPolicy::Icount);
        // A short (or empty) occupancy slice counts unlisted threads as 0;
        // ties then rotate.
        assert_eq!(iu.select(), Some(0));
        assert_eq!(iu.select(), Some(1));
    }

    #[test]
    fn second_port_serves_a_distinct_thread_under_every_policy() {
        for policy in [
            FetchPolicy::TrueRoundRobin,
            FetchPolicy::MaskedRoundRobin,
            FetchPolicy::ConditionalSwitch,
            FetchPolicy::Icount,
        ] {
            let mut iu = unit(2, policy);
            let first = iu.select_fetch(&[0, 0], 0).unwrap();
            let second = iu.select_fetch(&[0, 0], 1 << first);
            assert_eq!(second, Some(1 - first), "{policy}: ports must differ");
            // With a single live thread the second port finds nobody.
            let mut iu = unit(1, policy);
            let first = iu.select_fetch(&[0], 0).unwrap();
            assert_eq!(first, 0);
            assert_eq!(iu.select_fetch(&[0], 1 << 0), None, "{policy}");
        }
    }

    /// Satellite of the speculation-depth knob: the per-policy stall
    /// behaviour when a thread hits its unresolved-branch limit. True
    /// Round Robin *wastes* the stalled thread's slot (the counter
    /// advances "irrespective of the state of execution", exactly like a
    /// suspension); the selective policies skip it and give the slot to a
    /// sibling.
    #[test]
    fn spec_stall_wastes_trr_slot_and_is_skipped_elsewhere() {
        // True Round Robin: the slot is consumed, not redistributed.
        let mut iu = unit(3, FetchPolicy::TrueRoundRobin);
        iu.set_spec_stall(1, true);
        assert!(iu.is_spec_stalled(1));
        assert_eq!(iu.select(), Some(0));
        assert_eq!(iu.select(), None, "stalled thread's slot is wasted");
        assert_eq!(iu.select(), Some(2));
        iu.set_spec_stall(1, false);
        assert_eq!(iu.select(), Some(0));
        assert_eq!(iu.select(), Some(1), "cleared stall fetches again");

        // Masked Round Robin: skipped, no slot lost.
        let mut iu = unit(3, FetchPolicy::MaskedRoundRobin);
        iu.set_spec_stall(1, true);
        assert_eq!(iu.select(), Some(0));
        assert_eq!(iu.select(), Some(2), "selective policy skips the stall");

        // ICOUNT: the emptiest thread loses priority while stalled.
        let mut iu = unit(3, FetchPolicy::Icount);
        iu.set_spec_stall(1, true);
        assert_eq!(iu.select_fetch(&[4, 0, 2], 0), Some(2));
        iu.set_spec_stall(1, false);
        assert_eq!(iu.select_fetch(&[4, 0, 2], 0), Some(1));

        // Conditional Switch: a stalled active thread forces a switch.
        let mut iu = unit(2, FetchPolicy::ConditionalSwitch);
        assert_eq!(iu.select(), Some(0));
        iu.set_spec_stall(0, true);
        assert_eq!(iu.select(), Some(1), "stall switches the active thread");
    }

    #[test]
    fn cswitch_secondary_port_leaves_the_switch_state_alone() {
        let mut iu = unit(3, FetchPolicy::ConditionalSwitch);
        iu.signal_switch(0);
        // Port 1: the armed switch fires, active moves to 1.
        assert_eq!(iu.select_fetch(&[], 0), Some(1));
        assert_eq!(iu.active_thread(), 1);
        iu.signal_switch(1);
        // Port 2 (thread 1 excluded): serves a sibling but must not
        // consume thread 1's pending switch or move `active`.
        assert_eq!(iu.select_fetch(&[], 1 << 1), Some(2));
        assert_eq!(iu.active_thread(), 1, "secondary port must not switch");
        assert!(iu.has_switch_pending(1), "signal stays armed");
        // The next primary grant honours the still-armed switch.
        assert_eq!(iu.select_fetch(&[], 0), Some(2));
        assert_eq!(iu.active_thread(), 2);
    }
}
