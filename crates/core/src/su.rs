//! The scheduling unit: the SDSP's combined reorder buffer and instruction
//! window (Section 2.2), extended with a thread-ID field per entry
//! (Section 3.2).
//!
//! The unit is organized in *blocks* — decode groups of up to four
//! instructions from one thread. Capacity is counted in blocks, matching the
//! hardware, where a partially valid fetch block still occupies a full row
//! of the shifting structure. Entries hold renamed operands (value or
//! producer tag), so the issue logic "does not have to concern itself with
//! the thread that an instruction belongs to".
//!
//! # Data layout
//!
//! The unit is a struct-of-arrays slab. A *row* is a block slot; a *slot*
//! holds one instruction. Rows have `stride = block_size.next_power_of_two()`
//! slots, so a dense `u16` *handle* names a slot as
//! `row << shift | entry_index` and splits back with a shift and a mask.
//! Every per-entry field lives in its own parallel array indexed by handle
//! (tags, pcs, operands, results, deferred faults, flag bits), and every
//! per-block field in an array indexed by row (block id, thread, length,
//! per-row bitmasks). Block order is a ring of row indices (`order`), and a
//! free-list of rows recycles storage — after warmup the unit never touches
//! the allocator.
//!
//! The hardware's associative searches (wakeup broadcast, writeback
//! selection, commit readiness, decode rename lookup, store-to-load
//! forwarding) are modelled with index structures over handles instead of
//! full-window scans, without changing a single observable outcome (the
//! cycle-exactness goldens in `tests/` pin this down):
//!
//! * **Ready/unissued bitmasks** — each row keeps `unissued`, `ready`,
//!   `done`, and `ctrl` masks, one bit per slot. The issue stage scans
//!   `ready` with `trailing_zeros`, touching exactly the issuable entries;
//!   commit readiness (`find_committable`, `bottom_block_status`) is a
//!   popcount, and the memory-ordering gates (`any_older_unfinished*`) are
//!   mask tests. (An event-driven sorted ready *list* was prototyped in an
//!   earlier PR and benchmarked slower than this scan at these window
//!   sizes; see `BENCH_sim_throughput.json` pr2.)
//! * **Waiter lists** — intrusive linked lists threaded through
//!   `waiter_next`, headed at the *producer's* slot: node `2·handle + k` is
//!   operand `k` of the consumer at `handle`. [`broadcast`] walks exactly
//!   the registered consumers. (Keying by producer handle rather than tag
//!   value removes the hash map the old layout needed — raw tags are never
//!   reused, so their value space is unbounded.)
//! * **Completion queue** — issued entries enter a sorted queue keyed by
//!   `(done_at, block id, handle)`; [`pop_completion`] pops the earliest.
//!   Block ids grow monotonically along the ring and handles grow with the
//!   entry index inside a row, so the queue order reproduces the reference
//!   scan's tie-break (earliest `done_at`, oldest position first) exactly.
//!   Squashed entries are invalidated lazily: a popped record is discarded
//!   unless it still names a resident entry executing toward that deadline.
//! * **Producer lists** — decode rename lookup resolves `(tid, reg)` to the
//!   youngest in-flight producer through an age-ordered list of handles per
//!   architectural register.
//! * **Forwarding chains** — completed, unfaulted stores are linked into
//!   one of a fixed set of address-hashed buckets, youngest first, so a
//!   load's store-to-load forwarding probe walks only resident stores that
//!   hash like its address. (This replaces the simulator's old
//!   address-keyed hash map, which allocated on every new store address.)
//!
//! The invariant making the index structures sound: `(block id, entry
//! index)` identifies an entry *forever*. Entries are never appended to a
//! resident block, and squashes only drain from the young end, so a stale
//! reference can dangle but never alias a different instruction. Rows carry
//! their block id (`u64::MAX` when free), which doubles as the generation
//! check for lazy invalidation.
//!
//! [`broadcast`]: SchedulingUnit::broadcast
//! [`pop_completion`]: SchedulingUnit::pop_completion

use std::collections::VecDeque;

use smt_isa::{DecodedInsn, REG_FILE_SIZE};
use smt_uarch::Tag;

use crate::config::CommitPolicy;

/// A renamed source operand.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operand {
    /// The instruction does not read this operand slot.
    Unused,
    /// Value known, available for issue from cycle `since` (same cycle with
    /// bypassing, the next cycle without).
    Ready {
        /// The operand value.
        value: u64,
        /// Cycle the value became available.
        since: u64,
    },
    /// Waiting for the producer with this renaming tag to write back.
    Waiting {
        /// Producer's tag.
        tag: Tag,
    },
}

impl Operand {
    /// The value, if ready and usable at cycle `now` under the given
    /// bypassing rule. `Unused` operands read as zero.
    #[must_use]
    pub fn value_at(&self, now: u64, bypass: bool) -> Option<u64> {
        match *self {
            Operand::Unused => Some(0),
            Operand::Ready { value, since } => {
                let usable = if bypass { since <= now } else { since < now };
                usable.then_some(value)
            }
            Operand::Waiting { .. } => None,
        }
    }
}

/// Execution state of a scheduling-unit entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EntryState {
    /// Not yet issued.
    Waiting,
    /// Issued; result arrives at `done_at`.
    Executing {
        /// Writeback cycle.
        done_at: u64,
    },
    /// Result written back (or no result to produce).
    Done,
}

/// Result of a decode-time operand lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Lookup {
    /// No in-flight producer: read the committed register file.
    NotFound,
    /// Producer still executing: wait on its tag. Carries the producer's
    /// slot handle so the consumer can register on its waiter list.
    Pending(Tag, u16),
    /// Producer has written back: take the value directly.
    Available(u64),
}

/// "No handle": the null link of every intrusive list in the slab, and the
/// `wait_src` value of an operand slot that is not waiting on a producer.
pub const NO_SRC: u16 = u16::MAX;

/// Flag bits of the per-slot `flags` array.
const F_PRED_TAKEN: u8 = 1 << 0;
const F_TAKEN: u8 = 1 << 1;
const F_MISPREDICTED: u8 = 1 << 2;
const F_STORE_BUFFERED: u8 = 1 << 3;
const F_SYNC_SATISFIED: u8 = 1 << 4;
const F_DCACHE_MISS: u8 = 1 << 5;
const F_FWD_INDEXED: u8 = 1 << 6;

/// Buckets of the store-to-load forwarding index. Fixed so the index never
/// allocates; collisions are filtered by comparing effective addresses.
const FWD_BUCKETS: usize = 64;

/// Bucket of an effective address. Addresses are word-aligned in the common
/// case, so the low three bits carry no entropy; fold some higher bits in
/// to spread strided access patterns.
#[inline]
fn fwd_bucket(addr: u64) -> usize {
    let x = addr >> 3;
    ((x ^ (x >> 6) ^ (x >> 12)) & (FWD_BUCKETS as u64 - 1)) as usize
}

/// Mask with the low `n` bits set (`n <= 32`).
#[inline]
fn low_mask(n: usize) -> u32 {
    debug_assert!(n <= 32);
    if n >= 32 {
        u32::MAX
    } else {
        (1u32 << n) - 1
    }
}

/// One instruction of a decode group, staged for [`push_block`]. Decode
/// fills these in a reusable buffer, resolving operands (and recording the
/// producer handle of each `Waiting` operand in `wait_src`) before the
/// group is admitted as a block.
///
/// [`push_block`]: SchedulingUnit::push_block
#[derive(Clone, Copy, Debug)]
pub struct StagedEntry {
    /// Globally unique renaming tag.
    pub tag: Tag,
    /// Decode-order instruction identity (unique per run, never reused —
    /// unlike tags). This is the key lifecycle tracing uses to correlate
    /// events across stages.
    pub uid: u64,
    /// Instruction index (for predictor updates and debugging).
    pub pc: usize,
    /// The predecoded instruction.
    pub insn: DecodedInsn,
    /// Renamed source operands.
    pub ops: [Operand; 2],
    /// For each `Waiting` operand, the producer's slot handle ([`NO_SRC`]
    /// otherwise). In-group producers use [`SchedulingUnit::staging_handle`].
    pub wait_src: [u16; 2],
    /// Fetch-time prediction: taken?
    pub predicted_taken: bool,
    /// Fetch-time prediction: target if taken.
    pub predicted_target: usize,
}

impl StagedEntry {
    /// A fresh staged entry with both operands unused.
    #[must_use]
    pub fn new(tag: Tag, pc: usize, insn: DecodedInsn) -> Self {
        StagedEntry {
            tag,
            uid: 0,
            pc,
            insn,
            ops: [Operand::Unused; 2],
            wait_src: [NO_SRC; 2],
            predicted_taken: false,
            predicted_target: 0,
        }
    }
}

/// What the caller needs to know about one squashed entry: enough to free
/// its tag, trace the squash, and unwind the memory-sync queue.
#[derive(Clone, Copy, Debug)]
pub struct SquashedEntry {
    /// The entry's renaming tag (the caller returns it to the allocator).
    pub tag: Tag,
    /// Lifecycle identity, for tracing.
    pub uid: u64,
    /// Whether the entry was a memory-sync instruction that had not yet
    /// completed — i.e. it still occupies a slot in the simulator's
    /// per-thread memory-ordering queue.
    pub memsync_outstanding: bool,
}

/// Copy-out view of one entry of a committing block.
#[derive(Clone, Copy, Debug)]
pub struct CommittedEntry {
    /// Renaming tag (the caller returns it to the allocator).
    pub tag: Tag,
    /// Lifecycle identity, for tracing and the commit sink.
    pub uid: u64,
    /// Instruction index.
    pub pc: usize,
    /// The predecoded instruction.
    pub insn: DecodedInsn,
    /// Result value (architectural destination value, if any).
    pub result: u64,
    /// Effective address of an executed load/store.
    pub mem_addr: u64,
    /// Resolved control-transfer outcome: taken?
    pub taken: bool,
    /// Resolved target.
    pub target: usize,
    /// For `WAIT`: whether the poll found the condition satisfied.
    pub sync_satisfied: bool,
}

/// The scheduling unit proper: a struct-of-arrays slab (see the module
/// docs for the layout).
#[derive(Clone, Debug)]
pub struct SchedulingUnit {
    // ---- dimensions ----
    capacity_blocks: usize,
    block_size: usize,
    /// `log2(stride)`: a handle is `row << shift | entry_index`.
    shift: u32,
    /// `stride - 1`: masks a handle down to its entry index.
    col_mask: usize,
    next_block_id: u64,
    /// Resident instruction count (kept so occupancy sampling is O(1)).
    entries_count: usize,
    // ---- block ring ----
    /// Resident rows, oldest first. A plain vector: indexed on every
    /// accessor call, so the wrap arithmetic of a deque costs more than
    /// the O(blocks) shift on the (per-block, not per-cycle) removal.
    order: Vec<u16>,
    /// Free rows (LIFO). `free.last()` is the row the next push will use.
    free: Vec<u16>,
    // ---- per-row (indexed by row) ----
    /// Block id of the resident block, `u64::MAX` when the row is free.
    /// Doubles as the generation check for lazy invalidation.
    row_id: Vec<u64>,
    row_tid: Vec<u8>,
    row_len: Vec<u8>,
    /// Whether any entry of the row carries a deferred fault — kept
    /// coherent by [`set_fault`](Self::set_fault) and recomputed on partial
    /// squash, so the commit stage's precise-fault check is a flag test.
    row_faulted: Vec<bool>,
    /// One bit per slot: entry is resident and not yet issued.
    mask_unissued: Vec<u32>,
    /// One bit per slot: entry is unissued and no operand is waiting on a
    /// producer (issue candidates; bypass timing is re-checked at issue).
    mask_ready: Vec<u32>,
    /// One bit per slot: entry has written back.
    mask_done: Vec<u32>,
    /// `low_mask(row_len)` per row: `mask_done == row_full` is the
    /// all-written-back test the commit scan runs every cycle (an equality
    /// compare — `count_ones()` lowers to a slow software popcount on
    /// baseline x86-64).
    row_full: Vec<u32>,
    /// One bit per slot: entry is a control transfer.
    mask_ctrl: Vec<u32>,
    // ---- per-slot (indexed by handle) ----
    tag: Vec<u64>,
    uid: Vec<u64>,
    pc: Vec<u32>,
    insn: Vec<DecodedInsn>,
    ops: Vec<[Operand; 2]>,
    /// Producer handle each `Waiting` operand is registered on.
    wait_src: Vec<[u16; 2]>,
    done_at: Vec<u64>,
    result: Vec<u64>,
    mem_addr: Vec<u64>,
    fault: Vec<Option<smt_mem::MemError>>,
    predicted_target: Vec<u32>,
    target: Vec<u32>,
    flags: Vec<u8>,
    // ---- wakeup index ----
    /// Head of the waiter list of the producer at each slot ([`NO_SRC`] =
    /// empty). Nodes are `2·consumer_handle + operand_index`.
    waiter_head: Vec<u16>,
    /// Next link per waiter node.
    waiter_next: Vec<u16>,
    // ---- store-to-load forwarding index ----
    /// Head of each address-hashed chain of completed resident stores.
    fwd_head: [u16; FWD_BUCKETS],
    /// Next link per slot (chains are sorted youngest first).
    fwd_next: Vec<u16>,
    // ---- rename index ----
    /// Age-ordered in-flight producer handles, oldest at the front, in a
    /// flat table indexed by `tid * REG_FILE_SIZE + reg` (grown on demand —
    /// the unit does not know the thread count).
    producers: Vec<VecDeque<u16>>,
    // ---- writeback selection ----
    /// Issued entries as `(done_at, block id, handle)`, kept sorted
    /// ascending from `comp_head`; `completions[comp_head]` is the next
    /// completion. Issue deadlines mostly arrive in order, so sorted
    /// insertion beats a binary heap here (and squashed records are
    /// discarded lazily on pop). A flat vector with a consumed-prefix
    /// cursor instead of a deque: the hot insert is a plain `push`, and
    /// pops advance the cursor without wrap arithmetic; the prefix is
    /// compacted away once it outgrows a small bound.
    completions: Vec<(u64, u64, u16)>,
    comp_head: usize,
    /// Reusable buffer backing [`squash_after`](Self::squash_after)'s
    /// return value.
    squash_buf: Vec<SquashedEntry>,
}

impl SchedulingUnit {
    /// Creates an empty unit holding `capacity_blocks` blocks of
    /// `block_size` instructions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero, if `block_size` exceeds the
    /// 32-bit row masks, or if the slab would not fit `u16` handles.
    #[must_use]
    pub fn new(capacity_blocks: usize, block_size: usize) -> Self {
        assert!(
            capacity_blocks > 0 && block_size > 0,
            "degenerate scheduling unit"
        );
        assert!(block_size <= 32, "block size exceeds the row bitmasks");
        let stride = block_size.next_power_of_two();
        let shift = stride.trailing_zeros();
        let slots = capacity_blocks << shift;
        // Waiter nodes are 2·handle + k, and both handles and nodes must
        // stay below the u16 null sentinel.
        assert!(
            slots * 2 < NO_SRC as usize,
            "unit too large for u16 handles"
        );
        let dummy = DecodedInsn::new(smt_isa::Instruction::halt());
        SchedulingUnit {
            capacity_blocks,
            block_size,
            shift,
            col_mask: stride - 1,
            next_block_id: 0,
            entries_count: 0,
            order: Vec::with_capacity(capacity_blocks),
            free: (0..capacity_blocks as u16).rev().collect(),
            row_id: vec![u64::MAX; capacity_blocks],
            row_tid: vec![0; capacity_blocks],
            row_len: vec![0; capacity_blocks],
            row_faulted: vec![false; capacity_blocks],
            mask_unissued: vec![0; capacity_blocks],
            mask_ready: vec![0; capacity_blocks],
            mask_done: vec![0; capacity_blocks],
            row_full: vec![0; capacity_blocks],
            mask_ctrl: vec![0; capacity_blocks],
            tag: vec![0; slots],
            uid: vec![0; slots],
            pc: vec![0; slots],
            insn: vec![dummy; slots],
            ops: vec![[Operand::Unused; 2]; slots],
            wait_src: vec![[NO_SRC; 2]; slots],
            done_at: vec![0; slots],
            result: vec![0; slots],
            mem_addr: vec![0; slots],
            fault: vec![None; slots],
            predicted_target: vec![0; slots],
            target: vec![0; slots],
            flags: vec![0; slots],
            waiter_head: vec![NO_SRC; slots],
            waiter_next: vec![NO_SRC; slots * 2],
            fwd_head: [NO_SRC; FWD_BUCKETS],
            fwd_next: vec![NO_SRC; slots],
            producers: Vec::new(),
            completions: Vec::with_capacity(slots),
            comp_head: 0,
            squash_buf: Vec::with_capacity(slots),
        }
    }

    /// Pre-grows the rename index for `n` threads so the first decode of
    /// each thread does not pay for table growth, pre-sizing each producer
    /// list to the window (its hard upper bound) so steady state never
    /// touches the allocator.
    pub fn reserve_threads(&mut self, n: usize) {
        let slots = self.capacity_blocks << self.shift;
        if self.producers.len() < n * REG_FILE_SIZE {
            self.producers
                .resize_with(n * REG_FILE_SIZE, || VecDeque::with_capacity(slots));
        }
    }

    // ---- geometry helpers -----------------------------------------------------------

    /// The row holding the block at ring position `bi`.
    #[inline]
    fn row(&self, bi: usize) -> usize {
        self.order[bi] as usize
    }

    /// Handle of entry `ei` of the block at ring position `bi`.
    #[inline]
    fn handle(&self, bi: usize, ei: usize) -> usize {
        (self.row(bi) << self.shift) | ei
    }

    #[inline]
    fn split(&self, h: usize) -> (usize, usize) {
        (h >> self.shift, h & self.col_mask)
    }

    /// Age key of a resident slot: `(block id, entry index)` — totally
    /// ordered across the window because block ids are monotone.
    #[inline]
    fn age_key(&self, h: usize) -> (u64, usize) {
        (self.row_id[h >> self.shift], h & self.col_mask)
    }

    // ---- capacity -------------------------------------------------------------------

    /// Whether a new block can enter.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.order.len() < self.capacity_blocks
    }

    /// Number of resident blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.order.len()
    }

    /// Number of resident instructions (valid entries, not padded slots).
    #[must_use]
    pub fn num_entries(&self) -> usize {
        self.entries_count
    }

    /// Whether the unit is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Position of the block with id `bid`, if still resident. The ring
    /// holds at most a handful of blocks and most lookups land near the
    /// young end, so a reverse linear scan beats a binary search here; ids
    /// are monotone, so the scan can stop early.
    fn pos_of(&self, bid: u64) -> Option<usize> {
        let mut i = self.order.len();
        while i > 0 {
            i -= 1;
            let id = self.row_id[self.order[i] as usize];
            if id == bid {
                return Some(i);
            }
            if id < bid {
                return None;
            }
        }
        None
    }

    /// Position of the block with id `bid`, if still resident — for callers
    /// holding stable `(block id, entry index)` references (e.g. the
    /// simulator's memory-sync queue).
    #[must_use]
    pub fn position_of(&self, bid: u64) -> Option<usize> {
        self.pos_of(bid)
    }

    // ---- block-level reads ----------------------------------------------------------

    /// Block id of the block at position `i` (0 = oldest).
    #[must_use]
    pub fn block_id(&self, i: usize) -> u64 {
        self.row_id[self.row(i)]
    }

    /// Owning thread of the block at position `i`.
    #[must_use]
    pub fn block_tid(&self, i: usize) -> usize {
        self.row_tid[self.row(i)] as usize
    }

    /// Number of entries of the block at position `i`.
    #[must_use]
    pub fn block_len(&self, i: usize) -> usize {
        self.row_len[self.row(i)] as usize
    }

    /// Whether any entry of the block is still waiting to issue.
    #[must_use]
    pub fn has_unissued(&self, i: usize) -> bool {
        self.mask_unissued[self.row(i)] != 0
    }

    /// Whether any entry of the block carries a deferred fault.
    #[must_use]
    pub fn block_has_fault(&self, i: usize) -> bool {
        self.row_faulted[self.row(i)]
    }

    /// Issue candidates of the block at position `i`: one bit per entry
    /// that is unissued with no operand waiting on a producer. The issue
    /// stage scans this with `trailing_zeros`; bypass timing (`value_at`)
    /// is re-checked per candidate.
    #[must_use]
    pub fn ready_mask(&self, i: usize) -> u32 {
        self.mask_ready[self.row(i)]
    }

    /// Entry index of the oldest unfinished (not `Done`) entry of the
    /// block at position `i`, if any — drives head-stall attribution.
    #[must_use]
    pub fn first_unfinished(&self, i: usize) -> Option<usize> {
        let row = self.row(i);
        let m = low_mask(self.row_len[row] as usize) & !self.mask_done[row];
        (m != 0).then(|| m.trailing_zeros() as usize)
    }

    /// Number of thread `tid`'s resident conditional branches that have
    /// not yet written back — the unresolved speculation depth the fetch
    /// stage gates on when a speculation-depth limit is configured.
    /// Unconditional control transfers don't count: jumps resolve at
    /// decode and `halt` is never speculated past.
    #[must_use]
    pub fn unresolved_branches(&self, tid: usize) -> u32 {
        let mut n = 0;
        for &row16 in &self.order {
            let row = row16 as usize;
            if self.row_tid[row] as usize != tid {
                continue;
            }
            let mut m = self.mask_ctrl[row] & !self.mask_done[row];
            while m != 0 {
                let ei = m.trailing_zeros() as usize;
                m &= m - 1;
                if self.insn[(row << self.shift) | ei].is_cond_branch() {
                    n += 1;
                }
            }
        }
        n
    }

    // ---- entry-level reads ----------------------------------------------------------

    /// Renaming tag of entry `(bi, ei)`.
    #[must_use]
    pub fn tag_at(&self, bi: usize, ei: usize) -> Tag {
        Tag::from_raw(self.tag[self.handle(bi, ei)])
    }

    /// Lifecycle uid of entry `(bi, ei)`.
    #[must_use]
    pub fn uid_at(&self, bi: usize, ei: usize) -> u64 {
        self.uid[self.handle(bi, ei)]
    }

    /// Instruction index of entry `(bi, ei)`.
    #[must_use]
    pub fn pc_at(&self, bi: usize, ei: usize) -> usize {
        self.pc[self.handle(bi, ei)] as usize
    }

    /// Predecoded instruction of entry `(bi, ei)`.
    #[must_use]
    pub fn insn_at(&self, bi: usize, ei: usize) -> DecodedInsn {
        self.insn[self.handle(bi, ei)]
    }

    /// Renamed operands of entry `(bi, ei)`.
    #[must_use]
    pub fn ops_at(&self, bi: usize, ei: usize) -> [Operand; 2] {
        self.ops[self.handle(bi, ei)]
    }

    /// Pipeline state of entry `(bi, ei)`.
    #[must_use]
    pub fn state_at(&self, bi: usize, ei: usize) -> EntryState {
        let row = self.row(bi);
        let bit = 1u32 << ei;
        if self.mask_done[row] & bit != 0 {
            EntryState::Done
        } else if self.mask_unissued[row] & bit != 0 {
            EntryState::Waiting
        } else {
            EntryState::Executing {
                done_at: self.done_at[(row << self.shift) | ei],
            }
        }
    }

    /// Whether entry `(bi, ei)` has written back.
    #[must_use]
    pub fn is_done_at(&self, bi: usize, ei: usize) -> bool {
        self.mask_done[self.row(bi)] & (1 << ei) != 0
    }

    /// Result value of entry `(bi, ei)`.
    #[must_use]
    pub fn result_at(&self, bi: usize, ei: usize) -> u64 {
        self.result[self.handle(bi, ei)]
    }

    /// Effective address of entry `(bi, ei)` (loads/stores, once issued).
    #[must_use]
    pub fn mem_addr_at(&self, bi: usize, ei: usize) -> u64 {
        self.mem_addr[self.handle(bi, ei)]
    }

    /// Deferred memory fault of entry `(bi, ei)`, if any.
    #[must_use]
    pub fn fault_at(&self, bi: usize, ei: usize) -> Option<smt_mem::MemError> {
        self.fault[self.handle(bi, ei)]
    }

    /// Fetch-time prediction of entry `(bi, ei)`: taken?
    #[must_use]
    pub fn predicted_taken_at(&self, bi: usize, ei: usize) -> bool {
        self.flags[self.handle(bi, ei)] & F_PRED_TAKEN != 0
    }

    /// Fetch-time predicted target of entry `(bi, ei)`.
    #[must_use]
    pub fn predicted_target_at(&self, bi: usize, ei: usize) -> usize {
        self.predicted_target[self.handle(bi, ei)] as usize
    }

    /// Resolved control-transfer outcome of entry `(bi, ei)`: taken?
    #[must_use]
    pub fn taken_at(&self, bi: usize, ei: usize) -> bool {
        self.flags[self.handle(bi, ei)] & F_TAKEN != 0
    }

    /// Resolved control-transfer target of entry `(bi, ei)`.
    #[must_use]
    pub fn target_at(&self, bi: usize, ei: usize) -> usize {
        self.target[self.handle(bi, ei)] as usize
    }

    /// Whether entry `(bi, ei)` was found mispredicted at execute.
    #[must_use]
    pub fn mispredicted_at(&self, bi: usize, ei: usize) -> bool {
        self.flags[self.handle(bi, ei)] & F_MISPREDICTED != 0
    }

    /// Whether the committed store at `(bi, ei)` is already in the store
    /// buffer (commit may take several cycles when the buffer is tight).
    #[must_use]
    pub fn store_buffered_at(&self, bi: usize, ei: usize) -> bool {
        self.flags[self.handle(bi, ei)] & F_STORE_BUFFERED != 0
    }

    /// For `WAIT` at `(bi, ei)`: whether the poll found the condition
    /// satisfied.
    #[must_use]
    pub fn sync_satisfied_at(&self, bi: usize, ei: usize) -> bool {
        self.flags[self.handle(bi, ei)] & F_SYNC_SATISFIED != 0
    }

    /// Whether the issued load at `(bi, ei)` gets its data later than issue
    /// (cache miss or pending hit).
    #[must_use]
    pub fn dcache_miss_at(&self, bi: usize, ei: usize) -> bool {
        self.flags[self.handle(bi, ei)] & F_DCACHE_MISS != 0
    }

    /// Whether both operands of entry `(bi, ei)` are usable at `now`.
    #[must_use]
    pub fn operands_ready_at(&self, bi: usize, ei: usize, now: u64, bypass: bool) -> bool {
        self.ops[self.handle(bi, ei)]
            .iter()
            .all(|o| o.value_at(now, bypass).is_some())
    }

    /// Copy-out view of entry `(bi, ei)` for the commit drain.
    #[must_use]
    pub fn commit_view(&self, bi: usize, ei: usize) -> CommittedEntry {
        let h = self.handle(bi, ei);
        CommittedEntry {
            tag: Tag::from_raw(self.tag[h]),
            uid: self.uid[h],
            pc: self.pc[h] as usize,
            insn: self.insn[h],
            result: self.result[h],
            mem_addr: self.mem_addr[h],
            taken: self.flags[h] & F_TAKEN != 0,
            target: self.target[h] as usize,
            sync_satisfied: self.flags[h] & F_SYNC_SATISFIED != 0,
        }
    }

    // ---- entry-level writes ---------------------------------------------------------

    /// Sets the result value of entry `(bi, ei)`.
    pub fn set_result(&mut self, bi: usize, ei: usize, value: u64) {
        let h = self.handle(bi, ei);
        self.result[h] = value;
    }

    /// Sets the effective address of entry `(bi, ei)`.
    pub fn set_mem_addr(&mut self, bi: usize, ei: usize, addr: u64) {
        let h = self.handle(bi, ei);
        self.mem_addr[h] = addr;
    }

    /// Records the resolved outcome of the control transfer at `(bi, ei)`.
    pub fn set_taken_target(&mut self, bi: usize, ei: usize, taken: bool, target: usize) {
        let h = self.handle(bi, ei);
        if taken {
            self.flags[h] |= F_TAKEN;
        } else {
            self.flags[h] &= !F_TAKEN;
        }
        self.target[h] = target as u32;
    }

    /// Marks the control transfer at `(bi, ei)` as mispredicted.
    pub fn set_mispredicted(&mut self, bi: usize, ei: usize) {
        let h = self.handle(bi, ei);
        self.flags[h] |= F_MISPREDICTED;
    }

    /// Marks the committed store at `(bi, ei)` as pushed into the store
    /// buffer.
    pub fn set_store_buffered(&mut self, bi: usize, ei: usize) {
        let h = self.handle(bi, ei);
        self.flags[h] |= F_STORE_BUFFERED;
    }

    /// Records the poll outcome of the `WAIT` at `(bi, ei)`.
    pub fn set_sync_satisfied(&mut self, bi: usize, ei: usize, satisfied: bool) {
        let h = self.handle(bi, ei);
        if satisfied {
            self.flags[h] |= F_SYNC_SATISFIED;
        } else {
            self.flags[h] &= !F_SYNC_SATISFIED;
        }
    }

    /// Marks the issued load at `(bi, ei)` as getting its data later than
    /// issue.
    pub fn set_dcache_miss(&mut self, bi: usize, ei: usize, miss: bool) {
        let h = self.handle(bi, ei);
        if miss {
            self.flags[h] |= F_DCACHE_MISS;
        } else {
            self.flags[h] &= !F_DCACHE_MISS;
        }
    }

    /// Records a deferred fault on entry `(bi, ei)`, keeping the block-level
    /// flag coherent. All fault writes must go through here.
    pub fn set_fault(&mut self, bi: usize, ei: usize, err: smt_mem::MemError) {
        let row = self.row(bi);
        self.fault[(row << self.shift) | ei] = Some(err);
        self.row_faulted[row] = true;
    }

    // ---- decode: staging and admission ----------------------------------------------

    /// Handle that entry `idx` of the *next* pushed block will occupy —
    /// lets decode record in-group producer handles while staging. Valid
    /// until the next block push or removal.
    ///
    /// # Panics
    ///
    /// Panics if the unit is full.
    #[must_use]
    pub fn staging_handle(&self, idx: usize) -> u16 {
        let row = *self.free.last().expect("scheduling unit full");
        ((row as usize) << self.shift | idx) as u16
    }

    /// Admits a decode group as the youngest block, indexing its producers
    /// and waiting operands. Returns the block id.
    ///
    /// # Panics
    ///
    /// Panics if the unit is full or the group is empty or oversized.
    pub fn push_block(&mut self, tid: usize, entries: &[StagedEntry]) -> u64 {
        assert!(
            !entries.is_empty() && entries.len() <= self.block_size,
            "block of {} entries (block size {})",
            entries.len(),
            self.block_size
        );
        debug_assert!(tid <= u8::MAX as usize, "thread id exceeds the slab");
        let row = self.free.pop().expect("scheduling unit full") as usize;
        let id = self.next_block_id;
        self.next_block_id += 1;
        self.row_id[row] = id;
        self.row_tid[row] = tid as u8;
        self.row_len[row] = entries.len() as u8;
        self.row_faulted[row] = false;
        let mut unissued = 0u32;
        let mut ready = 0u32;
        let mut ctrl = 0u32;
        for (ei, e) in entries.iter().enumerate() {
            let h = (row << self.shift) | ei;
            debug_assert!(e.pc <= u32::MAX as usize);
            self.tag[h] = e.tag.raw();
            self.uid[h] = e.uid;
            self.pc[h] = e.pc as u32;
            self.insn[h] = e.insn;
            self.ops[h] = e.ops;
            self.wait_src[h] = e.wait_src;
            self.done_at[h] = 0;
            self.result[h] = 0;
            self.mem_addr[h] = 0;
            self.fault[h] = None;
            self.predicted_target[h] = e.predicted_target as u32;
            self.target[h] = 0;
            self.flags[h] = if e.predicted_taken { F_PRED_TAKEN } else { 0 };
            debug_assert_eq!(self.waiter_head[h], NO_SRC, "stale waiter list");
            unissued |= 1 << ei;
            if e.insn.is_control() {
                ctrl |= 1 << ei;
            }
            let mut waiting = false;
            for k in 0..2 {
                if matches!(e.ops[k], Operand::Waiting { .. }) {
                    waiting = true;
                    self.link_waiter(h, k);
                } else {
                    debug_assert_eq!(e.wait_src[k], NO_SRC);
                }
            }
            if !waiting {
                ready |= 1 << ei;
            }
            if let Some(reg) = e.insn.dest {
                self.producer_list(tid, reg.index()).push_back(h as u16);
            }
        }
        self.mask_unissued[row] = unissued;
        self.mask_ready[row] = ready;
        self.mask_done[row] = 0;
        self.row_full[row] = unissued;
        self.mask_ctrl[row] = ctrl;
        self.entries_count += entries.len();
        self.order.push(row as u16);
        id
    }

    /// Links operand `k` of the consumer at `h` onto its producer's waiter
    /// list (`wait_src` must already name the producer).
    fn link_waiter(&mut self, h: usize, k: usize) {
        let p = self.wait_src[h][k];
        debug_assert_ne!(p, NO_SRC, "waiting operand without a producer handle");
        debug_assert!(
            matches!(self.ops[h][k], Operand::Waiting { tag } if tag.raw() == self.tag[p as usize]),
            "wait_src names a slot with a different tag"
        );
        let node = (h * 2 + k) as u16;
        self.waiter_next[node as usize] = self.waiter_head[p as usize];
        self.waiter_head[p as usize] = node;
    }

    /// Unlinks waiter node `node` from producer `p`'s list, tolerating an
    /// already-cleared list (squash may clear the producer first).
    fn unlink_waiter(&mut self, p: u16, node: u16) {
        let head = self.waiter_head[p as usize];
        if head == node {
            self.waiter_head[p as usize] = self.waiter_next[node as usize];
            return;
        }
        let mut cur = head;
        while cur != NO_SRC {
            let next = self.waiter_next[cur as usize];
            if next == node {
                self.waiter_next[cur as usize] = self.waiter_next[node as usize];
                return;
            }
            cur = next;
        }
    }

    /// Mutable producer list for `(tid, reg)`, growing the flat table on
    /// first touch of a new thread.
    fn producer_list(&mut self, tid: usize, reg: usize) -> &mut VecDeque<u16> {
        let idx = tid * REG_FILE_SIZE + reg;
        if idx >= self.producers.len() {
            let slots = self.capacity_blocks << self.shift;
            self.producers
                .resize_with((tid + 1) * REG_FILE_SIZE, || VecDeque::with_capacity(slots));
        }
        &mut self.producers[idx]
    }

    /// Decode-time operand lookup: the *youngest* in-flight producer of
    /// `(tid, reg)`, per the paper's associative search "modified … to
    /// succeed only if the thread number and the register number match".
    #[must_use]
    pub fn lookup(&self, tid: usize, reg: smt_isa::Reg) -> Lookup {
        let Some(&h) = self
            .producers
            .get(tid * REG_FILE_SIZE + reg.index())
            .and_then(VecDeque::back)
        else {
            return Lookup::NotFound;
        };
        let (row, ei) = self.split(h as usize);
        debug_assert_eq!(self.insn[h as usize].dest, Some(reg));
        if self.mask_done[row] & (1 << ei) != 0 {
            Lookup::Available(self.result[h as usize])
        } else {
            Lookup::Pending(Tag::from_raw(self.tag[h as usize]), h)
        }
    }

    // ---- wakeup / writeback ---------------------------------------------------------

    /// Broadcasts the writeback of the producer at `(bi, ei)`: every
    /// operand waiting on it becomes ready with `value` at cycle `now`.
    /// Walks exactly the registered waiter nodes — O(consumers), not
    /// O(window).
    pub fn broadcast(&mut self, bi: usize, ei: usize, value: u64, now: u64) {
        let p = self.handle(bi, ei);
        let mut node = self.waiter_head[p];
        self.waiter_head[p] = NO_SRC;
        while node != NO_SRC {
            let n = node as usize;
            let (h, k) = (n / 2, n % 2);
            node = self.waiter_next[n];
            debug_assert!(
                matches!(self.ops[h][k], Operand::Waiting { tag } if tag.raw() == self.tag[p]),
                "waiter list names a slot not waiting on this producer"
            );
            self.ops[h][k] = Operand::Ready { value, since: now };
            self.wait_src[h][k] = NO_SRC;
            let (row, c) = self.split(h);
            if self.mask_unissued[row] & (1 << c) != 0
                && !matches!(self.ops[h][k ^ 1], Operand::Waiting { .. })
            {
                self.mask_ready[row] |= 1 << c;
            }
        }
    }

    /// Sorted insertion into the completion queue (ascending by
    /// `(done_at, block id, handle)` — equivalent to the reference order
    /// `(done_at, block id, entry index)` because handles grow with the
    /// entry index inside a row).
    fn insert_completion(&mut self, key: (u64, u64, u16)) {
        if self.completions.last().is_none_or(|&c| c < key) {
            self.completions.push(key);
            return;
        }
        // Out-of-order deadline: place it within the live suffix (records
        // before the cursor are already consumed and about to be compacted).
        let live = &self.completions[self.comp_head..];
        let pos = self.comp_head + live.partition_point(|&c| c < key);
        self.completions.insert(pos, key);
    }

    /// Records that the entry at `(bi, ei)` issued and completes at
    /// `done_at`: the entry leaves the ready/unissued masks and the
    /// completion queue learns about the event.
    ///
    /// # Panics
    ///
    /// Panics if the entry has already issued.
    pub fn mark_executing(&mut self, bi: usize, ei: usize, done_at: u64) {
        let row = self.row(bi);
        let bit = 1u32 << ei;
        assert!(
            self.mask_unissued[row] & bit != 0,
            "entry issues exactly once"
        );
        self.mask_unissued[row] &= !bit;
        self.mask_ready[row] &= !bit;
        let h = (row << self.shift) | ei;
        self.done_at[h] = done_at;
        self.insert_completion((done_at, self.row_id[row], h as u16));
    }

    /// Marks the entry at `(bi, ei)` as written back (`Done`).
    ///
    /// # Panics
    ///
    /// Panics if the entry is already `Done`.
    pub fn mark_done(&mut self, bi: usize, ei: usize) {
        let row = self.row(bi);
        let bit = 1u32 << ei;
        assert!(
            self.mask_done[row] & bit == 0,
            "entry completes exactly once"
        );
        self.mask_done[row] |= bit;
        self.mask_unissued[row] &= !bit;
        self.mask_ready[row] &= !bit;
    }

    /// Pops the next completion at or before cycle `now`: the `Executing`
    /// entry with the earliest `done_at`, oldest position breaking ties.
    /// Stale queue records — squashed entries — are discarded on the way.
    pub fn pop_completion(&mut self, now: u64) -> Option<(usize, usize)> {
        if self.comp_head == self.completions.len() {
            self.completions.clear();
            self.comp_head = 0;
        } else if self.comp_head >= 128 {
            self.completions.drain(..self.comp_head);
            self.comp_head = 0;
        }
        while let Some(&(done_at, bid, h)) = self.completions.get(self.comp_head) {
            if done_at > now {
                return None;
            }
            self.comp_head += 1;
            // Lazy invalidation: the record is live only if its row still
            // holds the same block (generation check via the id), the slot
            // is still within the (possibly squash-truncated) block, and
            // the entry is still executing toward this very deadline.
            let (row, ei) = self.split(h as usize);
            if self.row_id[row] != bid || ei >= self.row_len[row] as usize {
                continue;
            }
            let bit = 1u32 << ei;
            if self.mask_done[row] & bit != 0 || self.mask_unissued[row] & bit != 0 {
                continue;
            }
            if self.done_at[h as usize] != done_at {
                continue;
            }
            let bi = self.pos_of(bid).expect("resident row id names a block");
            return Some((bi, ei));
        }
        None
    }

    // ---- memory-ordering gates ------------------------------------------------------

    /// Whether any entry of `tid` *older* than position `(bi, ei)` has not
    /// yet written back. Used by the `SYNC` issue gate.
    #[must_use]
    pub fn any_older_unfinished(&self, tid: usize, bi: usize, ei: usize) -> bool {
        self.any_older_masked(tid, bi, ei, None)
    }

    /// Whether any *control transfer* of `tid` older than `(bi, ei)` has
    /// not yet written back — i.e. the position is still speculative. Used
    /// by cross-thread store-to-load forwarding.
    #[must_use]
    pub fn any_older_unfinished_ctrl(&self, tid: usize, bi: usize, ei: usize) -> bool {
        self.any_older_masked(tid, bi, ei, Some(()))
    }

    fn any_older_masked(&self, tid: usize, bi: usize, ei: usize, ctrl: Option<()>) -> bool {
        for b in 0..=bi {
            let row = self.order[b] as usize;
            if self.row_tid[row] as usize != tid {
                continue;
            }
            let limit = if b == bi {
                ei
            } else {
                self.row_len[row] as usize
            };
            let mut m = low_mask(limit) & !self.mask_done[row];
            if ctrl.is_some() {
                m &= self.mask_ctrl[row];
            }
            if m != 0 {
                return true;
            }
        }
        false
    }

    // ---- store-to-load forwarding ---------------------------------------------------

    /// Indexes the completed, unfaulted store at `(bi, ei)` for
    /// store-to-load forwarding (chains are youngest first).
    pub fn fwd_insert(&mut self, bi: usize, ei: usize) {
        let h = self.handle(bi, ei);
        debug_assert_eq!(self.flags[h] & F_FWD_INDEXED, 0, "store indexed twice");
        self.flags[h] |= F_FWD_INDEXED;
        let b = fwd_bucket(self.mem_addr[h]);
        let key = self.age_key(h);
        let mut prev = NO_SRC;
        let mut cur = self.fwd_head[b];
        while cur != NO_SRC && self.age_key(cur as usize) > key {
            prev = cur;
            cur = self.fwd_next[cur as usize];
        }
        self.fwd_next[h] = cur;
        if prev == NO_SRC {
            self.fwd_head[b] = h as u16;
        } else {
            self.fwd_next[prev as usize] = h as u16;
        }
    }

    /// Unlinks slot `h` from its forwarding chain (no-op if not indexed).
    fn fwd_unlink(&mut self, h: usize) {
        if self.flags[h] & F_FWD_INDEXED == 0 {
            return;
        }
        self.flags[h] &= !F_FWD_INDEXED;
        let b = fwd_bucket(self.mem_addr[h]);
        let mut prev = NO_SRC;
        let mut cur = self.fwd_head[b];
        while cur != NO_SRC {
            if cur as usize == h {
                if prev == NO_SRC {
                    self.fwd_head[b] = self.fwd_next[h];
                } else {
                    self.fwd_next[prev as usize] = self.fwd_next[h];
                }
                return;
            }
            prev = cur;
            cur = self.fwd_next[cur as usize];
        }
        debug_assert!(false, "indexed store missing from its chain");
    }

    /// The youngest completed resident store at `addr` that may legally
    /// serve the load of `tid` at `(lbid, lei)`: a same-thread store older
    /// than the load, or a non-speculative other-thread store. `None` means
    /// the caller should fall back to the committed store buffer.
    #[must_use]
    pub fn forward_resident(&self, tid: usize, lbid: u64, lei: usize, addr: u64) -> Option<u64> {
        let mut cur = self.fwd_head[fwd_bucket(addr)];
        while cur != NO_SRC {
            let h = cur as usize;
            cur = self.fwd_next[h];
            if self.mem_addr[h] != addr {
                continue;
            }
            let (row, ei) = self.split(h);
            let stid = self.row_tid[row] as usize;
            if stid == tid {
                if (self.row_id[row], ei) < (lbid, lei) {
                    return Some(self.result[h]);
                }
                // A younger same-thread store cannot serve this load.
                continue;
            }
            let sbi = self
                .pos_of(self.row_id[row])
                .expect("forwarding chains name resident rows");
            if !self.any_older_unfinished_ctrl(stid, sbi, ei) {
                return Some(self.result[h]);
            }
        }
        None
    }

    // ---- squash ---------------------------------------------------------------------

    /// Deregisters the entry at slot `h` (known to be leaving the unit)
    /// from the waiter, producer, and forwarding indexes.
    fn deindex_entry(&mut self, h: usize) {
        for k in 0..2 {
            if matches!(self.ops[h][k], Operand::Waiting { .. }) {
                let p = self.wait_src[h][k];
                if p != NO_SRC {
                    self.unlink_waiter(p, (h * 2 + k) as u16);
                }
                self.wait_src[h][k] = NO_SRC;
            }
        }
        if let Some(reg) = self.insn[h].dest {
            let row = h >> self.shift;
            let tid = self.row_tid[row] as usize;
            let list = &mut self.producers[tid * REG_FILE_SIZE + reg.index()];
            // Commit frees the thread's oldest block (front of its lists),
            // squash removes its youngest entries (back) — the scan only
            // runs for the entries in between, which neither path produces.
            if list.front() == Some(&(h as u16)) {
                list.pop_front();
            } else if list.back() == Some(&(h as u16)) {
                list.pop_back();
            } else {
                let pos = list
                    .iter()
                    .rposition(|&x| x as usize == h)
                    .expect("producer was indexed");
                list.remove(pos);
            }
        }
        self.fwd_unlink(h);
        // The departing entry's own waiter list: its consumers are either
        // already woken (list empty) or being removed by the same squash,
        // and each unlinks itself tolerantly — clear defensively.
        self.waiter_head[h] = NO_SRC;
    }

    /// Returns the row at ring position `i` to the free list.
    fn release_row(&mut self, i: usize) {
        let row = self.order.remove(i) as usize;
        self.row_id[row] = u64::MAX;
        self.row_len[row] = 0;
        self.row_faulted[row] = false;
        self.mask_unissued[row] = 0;
        self.mask_ready[row] = 0;
        self.mask_done[row] = 0;
        self.row_full[row] = 0;
        self.mask_ctrl[row] = 0;
        self.free.push(row as u16);
    }

    /// Selectively squashes the wrong path after a mispredicted control
    /// transfer: every entry of `tid` *younger* than `(bi, ei)` is removed
    /// ("all entries above the mispredicted one, and with a matching thread
    /// ID, are discarded"). Blocks of other threads are untouched. Returns
    /// the removed entries oldest-first (caller frees tags); the slice
    /// borrows a buffer reused across squashes, so nothing is allocated on
    /// this path.
    ///
    /// Removed entries leave the waiter/producer/forwarding indexes
    /// eagerly (bounding memory); their completion-queue records decay
    /// lazily.
    pub fn squash_after(&mut self, tid: usize, bi: usize, ei: usize) -> &[SquashedEntry] {
        self.squash_buf.clear();
        // Younger entries within the same block.
        let row = self.row(bi);
        let len = self.row_len[row] as usize;
        for c in ei + 1..len {
            let h = (row << self.shift) | c;
            self.squash_buf.push(SquashedEntry {
                tag: Tag::from_raw(self.tag[h]),
                uid: self.uid[h],
                memsync_outstanding: self.insn[h].is_memsync()
                    && self.mask_done[row] & (1 << c) == 0,
            });
            self.deindex_entry(h);
        }
        let keep = low_mask(ei + 1);
        self.row_len[row] = (ei + 1) as u8;
        self.mask_unissued[row] &= keep;
        self.mask_ready[row] &= keep;
        self.mask_done[row] &= keep;
        self.row_full[row] = keep;
        self.mask_ctrl[row] &= keep;
        // The fault flag may have named a squashed entry; recompute over
        // the surviving few entries.
        if self.row_faulted[row] {
            self.row_faulted[row] = (0..=ei).any(|c| self.fault[(row << self.shift) | c].is_some());
        }
        // Younger blocks of the same thread (whole blocks, by construction).
        let mut i = bi + 1;
        while i < self.order.len() {
            let r = self.order[i] as usize;
            if self.row_tid[r] as usize != tid {
                i += 1;
                continue;
            }
            for c in 0..self.row_len[r] as usize {
                let h = (r << self.shift) | c;
                self.squash_buf.push(SquashedEntry {
                    tag: Tag::from_raw(self.tag[h]),
                    uid: self.uid[h],
                    memsync_outstanding: self.insn[h].is_memsync()
                        && self.mask_done[r] & (1 << c) == 0,
                });
                self.deindex_entry(h);
            }
            self.release_row(i);
        }
        self.entries_count -= self.squash_buf.len();
        &self.squash_buf
    }

    /// Entry `idx` of the last [`squash_after`](Self::squash_after) result —
    /// an indexed copy-out so callers can interleave reads with their own
    /// mutations without holding the slice borrow.
    #[must_use]
    pub fn squashed_at(&self, idx: usize) -> SquashedEntry {
        self.squash_buf[idx]
    }

    // ---- commit ---------------------------------------------------------------------

    /// Finds the committable block under `policy`: the lowest block among
    /// the bottom `window` whose entries are all done, and below which no
    /// block of the same thread remains (per-thread in-order commit).
    /// O(window), not O(window × block size): readiness is a popcount.
    #[must_use]
    pub fn find_committable(&self, policy: CommitPolicy, window: usize) -> Option<usize> {
        let window = match policy {
            CommitPolicy::LowestOnly => 1,
            CommitPolicy::Flexible => window,
        };
        for i in 0..self.order.len().min(window) {
            let row = self.order[i] as usize;
            if self.mask_done[row] != self.row_full[row] {
                continue;
            }
            let tid = self.row_tid[row];
            let blocked_by_older = self
                .order
                .iter()
                .take(i)
                .any(|&older| self.row_tid[older as usize] == tid);
            if !blocked_by_older {
                return Some(i);
            }
        }
        None
    }

    /// Removes the committed block at position `i`, deregistering its
    /// entries from every index and recycling the row. Callers copy out
    /// whatever they need (e.g. via [`commit_view`](Self::commit_view))
    /// *before* freeing.
    pub fn free_block(&mut self, i: usize) {
        let row = self.row(i);
        let len = self.row_len[row] as usize;
        for c in 0..len {
            self.deindex_entry((row << self.shift) | c);
        }
        self.entries_count -= len;
        self.release_row(i);
    }

    /// The thread owning the lower-most block, and whether that block could
    /// commit this cycle — drives the Masked Round-Robin fetch mask.
    #[must_use]
    pub fn bottom_block_status(&self) -> Option<(usize, bool)> {
        self.order.first().map(|&r| {
            let row = r as usize;
            let blocked = self.mask_done[row] != self.row_full[row];
            (self.row_tid[row] as usize, blocked)
        })
    }

    /// Raw tags of every resident entry, oldest block first — feeds the
    /// tag allocator's liveness check on snapshot restore.
    #[must_use]
    pub fn resident_tags(&self) -> Vec<u64> {
        let mut tags = Vec::with_capacity(self.entries_count);
        for &r in &self.order {
            let row = r as usize;
            for c in 0..self.row_len[row] as usize {
                tags.push(self.tag[(row << self.shift) | c]);
            }
        }
        tags
    }

    // ---- checkpointing --------------------------------------------------------------

    /// Serializes resident blocks (ids, threads, entries) plus the block-id
    /// counter, in the same wire layout as every prior format: the index
    /// structures, masks, and free lists are derived state, rebuilt on
    /// restore by the same code decode uses.
    pub fn save(&self, w: &mut smt_checkpoint::Writer) {
        w.put_u64(self.next_block_id);
        w.put_usize(self.order.len());
        for bi in 0..self.order.len() {
            let row = self.order[bi] as usize;
            w.put_u64(self.row_id[row]);
            w.put_usize(self.row_tid[row] as usize);
            w.put_usize(self.row_len[row] as usize);
            for ei in 0..self.row_len[row] as usize {
                let h = (row << self.shift) | ei;
                w.put_u64(self.tag[h]);
                w.put_u64(self.uid[h]);
                w.put_usize(self.row_tid[row] as usize);
                w.put_usize(self.pc[h] as usize);
                for op in &self.ops[h] {
                    match *op {
                        Operand::Unused => w.put_u8(0),
                        Operand::Ready { value, since } => {
                            w.put_u8(1);
                            w.put_u64(value);
                            w.put_u64(since);
                        }
                        Operand::Waiting { tag } => {
                            w.put_u8(2);
                            w.put_u64(tag.raw());
                        }
                    }
                }
                match self.state_at(bi, ei) {
                    EntryState::Waiting => w.put_u8(0),
                    EntryState::Executing { done_at } => {
                        w.put_u8(1);
                        w.put_u64(done_at);
                    }
                    EntryState::Done => w.put_u8(2),
                }
                w.put_u64(self.result[h]);
                w.put_bool(self.flags[h] & F_PRED_TAKEN != 0);
                w.put_usize(self.predicted_target[h] as usize);
                w.put_bool(self.flags[h] & F_TAKEN != 0);
                w.put_usize(self.target[h] as usize);
                w.put_bool(self.flags[h] & F_MISPREDICTED != 0);
                match self.fault[h] {
                    None => w.put_u8(0),
                    Some(smt_mem::MemError::OutOfBounds { addr, size }) => {
                        w.put_u8(1);
                        w.put_u64(addr);
                        w.put_u64(size);
                    }
                    Some(smt_mem::MemError::Unaligned { addr }) => {
                        w.put_u8(2);
                        w.put_u64(addr);
                    }
                }
                w.put_u64(self.mem_addr[h]);
                w.put_bool(self.flags[h] & F_STORE_BUFFERED != 0);
                w.put_bool(self.flags[h] & F_SYNC_SATISFIED != 0);
                w.put_bool(self.flags[h] & F_DCACHE_MISS != 0);
            }
        }
    }

    /// Rebuilds a unit from [`save`](Self::save)d state, re-deriving every
    /// index (masks, waiter links, producers, completions, forwarding
    /// chains) from the serialized entry contents. Fails closed on any
    /// structural inconsistency — including a waiting operand whose
    /// producer is not resident, which no genuine snapshot can contain.
    /// `decoded` holds one predecoded instruction table per thread
    /// (heterogeneous mixes run a distinct program per thread; a
    /// homogeneous run passes the same table for every slot), so each
    /// entry's instruction is recovered from its *owning thread's* text.
    pub fn restore(
        capacity_blocks: usize,
        block_size: usize,
        r: &mut smt_checkpoint::Reader<'_>,
        decoded: &[&[DecodedInsn]],
    ) -> Result<Self, smt_checkpoint::DecodeError> {
        let malformed = |what: String| -> smt_checkpoint::DecodeError {
            smt_checkpoint::DecodeError::Malformed(what)
        };
        let mut su = SchedulingUnit::new(capacity_blocks, block_size);
        let next_block_id = r.take_u64()?;
        let n_blocks = r.take_usize()?;
        if n_blocks > capacity_blocks {
            return Err(malformed(format!(
                "{n_blocks} blocks for a {capacity_blocks}-block unit"
            )));
        }
        for _ in 0..n_blocks {
            let id = r.take_u64()?;
            let tid = r.take_usize()?;
            let n_entries = r.take_usize()?;
            if n_entries == 0 || n_entries > block_size {
                return Err(malformed(format!(
                    "block of {n_entries} entries (block size {block_size})"
                )));
            }
            if id < su.next_block_id || id >= next_block_id || tid > u8::MAX as usize {
                return Err(malformed(format!("non-monotone block id {id}")));
            }
            let text = *decoded.get(tid).ok_or_else(|| {
                malformed(format!(
                    "block of thread {tid} in a {}-thread run",
                    decoded.len()
                ))
            })?;
            let row = su.free.pop().expect("capacity checked above") as usize;
            su.row_id[row] = id;
            su.row_tid[row] = tid as u8;
            su.row_len[row] = n_entries as u8;
            su.next_block_id = id + 1;
            let mut fault_seen = false;
            for ei in 0..n_entries {
                let h = (row << su.shift) | ei;
                su.tag[h] = r.take_u64()?;
                su.uid[h] = r.take_u64()?;
                let etid = r.take_usize()?;
                if etid != tid {
                    return Err(malformed(format!(
                        "entry of thread {etid} in a block of thread {tid}"
                    )));
                }
                let pc = r.take_usize()?;
                su.insn[h] = *text
                    .get(pc)
                    .ok_or_else(|| malformed(format!("entry pc {pc} outside program text")))?;
                su.pc[h] = pc as u32;
                for k in 0..2 {
                    su.ops[h][k] = match r.take_u8()? {
                        0 => Operand::Unused,
                        1 => Operand::Ready {
                            value: r.take_u64()?,
                            since: r.take_u64()?,
                        },
                        2 => Operand::Waiting {
                            tag: Tag::from_raw(r.take_u64()?),
                        },
                        v => return Err(malformed(format!("operand discriminant {v}"))),
                    };
                    su.wait_src[h][k] = NO_SRC;
                }
                let bit = 1u32 << ei;
                match r.take_u8()? {
                    0 => su.mask_unissued[row] |= bit,
                    1 => {
                        su.done_at[h] = r.take_u64()?;
                        su.insert_completion((su.done_at[h], id, h as u16));
                    }
                    2 => su.mask_done[row] |= bit,
                    v => return Err(malformed(format!("entry state discriminant {v}"))),
                }
                su.result[h] = r.take_u64()?;
                let mut flags = 0u8;
                if r.take_bool()? {
                    flags |= F_PRED_TAKEN;
                }
                su.predicted_target[h] = r.take_usize()? as u32;
                if r.take_bool()? {
                    flags |= F_TAKEN;
                }
                su.target[h] = r.take_usize()? as u32;
                if r.take_bool()? {
                    flags |= F_MISPREDICTED;
                }
                su.fault[h] = match r.take_u8()? {
                    0 => None,
                    1 => Some(smt_mem::MemError::OutOfBounds {
                        addr: r.take_u64()?,
                        size: r.take_u64()?,
                    }),
                    2 => Some(smt_mem::MemError::Unaligned {
                        addr: r.take_u64()?,
                    }),
                    v => return Err(malformed(format!("fault discriminant {v}"))),
                };
                fault_seen |= su.fault[h].is_some();
                su.mem_addr[h] = r.take_u64()?;
                if r.take_bool()? {
                    flags |= F_STORE_BUFFERED;
                }
                if r.take_bool()? {
                    flags |= F_SYNC_SATISFIED;
                }
                if r.take_bool()? {
                    flags |= F_DCACHE_MISS;
                }
                su.flags[h] = flags;
                if su.insn[h].is_control() {
                    su.mask_ctrl[row] |= bit;
                }
            }
            su.row_faulted[row] = fault_seen;
            su.row_full[row] = low_mask(n_entries);
            // Resolve waiting operands to producer handles and rebuild the
            // wakeup, ready, rename, and forwarding indexes. Producers of
            // an operand are always older than their consumer, so they are
            // already placed (earlier block, or earlier slot of this row).
            for ei in 0..n_entries {
                let h = (row << su.shift) | ei;
                let mut waiting = false;
                for k in 0..2 {
                    if let Operand::Waiting { tag } = su.ops[h][k] {
                        waiting = true;
                        let p = su.find_resident_tag(tag.raw(), row, ei).ok_or_else(|| {
                            malformed(format!(
                                "waiting operand with no resident producer (tag {})",
                                tag.raw()
                            ))
                        })?;
                        su.wait_src[h][k] = p;
                        su.link_waiter(h, k);
                    }
                }
                if !waiting && su.mask_unissued[row] & (1 << ei) != 0 {
                    su.mask_ready[row] |= 1 << ei;
                }
                if let Some(reg) = su.insn[h].dest {
                    su.producer_list(tid, reg.index()).push_back(h as u16);
                }
            }
            su.entries_count += n_entries;
            su.order.push(row as u16);
            // Rebuild the forwarding index here so the simulator does not
            // have to: chains hold every completed unfaulted store, placed
            // by age key once its row has joined the ring.
            for ei in 0..n_entries {
                let h = (row << su.shift) | ei;
                if su.insn[h].op == smt_isa::Opcode::Sd
                    && su.mask_done[row] & (1 << ei) != 0
                    && su.fault[h].is_none()
                {
                    let bi = su.order.len() - 1;
                    su.fwd_insert(bi, ei);
                }
            }
        }
        su.next_block_id = next_block_id;
        Ok(su)
    }

    /// Handle of the resident entry carrying raw tag `t`, searching every
    /// ringed row plus slots `0..limit` of `extra_row` (the row being
    /// restored). Cold path: only snapshot restore uses it.
    fn find_resident_tag(&self, t: u64, extra_row: usize, limit: usize) -> Option<u16> {
        for &r in &self.order {
            let row = r as usize;
            for c in 0..self.row_len[row] as usize {
                let h = (row << self.shift) | c;
                if self.tag[h] == t {
                    return Some(h as u16);
                }
            }
        }
        for c in 0..limit {
            let h = (extra_row << self.shift) | c;
            if self.tag[h] == t {
                return Some(h as u16);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::{Instruction, Opcode, Reg};
    use smt_uarch::TagAllocator;

    fn staged(tags: &mut TagAllocator, dest: u8) -> StagedEntry {
        let insn = Instruction::i2(Opcode::Addi, Reg::new(dest), Reg::new(2), 1);
        let mut e = StagedEntry::new(tags.alloc().unwrap(), 0, DecodedInsn::new(insn));
        e.ops = [Operand::Ready { value: 0, since: 0 }, Operand::Unused];
        e
    }

    /// Push a block and drive entry 0 to `Done` with `result`.
    fn push_done(su: &mut SchedulingUnit, tid: usize, e: StagedEntry, result: u64) {
        su.push_block(tid, &[e]);
        let bi = su.num_blocks() - 1;
        su.mark_executing(bi, 0, 0);
        su.mark_done(bi, 0);
        su.set_result(bi, 0, result);
    }

    #[test]
    fn capacity_is_counted_in_blocks() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(2, 4);
        su.push_block(0, &[staged(&mut tags, 3)]); // partial block
        su.push_block(1, &[staged(&mut tags, 3)]);
        assert!(
            !su.has_space(),
            "two blocks fill a two-block unit even when partial"
        );
        assert_eq!(su.num_entries(), 2);
    }

    #[test]
    fn lookup_finds_youngest_same_thread_producer() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(4, 4);
        push_done(&mut su, 0, staged(&mut tags, 5), 11);
        let younger = staged(&mut tags, 5);
        let ytag = younger.tag;
        su.push_block(0, &[younger]);
        su.push_block(1, &[staged(&mut tags, 5)]);
        assert!(matches!(su.lookup(0, Reg::new(5)), Lookup::Pending(t, _) if t == ytag));
        assert_eq!(su.lookup(0, Reg::new(9)), Lookup::NotFound);
        // Thread 1's producer is independent.
        assert!(matches!(su.lookup(1, Reg::new(5)), Lookup::Pending(..)));
    }

    #[test]
    fn lookup_returns_value_once_done() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(4, 4);
        push_done(&mut su, 0, staged(&mut tags, 7), 99);
        assert_eq!(su.lookup(0, Reg::new(7)), Lookup::Available(99));
    }

    #[test]
    fn lookup_falls_back_after_producer_leaves() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(4, 4);
        push_done(&mut su, 0, staged(&mut tags, 5), 0);
        su.push_block(0, &[staged(&mut tags, 5)]);
        // Commit the old producer: the younger one still answers.
        su.free_block(0);
        assert!(matches!(su.lookup(0, Reg::new(5)), Lookup::Pending(..)));
        // Remove the younger one too: no producer remains.
        su.free_block(0);
        assert_eq!(su.lookup(0, Reg::new(5)), Lookup::NotFound);
    }

    #[test]
    fn broadcast_wakes_waiters() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(4, 4);
        let producer = staged(&mut tags, 5);
        let ptag = producer.tag;
        su.push_block(0, &[producer]);
        let Lookup::Pending(tag, src) = su.lookup(0, Reg::new(5)) else {
            panic!("producer should be pending");
        };
        let mut consumer = staged(&mut tags, 6);
        consumer.ops[0] = Operand::Waiting { tag };
        consumer.wait_src[0] = src;
        su.push_block(0, &[consumer]);
        assert_eq!(su.ready_mask(1), 0, "waiting consumer is not ready");
        assert_eq!(tag, ptag);
        su.broadcast(0, 0, 123, 7);
        let op = su.ops_at(1, 0)[0];
        assert_eq!(
            op,
            Operand::Ready {
                value: 123,
                since: 7
            }
        );
        assert_eq!(su.ready_mask(1), 1, "woken consumer becomes a candidate");
        assert_eq!(
            op.value_at(7, true),
            Some(123),
            "bypassing: usable same cycle"
        );
        assert_eq!(op.value_at(7, false), None, "no bypassing: next cycle");
        assert_eq!(op.value_at(8, false), Some(123));
    }

    #[test]
    fn broadcast_after_squash_of_consumer_is_harmless() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        let producer = staged(&mut tags, 5);
        su.push_block(0, &[producer]);
        let Lookup::Pending(tag, src) = su.lookup(0, Reg::new(5)) else {
            panic!("producer should be pending");
        };
        let branch = staged(&mut tags, 6);
        let mut consumer = staged(&mut tags, 7);
        consumer.ops[0] = Operand::Waiting { tag };
        consumer.wait_src[0] = src;
        su.push_block(0, &[branch, consumer]);
        // Squash the consumer (younger than the branch at (1, 0)).
        let removed = su.squash_after(0, 1, 0);
        assert_eq!(removed.len(), 1);
        // The producer's broadcast must not touch the dead slot.
        su.broadcast(0, 0, 99, 3);
        assert_eq!(su.block_len(1), 1, "only the branch remains");
    }

    #[test]
    fn completions_pop_in_deadline_then_age_order() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        su.push_block(0, &[staged(&mut tags, 3), staged(&mut tags, 4)]);
        su.push_block(1, &[staged(&mut tags, 3)]);
        // Issue out of age order with equal and distinct deadlines.
        su.mark_executing(1, 0, 5); // young block, early deadline
        su.mark_executing(0, 1, 5); // old block, same deadline
        su.mark_executing(0, 0, 7); // oldest entry, late deadline
        assert_eq!(su.pop_completion(4), None, "nothing due yet");
        assert_eq!(
            su.pop_completion(5),
            Some((0, 1)),
            "tie goes to the older position"
        );
        su.mark_done(0, 1);
        assert_eq!(su.pop_completion(5), Some((1, 0)));
        su.mark_done(1, 0);
        assert_eq!(su.pop_completion(5), None, "third entry not due");
        assert_eq!(su.pop_completion(9), Some((0, 0)));
    }

    #[test]
    fn stale_completions_of_squashed_entries_are_discarded() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        su.push_block(0, &[staged(&mut tags, 3), staged(&mut tags, 4)]);
        su.push_block(0, &[staged(&mut tags, 5)]);
        su.mark_executing(0, 1, 2); // will be squashed
        su.mark_executing(1, 0, 2); // will be squashed (whole block)
        su.squash_after(0, 0, 0);
        assert_eq!(
            su.pop_completion(10),
            None,
            "squashed completions never surface"
        );
        // A new block reusing the same positions must not be confused with
        // the squashed records (fresh block id).
        su.push_block(0, &[staged(&mut tags, 6)]);
        su.mark_executing(1, 0, 3);
        assert_eq!(su.pop_completion(10), Some((1, 0)));
    }

    #[test]
    fn squash_removes_younger_same_thread_only() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        su.push_block(0, &[staged(&mut tags, 3), staged(&mut tags, 4)]);
        su.push_block(1, &[staged(&mut tags, 3)]);
        su.push_block(0, &[staged(&mut tags, 5), staged(&mut tags, 6)]);
        let removed = su.squash_after(0, 0, 0);
        assert_eq!(removed.len(), 3, "one in-block + one 2-entry block");
        assert_eq!(su.num_blocks(), 2);
        assert_eq!(su.num_entries(), 2);
        assert_eq!(su.block_tid(1), 1, "other thread untouched");
    }

    #[test]
    fn flexible_commit_skips_blocked_thread() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        // Bottom block (thread 0): not done.
        su.push_block(0, &[staged(&mut tags, 3)]);
        // Next (thread 1): done.
        push_done(&mut su, 1, staged(&mut tags, 3), 0);
        // Thread 0 again, done — but blocked by its own older block.
        push_done(&mut su, 0, staged(&mut tags, 4), 0);

        assert_eq!(su.find_committable(CommitPolicy::LowestOnly, 4), None);
        assert_eq!(su.find_committable(CommitPolicy::Flexible, 4), Some(1));
        // Window of 1 behaves like lowest-only.
        assert_eq!(su.find_committable(CommitPolicy::Flexible, 1), None);
    }

    #[test]
    fn commit_window_is_bounded() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        su.push_block(0, &[staged(&mut tags, 3)]); // not done
        for tid in [1, 2, 3] {
            su.push_block(tid, &[staged(&mut tags, 3)]); // not done
        }
        push_done(&mut su, 4, staged(&mut tags, 3), 0); // 5th: outside window
        assert_eq!(su.find_committable(CommitPolicy::Flexible, 4), None);
    }

    #[test]
    fn any_older_unfinished_scans_only_same_thread() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        su.push_block(0, &[staged(&mut tags, 3)]);
        su.push_block(1, &[staged(&mut tags, 3)]);
        su.push_block(0, &[staged(&mut tags, 4)]);
        // From thread 0's youngest entry, an older unfinished thread-0
        // entry exists.
        assert!(su.any_older_unfinished(0, 2, 0));
        // From thread 1's entry, no older thread-1 entry exists.
        assert!(!su.any_older_unfinished(1, 1, 0));
        // An entry cannot see itself.
        assert!(!su.any_older_unfinished(0, 0, 0));
        // Once the older entry completes, the gate opens.
        su.mark_executing(0, 0, 1);
        su.mark_done(0, 0);
        assert!(!su.any_older_unfinished(0, 2, 0));
    }

    #[test]
    fn ctrl_gate_sees_only_control_transfers() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        // An unfinished ALU op is not a speculation source …
        su.push_block(0, &[staged(&mut tags, 3)]);
        su.push_block(0, &[staged(&mut tags, 4)]);
        assert!(!su.any_older_unfinished_ctrl(0, 1, 0));
        // … an unfinished branch is.
        let branch = StagedEntry::new(
            tags.alloc().unwrap(),
            0,
            DecodedInsn::new(Instruction::branch(
                Opcode::Beq,
                Reg::new(2),
                Reg::new(2),
                0,
            )),
        );
        let mut su = SchedulingUnit::new(8, 4);
        su.push_block(0, &[branch]);
        su.push_block(0, &[staged(&mut tags, 4)]);
        assert!(su.any_older_unfinished_ctrl(0, 1, 0));
    }

    #[test]
    fn forwarding_chain_finds_youngest_older_store() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        let store = |tags: &mut TagAllocator| {
            StagedEntry::new(
                tags.alloc().unwrap(),
                0,
                DecodedInsn::new(Instruction::store(Reg::new(3), Reg::new(2), 0)),
            )
        };
        // Two completed stores to the same address, then the load's block.
        for (v, bi) in [(10u64, 0usize), (20, 1)] {
            su.push_block(0, &[store(&mut tags)]);
            su.mark_executing(bi, 0, 1);
            su.set_mem_addr(bi, 0, 64);
            su.set_result(bi, 0, v);
            su.mark_done(bi, 0);
            su.fwd_insert(bi, 0);
        }
        su.push_block(0, &[staged(&mut tags, 4)]);
        let lbid = su.block_id(2);
        assert_eq!(
            su.forward_resident(0, lbid, 0, 64),
            Some(20),
            "youngest older store wins"
        );
        assert_eq!(su.forward_resident(0, lbid, 0, 128), None, "address filter");
        // A load older than both stores cannot take either.
        assert_eq!(su.forward_resident(0, su.block_id(0), 0, 64), None);
        // Cross-thread: visible only while non-speculative (no unfinished
        // older control transfer in the store's thread — trivially true).
        assert_eq!(su.forward_resident(1, 0, 0, 64), Some(20));
        // Squashing the younger store unlinks it from the chain.
        su.squash_after(0, 0, 0);
        assert_eq!(su.forward_resident(1, 0, 0, 64), Some(10));
    }

    #[test]
    fn bottom_block_status_reports_commit_failure() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        assert_eq!(su.bottom_block_status(), None);
        su.push_block(2, &[staged(&mut tags, 3)]);
        assert_eq!(su.bottom_block_status(), Some((2, true)));
        su.mark_executing(0, 0, 1);
        su.mark_done(0, 0);
        assert_eq!(su.bottom_block_status(), Some((2, false)));
    }

    #[test]
    fn fault_flag_tracks_set_and_partial_squash() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        su.push_block(0, &[staged(&mut tags, 3), staged(&mut tags, 4)]);
        assert!(!su.block_has_fault(0));
        su.set_fault(0, 1, smt_mem::MemError::Unaligned { addr: 3 });
        assert!(su.block_has_fault(0));
        // Squashing away the faulted entry must clear the flag …
        su.squash_after(0, 0, 0);
        assert!(!su.block_has_fault(0));
        // … and a squash that keeps the faulted entry must preserve it.
        su.set_fault(0, 0, smt_mem::MemError::Unaligned { addr: 3 });
        su.push_block(0, &[staged(&mut tags, 5)]);
        su.squash_after(0, 0, 0);
        assert!(su.block_has_fault(0));
        assert_eq!(su.num_blocks(), 1);
    }

    #[test]
    fn staging_handles_match_pushed_block() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(4, 4);
        let h0 = su.staging_handle(0);
        let h1 = su.staging_handle(1);
        let producer = staged(&mut tags, 5);
        let ptag = producer.tag;
        let mut consumer = staged(&mut tags, 6);
        consumer.ops[0] = Operand::Waiting { tag: ptag };
        consumer.wait_src[0] = h0;
        su.push_block(0, &[producer, consumer]);
        assert_ne!(h0, h1);
        // In-group dependency: broadcasting the producer wakes the
        // consumer staged against its in-group handle.
        su.broadcast(0, 0, 55, 2);
        assert_eq!(
            su.ops_at(0, 1)[0],
            Operand::Ready {
                value: 55,
                since: 2
            }
        );
    }

    #[test]
    fn rows_are_recycled_without_aliasing() {
        let mut tags = TagAllocator::new(256);
        let mut su = SchedulingUnit::new(2, 4);
        for _ in 0..10 {
            push_done(&mut su, 0, staged(&mut tags, 3), 1);
            su.free_block(0);
        }
        assert!(su.is_empty());
        assert_eq!(su.num_entries(), 0);
        // Ids keep growing across row reuse.
        su.push_block(0, &[staged(&mut tags, 3)]);
        assert_eq!(su.block_id(0), 10);
    }

    #[test]
    #[should_panic(expected = "block of 5 entries")]
    fn oversized_block_rejected() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(2, 4);
        let es: Vec<StagedEntry> = (0..5).map(|_| staged(&mut tags, 3)).collect();
        su.push_block(0, &es);
    }
}
