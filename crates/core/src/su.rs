//! The scheduling unit: the SDSP's combined reorder buffer and instruction
//! window (Section 2.2), extended with a thread-ID field per entry
//! (Section 3.2).
//!
//! The unit is organized in *blocks* — decode groups of up to four
//! instructions from one thread. Capacity is counted in blocks, matching the
//! hardware, where a partially valid fetch block still occupies a full row
//! of the shifting structure. Entries hold renamed operands (value or
//! producer tag), so the issue logic "does not have to concern itself with
//! the thread that an instruction belongs to".
//!
//! # Event-driven hot paths
//!
//! The hardware's associative searches (wakeup broadcast, writeback
//! selection, commit readiness, decode rename lookup) are modelled here with
//! index structures instead of full-window scans, without changing a single
//! observable outcome (the cycle-exactness goldens in `tests/` pin this
//! down):
//!
//! * **Waiter lists** — each in-flight tag maps to the operand slots
//!   waiting on it, so [`broadcast`](SchedulingUnit::broadcast) touches
//!   exactly the consumers instead of every resident operand. Tags are
//!   globally unique and never reused, so a raw tag value is a safe key.
//! * **Completion heap** — issued entries enter a min-heap keyed by
//!   `(done_at, block id, entry index)`;
//!   [`pop_completion`](SchedulingUnit::pop_completion) pops the earliest.
//!   Block ids grow monotonically along the block deque, so the heap order
//!   reproduces the reference scan's tie-break (earliest `done_at`, oldest
//!   position first) exactly. Squashed entries are invalidated lazily: a
//!   popped record is discarded unless it still names a resident entry in
//!   the `Executing` state with the recorded `done_at`.
//! * **Per-block done counters** — commit readiness
//!   ([`find_committable`](SchedulingUnit::find_committable),
//!   [`bottom_block_status`](SchedulingUnit::bottom_block_status)) is a
//!   counter comparison, not an entry scan.
//! * **Producer map** — decode rename lookup resolves `(tid, reg)` to the
//!   youngest in-flight producer through an age-ordered list per register
//!   instead of walking the window backwards.
//!
//! The invariant making the index structures sound: `(block id, entry
//! index)` identifies an entry *forever*. Entries are never appended to a
//! resident block, and squashes only drain from the young end, so a stale
//! reference can dangle but never alias a different instruction.

use std::collections::{HashMap, VecDeque};

use smt_isa::{DecodedInsn, REG_FILE_SIZE};
use smt_uarch::Tag;

use crate::config::CommitPolicy;
use crate::fasthash::MixState;

/// A renamed source operand.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operand {
    /// The instruction does not read this operand slot.
    Unused,
    /// Value known, available for issue from cycle `since` (same cycle with
    /// bypassing, the next cycle without).
    Ready {
        /// The operand value.
        value: u64,
        /// Cycle the value became available.
        since: u64,
    },
    /// Waiting for the producer with this renaming tag to write back.
    Waiting {
        /// Producer's tag.
        tag: Tag,
    },
}

impl Operand {
    /// The value, if ready and usable at cycle `now` under the given
    /// bypassing rule. `Unused` operands read as zero.
    #[must_use]
    pub fn value_at(&self, now: u64, bypass: bool) -> Option<u64> {
        match *self {
            Operand::Unused => Some(0),
            Operand::Ready { value, since } => {
                let usable = if bypass { since <= now } else { since < now };
                usable.then_some(value)
            }
            Operand::Waiting { .. } => None,
        }
    }
}

/// If no operand is still waiting on a producer, the cycle from which the
/// whole operand set is available (the latest `since`; `Unused` reads as
/// always-available). `None` while any operand is unresolved.
/// Execution state of a scheduling-unit entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EntryState {
    /// Not yet issued.
    Waiting,
    /// Issued; result arrives at `done_at`.
    Executing {
        /// Writeback cycle.
        done_at: u64,
    },
    /// Result written back (or no result to produce).
    Done,
}

/// One instruction resident in the scheduling unit.
#[derive(Clone, Debug)]
pub struct SuEntry {
    /// Globally unique renaming tag.
    pub tag: Tag,
    /// Decode-order instruction identity (unique per run, never reused —
    /// unlike tags). This is the key lifecycle tracing uses to correlate
    /// events across stages.
    pub uid: u64,
    /// Owning thread.
    pub tid: usize,
    /// Instruction index (for predictor updates and debugging).
    pub pc: usize,
    /// The predecoded instruction.
    pub insn: DecodedInsn,
    /// Renamed source operands.
    pub ops: [Operand; 2],
    /// Pipeline state.
    pub state: EntryState,
    /// Result value (valid once `Done` for register-writing instructions).
    pub result: u64,
    /// Fetch-time prediction: taken?
    pub predicted_taken: bool,
    /// Fetch-time prediction: target if taken.
    pub predicted_target: usize,
    /// Resolved control-transfer outcome: taken?
    pub taken: bool,
    /// Resolved target.
    pub target: usize,
    /// Whether this control transfer was found mispredicted at execute.
    pub mispredicted: bool,
    /// Deferred memory fault (speculative wrong-path accesses may fault
    /// harmlessly; the fault becomes fatal only if the entry commits).
    pub fault: Option<smt_mem::MemError>,
    /// Effective address of an executed load/store (for store-to-load
    /// forwarding).
    pub mem_addr: u64,
    /// Whether a committed store has been pushed into the store buffer
    /// (commit may take several cycles when the buffer is tight).
    pub store_buffered: bool,
    /// For `WAIT`: whether the poll found the condition satisfied. An
    /// unsatisfied `WAIT` retires as a *spin* — it is discarded at commit
    /// and the thread refetches it, exactly like a software spin loop —
    /// so a waiting thread can never clog the commit window.
    pub sync_satisfied: bool,
    /// Whether an issued load's data comes back later than issue (cache
    /// miss or pending hit) — lets stall attribution tell a memory-bound
    /// head block from an execution-bound one.
    pub dcache_miss: bool,
}

impl SuEntry {
    /// A fresh entry in the `Waiting` state.
    #[must_use]
    pub fn new(tag: Tag, tid: usize, pc: usize, insn: DecodedInsn, ops: [Operand; 2]) -> Self {
        SuEntry {
            tag,
            uid: 0,
            tid,
            pc,
            insn,
            ops,
            state: EntryState::Waiting,
            result: 0,
            predicted_taken: false,
            predicted_target: 0,
            taken: false,
            target: 0,
            mispredicted: false,
            fault: None,
            mem_addr: 0,
            store_buffered: false,
            sync_satisfied: false,
            dcache_miss: false,
        }
    }

    /// Whether the entry has completed execution.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.state == EntryState::Done
    }

    /// Serializes every field except `insn`, which is recovered from the
    /// program's predecoded text via `pc` on restore (an entry's
    /// instruction is always the program's instruction at its pc, even on
    /// the speculative wrong path).
    pub fn save(&self, w: &mut smt_checkpoint::Writer) {
        w.put_u64(self.tag.raw());
        w.put_u64(self.uid);
        w.put_usize(self.tid);
        w.put_usize(self.pc);
        for op in &self.ops {
            match *op {
                Operand::Unused => w.put_u8(0),
                Operand::Ready { value, since } => {
                    w.put_u8(1);
                    w.put_u64(value);
                    w.put_u64(since);
                }
                Operand::Waiting { tag } => {
                    w.put_u8(2);
                    w.put_u64(tag.raw());
                }
            }
        }
        match self.state {
            EntryState::Waiting => w.put_u8(0),
            EntryState::Executing { done_at } => {
                w.put_u8(1);
                w.put_u64(done_at);
            }
            EntryState::Done => w.put_u8(2),
        }
        w.put_u64(self.result);
        w.put_bool(self.predicted_taken);
        w.put_usize(self.predicted_target);
        w.put_bool(self.taken);
        w.put_usize(self.target);
        w.put_bool(self.mispredicted);
        match self.fault {
            None => w.put_u8(0),
            Some(smt_mem::MemError::OutOfBounds { addr, size }) => {
                w.put_u8(1);
                w.put_u64(addr);
                w.put_u64(size);
            }
            Some(smt_mem::MemError::Unaligned { addr }) => {
                w.put_u8(2);
                w.put_u64(addr);
            }
        }
        w.put_u64(self.mem_addr);
        w.put_bool(self.store_buffered);
        w.put_bool(self.sync_satisfied);
        w.put_bool(self.dcache_miss);
    }

    /// Rebuilds an entry from [`save`](Self::save)d state, re-deriving the
    /// predecoded instruction from `decoded` (the program's predecoded
    /// text, indexed by pc).
    pub fn restore(
        r: &mut smt_checkpoint::Reader<'_>,
        decoded: &[DecodedInsn],
    ) -> Result<Self, smt_checkpoint::DecodeError> {
        let malformed = |what: String| -> smt_checkpoint::DecodeError {
            smt_checkpoint::DecodeError::Malformed(what)
        };
        let tag = Tag::from_raw(r.take_u64()?);
        let uid = r.take_u64()?;
        let tid = r.take_usize()?;
        let pc = r.take_usize()?;
        let insn = *decoded
            .get(pc)
            .ok_or_else(|| malformed(format!("entry pc {pc} outside program text")))?;
        let mut ops = [Operand::Unused; 2];
        for op in &mut ops {
            *op = match r.take_u8()? {
                0 => Operand::Unused,
                1 => Operand::Ready {
                    value: r.take_u64()?,
                    since: r.take_u64()?,
                },
                2 => Operand::Waiting {
                    tag: Tag::from_raw(r.take_u64()?),
                },
                v => return Err(malformed(format!("operand discriminant {v}"))),
            };
        }
        let state = match r.take_u8()? {
            0 => EntryState::Waiting,
            1 => EntryState::Executing {
                done_at: r.take_u64()?,
            },
            2 => EntryState::Done,
            v => return Err(malformed(format!("entry state discriminant {v}"))),
        };
        let result = r.take_u64()?;
        let predicted_taken = r.take_bool()?;
        let predicted_target = r.take_usize()?;
        let taken = r.take_bool()?;
        let target = r.take_usize()?;
        let mispredicted = r.take_bool()?;
        let fault = match r.take_u8()? {
            0 => None,
            1 => Some(smt_mem::MemError::OutOfBounds {
                addr: r.take_u64()?,
                size: r.take_u64()?,
            }),
            2 => Some(smt_mem::MemError::Unaligned {
                addr: r.take_u64()?,
            }),
            v => return Err(malformed(format!("fault discriminant {v}"))),
        };
        Ok(SuEntry {
            tag,
            uid,
            tid,
            pc,
            insn,
            ops,
            state,
            result,
            predicted_taken,
            predicted_target,
            taken,
            target,
            mispredicted,
            fault,
            mem_addr: r.take_u64()?,
            store_buffered: r.take_bool()?,
            sync_satisfied: r.take_bool()?,
            dcache_miss: r.take_bool()?,
        })
    }

    /// Whether both operands are usable at `now`.
    #[must_use]
    pub fn operands_ready(&self, now: u64, bypass: bool) -> bool {
        self.ops.iter().all(|o| o.value_at(now, bypass).is_some())
    }
}

/// A decode group resident in the unit.
#[derive(Clone, Debug)]
pub struct Block {
    /// Monotonic block id (decode order).
    pub id: u64,
    /// Owning thread (blocks are single-threaded by construction).
    pub tid: usize,
    /// The 1..=block_size instructions of the group.
    pub entries: Vec<SuEntry>,
    /// How many of `entries` are `Done` — maintained by
    /// [`SchedulingUnit::mark_done`]; lets commit readiness be O(1).
    done: usize,
    /// How many of `entries` are still `Waiting` (unissued) — lets the
    /// issue stage skip fully-issued blocks without touching their entries.
    pending: usize,
    /// Whether any entry carries a deferred fault — maintained by
    /// [`Block::set_fault`] and recomputed on partial squash, so the commit
    /// stage's precise-fault check is a flag test, not an entry scan.
    faulted: bool,
}

impl Block {
    /// Whether any entry is still waiting to issue.
    #[must_use]
    pub fn has_unissued(&self) -> bool {
        self.pending > 0
    }

    /// Whether any entry carries a deferred fault.
    #[must_use]
    pub fn has_fault(&self) -> bool {
        self.faulted
    }

    /// Records a deferred fault on entry `ei`, keeping the block-level flag
    /// coherent. All fault writes must go through here (payload fields like
    /// results and addresses may still be edited directly).
    pub fn set_fault(&mut self, ei: usize, err: smt_mem::MemError) {
        self.entries[ei].fault = Some(err);
        self.faulted = true;
    }
}

/// Result of a decode-time operand lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Lookup {
    /// No in-flight producer: read the committed register file.
    NotFound,
    /// Producer still executing: wait on its tag.
    Pending(Tag),
    /// Producer has written back: take the value directly.
    Available(u64),
}

/// An operand slot waiting on a tag: `(block id, entry index, op index)`.
type WaiterSlot = (u64, usize, usize);

/// The consumers of one in-flight tag. Values rarely have more than a
/// couple of waiting consumers at decode time, so the first few slots live
/// inline — the common case never touches the allocator (which profiling
/// shows is the simulator's main tax).
#[derive(Clone, Debug, Default)]
struct WaiterList {
    inline: [WaiterSlot; WaiterList::INLINE],
    len: usize,
    spill: Vec<WaiterSlot>,
}

impl WaiterList {
    const INLINE: usize = 4;

    fn push(&mut self, slot: WaiterSlot) {
        if self.len < Self::INLINE {
            self.inline[self.len] = slot;
            self.len += 1;
        } else {
            self.spill.push(slot);
        }
    }

    fn iter(&self) -> impl Iterator<Item = WaiterSlot> + '_ {
        self.inline[..self.len]
            .iter()
            .copied()
            .chain(self.spill.iter().copied())
    }

    fn is_empty(&self) -> bool {
        self.len == 0 && self.spill.is_empty()
    }

    /// Removes one occurrence of `slot`, keeping relative order.
    fn remove(&mut self, slot: WaiterSlot) {
        if let Some(pos) = self.inline[..self.len].iter().position(|&s| s == slot) {
            self.inline.copy_within(pos + 1..self.len, pos);
            self.len -= 1;
            if let Some(promoted) = (!self.spill.is_empty()).then(|| self.spill.remove(0)) {
                self.inline[self.len] = promoted;
                self.len += 1;
            }
        } else if let Some(pos) = self.spill.iter().position(|&s| s == slot) {
            self.spill.remove(pos);
        }
    }
}

/// The scheduling unit proper.
#[derive(Clone, Debug)]
pub struct SchedulingUnit {
    blocks: VecDeque<Block>,
    capacity_blocks: usize,
    block_size: usize,
    next_block_id: u64,
    /// Resident instruction count (kept so occupancy sampling is O(1)).
    entries_count: usize,
    /// Wakeup index: raw tag value → operand slots waiting on it. Raw tag
    /// values are never reused, so no generation counter is needed.
    waiters: HashMap<u64, WaiterList, MixState>,
    /// Rename index: age-ordered in-flight producers as
    /// `(block id, entry index)`, oldest at the front, in a flat table
    /// indexed by `tid * REG_FILE_SIZE + reg` (grown on demand — the unit
    /// does not know the thread count).
    producers: Vec<VecDeque<(u64, usize)>>,
    /// Writeback selection: issued entries as `(done_at, block id, entry
    /// index)`, kept sorted ascending; the front is the next completion.
    /// Issue deadlines mostly arrive in order, so sorted insertion beats a
    /// binary heap here (and squashed records are discarded lazily on pop).
    completions: VecDeque<(u64, u64, usize)>,
    /// Recycled entry storage: blocks leave their `Vec` here on removal so
    /// decode never has to touch the allocator in steady state.
    spare: Vec<Vec<SuEntry>>,
    /// Reusable buffer backing [`squash_after`](Self::squash_after)'s
    /// return value.
    squash_buf: Vec<SuEntry>,
}

impl SchedulingUnit {
    /// Creates an empty unit holding `capacity_blocks` blocks of
    /// `block_size` instructions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(capacity_blocks: usize, block_size: usize) -> Self {
        assert!(
            capacity_blocks > 0 && block_size > 0,
            "degenerate scheduling unit"
        );
        SchedulingUnit {
            blocks: VecDeque::with_capacity(capacity_blocks),
            capacity_blocks,
            block_size,
            next_block_id: 0,
            entries_count: 0,
            // Pre-size to the window: at most one waiter list per resident
            // producer, so the map never rehashes mid-run.
            waiters: HashMap::with_capacity_and_hasher(
                capacity_blocks * block_size,
                MixState::default(),
            ),
            producers: Vec::new(),
            completions: VecDeque::with_capacity(capacity_blocks * block_size),
            spare: Vec::new(),
            squash_buf: Vec::new(),
        }
    }

    /// Pre-grows the rename index for `n` threads so the first decode of
    /// each thread does not pay for table growth.
    pub fn reserve_threads(&mut self, n: usize) {
        if self.producers.len() < n * REG_FILE_SIZE {
            self.producers.resize_with(n * REG_FILE_SIZE, VecDeque::new);
        }
    }

    /// Hands out an empty entry `Vec` for the next decode group, reusing
    /// storage recycled by [`recycle_storage`](Self::recycle_storage).
    #[must_use]
    pub fn take_storage(&mut self) -> Vec<SuEntry> {
        self.spare
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(self.block_size))
    }

    /// Returns entry storage (e.g. a committed block's) to the reuse pool.
    pub fn recycle_storage(&mut self, mut storage: Vec<SuEntry>) {
        // One spare per block slot is all steady state can ever need.
        if self.spare.len() < self.capacity_blocks {
            storage.clear();
            self.spare.push(storage);
        }
    }

    /// Whether a new block can enter.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.blocks.len() < self.capacity_blocks
    }

    /// Number of resident blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of resident instructions (valid entries, not padded slots).
    #[must_use]
    pub fn num_entries(&self) -> usize {
        self.entries_count
    }

    /// Whether the unit is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Position of the block with id `bid`, if still resident. The deque
    /// holds at most a handful of blocks and most lookups (wakeups, rename
    /// hits) land near the young end, so a reverse linear scan beats a
    /// binary search here; ids are monotone, so the scan can stop early.
    fn pos_of(&self, bid: u64) -> Option<usize> {
        let mut i = self.blocks.len();
        while i > 0 {
            i -= 1;
            let id = self.blocks[i].id;
            if id == bid {
                return Some(i);
            }
            if id < bid {
                return None;
            }
        }
        None
    }

    /// Position of the block with id `bid`, if still resident — for callers
    /// holding stable `(block id, entry index)` references (e.g. the
    /// simulator's store-forwarding index).
    #[must_use]
    pub fn position_of(&self, bid: u64) -> Option<usize> {
        self.pos_of(bid)
    }

    /// Mutable producer list for `(tid, reg)`, growing the flat table on
    /// first touch of a new thread.
    fn producer_list(&mut self, tid: usize, reg: usize) -> &mut VecDeque<(u64, usize)> {
        let idx = tid * REG_FILE_SIZE + reg;
        if idx >= self.producers.len() {
            self.producers
                .resize_with((tid + 1) * REG_FILE_SIZE, VecDeque::new);
        }
        &mut self.producers[idx]
    }

    /// Sorted insertion into the completion queue (ascending by
    /// `(done_at, block id, entry index)`).
    fn insert_completion(completions: &mut VecDeque<(u64, u64, usize)>, key: (u64, u64, usize)) {
        let pos = completions.partition_point(|&c| c < key);
        completions.insert(pos, key);
    }

    /// Inserts a decode group at the top, indexing its producers and
    /// waiting operands. Returns the block id.
    ///
    /// # Panics
    ///
    /// Panics if the unit is full, the group is empty or oversized, or the
    /// group mixes threads.
    pub fn push_block(&mut self, tid: usize, entries: Vec<SuEntry>) -> u64 {
        assert!(self.has_space(), "scheduling unit full");
        assert!(
            !entries.is_empty() && entries.len() <= self.block_size,
            "block of {} entries (block size {})",
            entries.len(),
            self.block_size
        );
        assert!(entries.iter().all(|e| e.tid == tid), "block mixes threads");
        let id = self.next_block_id;
        self.next_block_id += 1;
        let mut done = 0;
        let mut pending = 0;
        let mut faulted = false;
        for (ei, e) in entries.iter().enumerate() {
            let dest = e.insn.dest;
            let state = e.state;
            faulted |= e.fault.is_some();
            for (k, op) in e.ops.iter().enumerate() {
                if let Operand::Waiting { tag } = op {
                    self.waiters.entry(tag.raw()).or_default().push((id, ei, k));
                }
            }
            if let Some(reg) = dest {
                self.producer_list(tid, reg.index()).push_back((id, ei));
            }
            match state {
                EntryState::Done => done += 1,
                EntryState::Executing { done_at } => {
                    Self::insert_completion(&mut self.completions, (done_at, id, ei));
                }
                EntryState::Waiting => pending += 1,
            }
        }
        self.entries_count += entries.len();
        self.blocks.push_back(Block {
            id,
            tid,
            entries,
            done,
            pending,
            faulted,
        });
        id
    }

    /// The block at position `i` (0 = oldest).
    #[must_use]
    pub fn block(&self, i: usize) -> &Block {
        &self.blocks[i]
    }

    /// Mutable block access. Callers may freely edit entry payload fields
    /// (results, faults, flags); state transitions must go through
    /// [`mark_executing`](Self::mark_executing) and
    /// [`mark_done`](Self::mark_done) so the event indexes stay coherent.
    pub fn block_mut(&mut self, i: usize) -> &mut Block {
        &mut self.blocks[i]
    }

    /// Iterates blocks oldest → youngest (reversible for youngest-first
    /// scans such as store-to-load forwarding).
    pub fn blocks(&self) -> impl DoubleEndedIterator<Item = &Block> + ExactSizeIterator {
        self.blocks.iter()
    }

    /// Decode-time operand lookup: the *youngest* in-flight producer of
    /// `(tid, reg)`, per the paper's associative search "modified … to
    /// succeed only if the thread number and the register number match".
    #[must_use]
    pub fn lookup(&self, tid: usize, reg: smt_isa::Reg) -> Lookup {
        let Some(&(bid, ei)) = self
            .producers
            .get(tid * REG_FILE_SIZE + reg.index())
            .and_then(VecDeque::back)
        else {
            return Lookup::NotFound;
        };
        let bi = self
            .pos_of(bid)
            .expect("producer index only names resident blocks");
        let e = &self.blocks[bi].entries[ei];
        debug_assert_eq!(e.insn.dest, Some(reg));
        if e.is_done() {
            Lookup::Available(e.result)
        } else {
            Lookup::Pending(e.tag)
        }
    }

    /// Broadcasts a writeback: every operand waiting on `tag` becomes ready
    /// with `value` at cycle `now`. Touches exactly the registered waiter
    /// slots — O(consumers), not O(window).
    pub fn broadcast(&mut self, tag: Tag, value: u64, now: u64) {
        let Some(slots) = self.waiters.remove(&tag.raw()) else {
            return;
        };
        for (bid, ei, k) in slots.iter() {
            let bi = self
                .pos_of(bid)
                .expect("waiter slots are deregistered on removal");
            let e = &mut self.blocks[bi].entries[ei];
            let op = &mut e.ops[k];
            debug_assert!(matches!(op, Operand::Waiting { tag: t } if *t == tag));
            *op = Operand::Ready { value, since: now };
        }
    }

    /// Records that the entry at `(bi, ei)` issued and completes at
    /// `done_at`: the state becomes `Executing` and the completion heap
    /// learns about the event.
    ///
    /// # Panics
    ///
    /// Panics if the entry has already issued.
    pub fn mark_executing(&mut self, bi: usize, ei: usize, done_at: u64) {
        let block = &mut self.blocks[bi];
        let e = &mut block.entries[ei];
        assert_eq!(e.state, EntryState::Waiting, "entry issues exactly once");
        e.state = EntryState::Executing { done_at };
        block.pending -= 1;
        Self::insert_completion(&mut self.completions, (done_at, block.id, ei));
    }

    /// Marks the entry at `(bi, ei)` as written back (`Done`) and advances
    /// its block's done counter.
    ///
    /// # Panics
    ///
    /// Panics if the entry is already `Done`.
    pub fn mark_done(&mut self, bi: usize, ei: usize) {
        let block = &mut self.blocks[bi];
        assert!(!block.entries[ei].is_done(), "entry completes exactly once");
        block.entries[ei].state = EntryState::Done;
        block.done += 1;
    }

    /// Pops the next completion at or before cycle `now`: the `Executing`
    /// entry with the earliest `done_at`, oldest position breaking ties
    /// (block ids are monotone along the deque). Stale heap records —
    /// squashed entries — are discarded on the way.
    pub fn pop_completion(&mut self, now: u64) -> Option<(usize, usize)> {
        while let Some(&(done_at, bid, ei)) = self.completions.front() {
            if done_at > now {
                return None;
            }
            self.completions.pop_front();
            // Lazy invalidation: the record is live only if it still names
            // a resident entry executing towards this very deadline.
            let Some(bi) = self.pos_of(bid) else { continue };
            let Some(e) = self.blocks[bi].entries.get(ei) else {
                continue;
            };
            if e.state == (EntryState::Executing { done_at }) {
                return Some((bi, ei));
            }
        }
        None
    }

    /// Whether any entry *older* than position `(bi, ei)` and belonging to
    /// `tid` satisfies `pred`. Used for load/store/sync ordering gates.
    #[must_use]
    pub fn any_older(
        &self,
        tid: usize,
        bi: usize,
        ei: usize,
        mut pred: impl FnMut(&SuEntry) -> bool,
    ) -> bool {
        for (b, block) in self.blocks.iter().enumerate().take(bi + 1) {
            if block.tid != tid {
                continue;
            }
            let limit = if b == bi { ei } else { block.entries.len() };
            if block.entries[..limit].iter().any(&mut pred) {
                return true;
            }
        }
        false
    }

    /// Deregisters an entry (known to be leaving the unit) from the waiter
    /// and producer indexes. A free function over the index fields so
    /// callers can hold a simultaneous borrow of `blocks`.
    fn deindex(
        waiters: &mut HashMap<u64, WaiterList, MixState>,
        producers: &mut [VecDeque<(u64, usize)>],
        bid: u64,
        ei: usize,
        e: &SuEntry,
    ) {
        for (k, op) in e.ops.iter().enumerate() {
            if let Operand::Waiting { tag } = op {
                if let Some(slots) = waiters.get_mut(&tag.raw()) {
                    slots.remove((bid, ei, k));
                    if slots.is_empty() {
                        waiters.remove(&tag.raw());
                    }
                }
            }
        }
        if let Some(reg) = e.insn.dest {
            let list = &mut producers[e.tid * REG_FILE_SIZE + reg.index()];
            let pos = list
                .iter()
                .rposition(|&p| p == (bid, ei))
                .expect("producer was indexed");
            list.remove(pos);
        }
    }

    /// Selectively squashes the wrong path after a mispredicted control
    /// transfer: every entry of `tid` *younger* than `(bi, ei)` is removed
    /// ("all entries above the mispredicted one, and with a matching thread
    /// ID, are discarded"). Blocks of other threads are untouched. Returns
    /// the removed entries (caller frees tags); the slice borrows a buffer
    /// reused across squashes, so nothing is allocated on this path.
    ///
    /// Removed entries leave the waiter/producer indexes eagerly (bounding
    /// memory); their completion-queue records decay lazily.
    pub fn squash_after(&mut self, tid: usize, bi: usize, ei: usize) -> &[SuEntry] {
        self.squash_buf.clear();
        // Younger entries within the same block: fix the counters and
        // deindex in place, then drain into the scratch buffer.
        let bid = self.blocks[bi].id;
        let (mut done_removed, mut pending_removed) = (0, 0);
        for (off, e) in self.blocks[bi].entries[ei + 1..].iter().enumerate() {
            match e.state {
                EntryState::Done => done_removed += 1,
                EntryState::Waiting => pending_removed += 1,
                EntryState::Executing { .. } => {}
            }
            Self::deindex(&mut self.waiters, &mut self.producers, bid, ei + 1 + off, e);
        }
        self.blocks[bi].done -= done_removed;
        self.blocks[bi].pending -= pending_removed;
        self.squash_buf
            .extend(self.blocks[bi].entries.drain(ei + 1..));
        // The fault flag may have named a squashed entry; recompute over the
        // surviving few entries.
        if self.blocks[bi].faulted {
            self.blocks[bi].faulted = self.blocks[bi].entries.iter().any(|e| e.fault.is_some());
        }
        // Younger blocks of the same thread (whole blocks, by construction).
        let mut i = bi + 1;
        while i < self.blocks.len() {
            if self.blocks[i].tid == tid {
                let mut block = self.blocks.remove(i).expect("index in range");
                for (e_i, e) in block.entries.iter().enumerate() {
                    Self::deindex(&mut self.waiters, &mut self.producers, block.id, e_i, e);
                }
                self.squash_buf.append(&mut block.entries);
                self.recycle_storage(block.entries);
            } else {
                i += 1;
            }
        }
        self.entries_count -= self.squash_buf.len();
        &self.squash_buf
    }

    /// Finds the committable block under `policy`: the lowest block among
    /// the bottom `window` whose entries are all done, and below which no
    /// block of the same thread remains (per-thread in-order commit).
    /// O(window), not O(window × block size): readiness is a counter check.
    #[must_use]
    pub fn find_committable(&self, policy: CommitPolicy, window: usize) -> Option<usize> {
        let window = match policy {
            CommitPolicy::LowestOnly => 1,
            CommitPolicy::Flexible => window,
        };
        for i in 0..self.blocks.len().min(window) {
            let block = &self.blocks[i];
            if block.done < block.entries.len() {
                continue;
            }
            let blocked_by_older = self
                .blocks
                .iter()
                .take(i)
                .any(|older| older.tid == block.tid);
            if !blocked_by_older {
                return Some(i);
            }
        }
        None
    }

    /// Removes and returns the block at position `i` (after commit),
    /// deregistering its entries from the event indexes. Callers that
    /// consume the block should hand its entry storage back through
    /// [`recycle_storage`](Self::recycle_storage).
    pub fn remove_block(&mut self, i: usize) -> Block {
        let block = self.blocks.remove(i).expect("block index in range");
        self.entries_count -= block.entries.len();
        // Committed entries are all Done, so they normally hold no Waiting
        // operands; deindex defensively anyway (covers direct API use on
        // partially-executed blocks in tests).
        for (ei, e) in block.entries.iter().enumerate().rev() {
            Self::deindex(&mut self.waiters, &mut self.producers, block.id, ei, e);
        }
        block
    }

    /// Serializes resident blocks (ids, threads, entries) plus the block-id
    /// counter. The waiter/producer/completion indexes, per-block counters,
    /// and storage pools are *not* serialized — they are derived state,
    /// rebuilt from entry contents on restore by the same indexing code
    /// decode uses.
    pub fn save(&self, w: &mut smt_checkpoint::Writer) {
        w.put_u64(self.next_block_id);
        w.put_usize(self.blocks.len());
        for b in &self.blocks {
            w.put_u64(b.id);
            w.put_usize(b.tid);
            w.put_usize(b.entries.len());
            for e in &b.entries {
                e.save(w);
            }
        }
    }

    /// Rebuilds a unit from [`save`](Self::save)d state, re-deriving every
    /// index through the [`push_block`](Self::push_block) path (with the
    /// original block ids, which the simulator's cross-references key on).
    pub fn restore(
        capacity_blocks: usize,
        block_size: usize,
        r: &mut smt_checkpoint::Reader<'_>,
        decoded: &[DecodedInsn],
    ) -> Result<Self, smt_checkpoint::DecodeError> {
        let malformed = |what: String| -> smt_checkpoint::DecodeError {
            smt_checkpoint::DecodeError::Malformed(what)
        };
        let mut su = SchedulingUnit::new(capacity_blocks, block_size);
        let next_block_id = r.take_u64()?;
        let n_blocks = r.take_usize()?;
        if n_blocks > capacity_blocks {
            return Err(malformed(format!(
                "{n_blocks} blocks for a {capacity_blocks}-block unit"
            )));
        }
        for _ in 0..n_blocks {
            let id = r.take_u64()?;
            let tid = r.take_usize()?;
            let n_entries = r.take_usize()?;
            if n_entries == 0 || n_entries > block_size {
                return Err(malformed(format!(
                    "block of {n_entries} entries (block size {block_size})"
                )));
            }
            let mut entries = Vec::with_capacity(n_entries);
            for _ in 0..n_entries {
                let e = SuEntry::restore(r, decoded)?;
                if e.tid != tid {
                    return Err(malformed(format!(
                        "entry of thread {} in a block of thread {tid}",
                        e.tid
                    )));
                }
                entries.push(e);
            }
            if id < su.next_block_id || id >= next_block_id {
                return Err(malformed(format!("non-monotone block id {id}")));
            }
            // push_block assigns self.next_block_id as the new block's id
            // and rebuilds every index from the entries' recorded state;
            // pre-setting the counter preserves the original id.
            su.next_block_id = id;
            su.push_block(tid, entries);
        }
        su.next_block_id = next_block_id;
        Ok(su)
    }

    /// The thread owning the lower-most block, and whether that block could
    /// commit this cycle — drives the Masked Round-Robin fetch mask.
    #[must_use]
    pub fn bottom_block_status(&self) -> Option<(usize, bool)> {
        self.blocks.front().map(|b| {
            let blocked = b.done < b.entries.len();
            (b.tid, blocked)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::{FuClass, Instruction, Opcode, Reg};
    use smt_uarch::TagAllocator;

    fn entry(tags: &mut TagAllocator, tid: usize, dest: u8) -> SuEntry {
        let insn = Instruction::i2(Opcode::Addi, Reg::new(dest), Reg::new(2), 1);
        SuEntry::new(
            tags.alloc().unwrap(),
            tid,
            0,
            DecodedInsn::new(insn),
            [Operand::Ready { value: 0, since: 0 }, Operand::Unused],
        )
    }

    #[test]
    fn capacity_is_counted_in_blocks() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(2, 4);
        su.push_block(0, vec![entry(&mut tags, 0, 3)]); // partial block
        su.push_block(1, vec![entry(&mut tags, 1, 3)]);
        assert!(
            !su.has_space(),
            "two blocks fill a two-block unit even when partial"
        );
        assert_eq!(su.num_entries(), 2);
    }

    #[test]
    fn lookup_finds_youngest_same_thread_producer() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(4, 4);
        let mut older = entry(&mut tags, 0, 5);
        older.result = 11;
        older.state = EntryState::Done;
        let younger = entry(&mut tags, 0, 5);
        let other_thread = entry(&mut tags, 1, 5);
        let ytag = younger.tag;
        su.push_block(0, vec![older]);
        su.push_block(0, vec![younger]);
        su.push_block(1, vec![other_thread]);
        assert_eq!(su.lookup(0, Reg::new(5)), Lookup::Pending(ytag));
        assert_eq!(su.lookup(0, Reg::new(9)), Lookup::NotFound);
        // Thread 1's producer is independent.
        assert!(matches!(su.lookup(1, Reg::new(5)), Lookup::Pending(_)));
    }

    #[test]
    fn lookup_returns_value_once_done() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(4, 4);
        let mut e = entry(&mut tags, 0, 7);
        e.state = EntryState::Done;
        e.result = 99;
        su.push_block(0, vec![e]);
        assert_eq!(su.lookup(0, Reg::new(7)), Lookup::Available(99));
    }

    #[test]
    fn lookup_falls_back_after_producer_leaves() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(4, 4);
        let mut done = entry(&mut tags, 0, 5);
        done.state = EntryState::Done;
        su.push_block(0, vec![done]);
        let pending = entry(&mut tags, 0, 5);
        su.push_block(0, vec![pending]);
        // Commit the old producer: the younger one still answers.
        su.remove_block(0);
        assert!(matches!(su.lookup(0, Reg::new(5)), Lookup::Pending(_)));
        // Remove the younger one too: no producer remains.
        su.remove_block(0);
        assert_eq!(su.lookup(0, Reg::new(5)), Lookup::NotFound);
    }

    #[test]
    fn broadcast_wakes_waiters() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(4, 4);
        let producer = entry(&mut tags, 0, 5);
        let ptag = producer.tag;
        let mut consumer = entry(&mut tags, 0, 6);
        consumer.ops[0] = Operand::Waiting { tag: ptag };
        su.push_block(0, vec![producer]);
        su.push_block(0, vec![consumer]);
        su.broadcast(ptag, 123, 7);
        let op = su.block(1).entries[0].ops[0];
        assert_eq!(
            op,
            Operand::Ready {
                value: 123,
                since: 7
            }
        );
        assert_eq!(
            op.value_at(7, true),
            Some(123),
            "bypassing: usable same cycle"
        );
        assert_eq!(op.value_at(7, false), None, "no bypassing: next cycle");
        assert_eq!(op.value_at(8, false), Some(123));
    }

    #[test]
    fn broadcast_after_squash_of_consumer_is_harmless() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        let producer = entry(&mut tags, 0, 5);
        let ptag = producer.tag;
        let branch = entry(&mut tags, 0, 6);
        let mut consumer = entry(&mut tags, 0, 7);
        consumer.ops[0] = Operand::Waiting { tag: ptag };
        su.push_block(0, vec![producer]);
        su.push_block(0, vec![branch, consumer]);
        // Squash the consumer (younger than the branch at (1, 0)).
        let removed = su.squash_after(0, 1, 0);
        assert_eq!(removed.len(), 1);
        // The producer's broadcast must not touch the dead slot.
        su.broadcast(ptag, 99, 3);
        assert_eq!(su.block(1).entries.len(), 1, "only the branch remains");
    }

    #[test]
    fn completions_pop_in_deadline_then_age_order() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        su.push_block(0, vec![entry(&mut tags, 0, 3), entry(&mut tags, 0, 4)]);
        su.push_block(1, vec![entry(&mut tags, 1, 3)]);
        // Issue out of age order with equal and distinct deadlines.
        su.mark_executing(1, 0, 5); // young block, early deadline
        su.mark_executing(0, 1, 5); // old block, same deadline
        su.mark_executing(0, 0, 7); // oldest entry, late deadline
        assert_eq!(su.pop_completion(4), None, "nothing due yet");
        assert_eq!(
            su.pop_completion(5),
            Some((0, 1)),
            "tie goes to the older position"
        );
        su.mark_done(0, 1);
        assert_eq!(su.pop_completion(5), Some((1, 0)));
        su.mark_done(1, 0);
        assert_eq!(su.pop_completion(5), None, "third entry not due");
        assert_eq!(su.pop_completion(9), Some((0, 0)));
    }

    #[test]
    fn stale_completions_of_squashed_entries_are_discarded() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        let branch = entry(&mut tags, 0, 3);
        su.push_block(0, vec![branch, entry(&mut tags, 0, 4)]);
        su.push_block(0, vec![entry(&mut tags, 0, 5)]);
        su.mark_executing(0, 1, 2); // will be squashed
        su.mark_executing(1, 0, 2); // will be squashed (whole block)
        su.squash_after(0, 0, 0);
        assert_eq!(
            su.pop_completion(10),
            None,
            "squashed completions never surface"
        );
        // A new block reusing the same positions must not be confused with
        // the squashed records (fresh block id).
        su.push_block(0, vec![entry(&mut tags, 0, 6)]);
        su.mark_executing(1, 0, 3);
        assert_eq!(su.pop_completion(10), Some((1, 0)));
    }

    #[test]
    fn squash_removes_younger_same_thread_only() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        let branch = entry(&mut tags, 0, 3);
        let same_block_younger = entry(&mut tags, 0, 4);
        su.push_block(0, vec![branch, same_block_younger]);
        su.push_block(1, vec![entry(&mut tags, 1, 3)]);
        su.push_block(0, vec![entry(&mut tags, 0, 5), entry(&mut tags, 0, 6)]);
        let removed = su.squash_after(0, 0, 0);
        assert_eq!(removed.len(), 3, "one in-block + one 2-entry block");
        assert_eq!(su.num_blocks(), 2);
        assert_eq!(su.num_entries(), 2);
        assert_eq!(su.block(1).tid, 1, "other thread untouched");
    }

    #[test]
    fn flexible_commit_skips_blocked_thread() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        // Bottom block (thread 0): not done.
        su.push_block(0, vec![entry(&mut tags, 0, 3)]);
        // Next (thread 1): done.
        let mut done = entry(&mut tags, 1, 3);
        done.state = EntryState::Done;
        su.push_block(1, vec![done]);
        // Thread 0 again, done — but blocked by its own older block.
        let mut done0 = entry(&mut tags, 0, 4);
        done0.state = EntryState::Done;
        su.push_block(0, vec![done0]);

        assert_eq!(su.find_committable(CommitPolicy::LowestOnly, 4), None);
        assert_eq!(su.find_committable(CommitPolicy::Flexible, 4), Some(1));
        // Window of 1 behaves like lowest-only.
        assert_eq!(su.find_committable(CommitPolicy::Flexible, 1), None);
    }

    #[test]
    fn commit_window_is_bounded() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        su.push_block(0, vec![entry(&mut tags, 0, 3)]); // not done
        for tid in [1, 2, 3] {
            su.push_block(tid, vec![entry(&mut tags, tid, 3)]); // not done
        }
        let mut done = entry(&mut tags, 4, 3);
        done.state = EntryState::Done;
        su.push_block(4, vec![done]); // 5th block: outside the 4-block window
        assert_eq!(su.find_committable(CommitPolicy::Flexible, 4), None);
    }

    #[test]
    fn any_older_scans_only_same_thread() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        let store = SuEntry::new(
            tags.alloc().unwrap(),
            0,
            0,
            DecodedInsn::new(Instruction::store(Reg::new(3), Reg::new(2), 0)),
            [Operand::Unused, Operand::Unused],
        );
        su.push_block(0, vec![store]);
        su.push_block(1, vec![entry(&mut tags, 1, 3)]);
        su.push_block(0, vec![entry(&mut tags, 0, 4)]);
        // From thread 0's youngest entry, an older same-thread store exists.
        assert!(su.any_older(0, 2, 0, |e| e.insn.fu == FuClass::Store));
        // From thread 1's entry, no older thread-1 store exists.
        assert!(!su.any_older(1, 1, 0, |e| e.insn.fu == FuClass::Store));
        // The store cannot see itself.
        assert!(!su.any_older(0, 0, 0, |e| e.insn.fu == FuClass::Store));
    }

    #[test]
    fn bottom_block_status_reports_commit_failure() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        assert_eq!(su.bottom_block_status(), None);
        su.push_block(2, vec![entry(&mut tags, 2, 3)]);
        assert_eq!(su.bottom_block_status(), Some((2, true)));
        su.mark_executing(0, 0, 1);
        su.mark_done(0, 0);
        assert_eq!(su.bottom_block_status(), Some((2, false)));
    }

    #[test]
    fn fault_flag_tracks_set_and_partial_squash() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        su.push_block(0, vec![entry(&mut tags, 0, 3), entry(&mut tags, 0, 4)]);
        assert!(!su.block(0).has_fault());
        su.block_mut(0)
            .set_fault(1, smt_mem::MemError::Unaligned { addr: 3 });
        assert!(su.block(0).has_fault());
        // Squashing away the faulted entry must clear the flag …
        su.squash_after(0, 0, 0);
        assert!(!su.block(0).has_fault());
        // … and a squash that keeps the faulted entry must preserve it.
        su.block_mut(0)
            .set_fault(0, smt_mem::MemError::Unaligned { addr: 3 });
        su.push_block(0, vec![entry(&mut tags, 0, 5)]);
        su.squash_after(0, 0, 0);
        assert!(su.block(0).has_fault());
        assert_eq!(su.num_blocks(), 1);
    }

    #[test]
    #[should_panic(expected = "mixes threads")]
    fn mixed_thread_block_rejected() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(2, 4);
        let a = entry(&mut tags, 0, 3);
        let b = entry(&mut tags, 1, 3);
        su.push_block(0, vec![a, b]);
    }
}
