//! The scheduling unit: the SDSP's combined reorder buffer and instruction
//! window (Section 2.2), extended with a thread-ID field per entry
//! (Section 3.2).
//!
//! The unit is organized in *blocks* — decode groups of up to four
//! instructions from one thread. Capacity is counted in blocks, matching the
//! hardware, where a partially valid fetch block still occupies a full row
//! of the shifting structure. Entries hold renamed operands (value or
//! producer tag), so the issue logic "does not have to concern itself with
//! the thread that an instruction belongs to".

use std::collections::VecDeque;

use smt_isa::Instruction;
use smt_uarch::Tag;

use crate::config::CommitPolicy;

/// A renamed source operand.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operand {
    /// The instruction does not read this operand slot.
    Unused,
    /// Value known, available for issue from cycle `since` (same cycle with
    /// bypassing, the next cycle without).
    Ready {
        /// The operand value.
        value: u64,
        /// Cycle the value became available.
        since: u64,
    },
    /// Waiting for the producer with this renaming tag to write back.
    Waiting {
        /// Producer's tag.
        tag: Tag,
    },
}

impl Operand {
    /// The value, if ready and usable at cycle `now` under the given
    /// bypassing rule. `Unused` operands read as zero.
    #[must_use]
    pub fn value_at(&self, now: u64, bypass: bool) -> Option<u64> {
        match *self {
            Operand::Unused => Some(0),
            Operand::Ready { value, since } => {
                let usable = if bypass { since <= now } else { since < now };
                usable.then_some(value)
            }
            Operand::Waiting { .. } => None,
        }
    }
}

/// Execution state of a scheduling-unit entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EntryState {
    /// Not yet issued.
    Waiting,
    /// Issued; result arrives at `done_at`.
    Executing {
        /// Writeback cycle.
        done_at: u64,
    },
    /// Result written back (or no result to produce).
    Done,
}

/// One instruction resident in the scheduling unit.
#[derive(Clone, Debug)]
pub struct SuEntry {
    /// Globally unique renaming tag.
    pub tag: Tag,
    /// Owning thread.
    pub tid: usize,
    /// Instruction index (for predictor updates and debugging).
    pub pc: usize,
    /// The decoded instruction.
    pub insn: Instruction,
    /// Renamed source operands.
    pub ops: [Operand; 2],
    /// Pipeline state.
    pub state: EntryState,
    /// Result value (valid once `Done` for register-writing instructions).
    pub result: u64,
    /// Fetch-time prediction: taken?
    pub predicted_taken: bool,
    /// Fetch-time prediction: target if taken.
    pub predicted_target: usize,
    /// Resolved control-transfer outcome: taken?
    pub taken: bool,
    /// Resolved target.
    pub target: usize,
    /// Whether this control transfer was found mispredicted at execute.
    pub mispredicted: bool,
    /// Deferred memory fault (speculative wrong-path accesses may fault
    /// harmlessly; the fault becomes fatal only if the entry commits).
    pub fault: Option<smt_mem::MemError>,
    /// Effective address of an executed load/store (for store-to-load
    /// forwarding).
    pub mem_addr: u64,
    /// Whether a committed store has been pushed into the store buffer
    /// (commit may take several cycles when the buffer is tight).
    pub store_buffered: bool,
    /// For `WAIT`: whether the poll found the condition satisfied. An
    /// unsatisfied `WAIT` retires as a *spin* — it is discarded at commit
    /// and the thread refetches it, exactly like a software spin loop —
    /// so a waiting thread can never clog the commit window.
    pub sync_satisfied: bool,
}

impl SuEntry {
    /// A fresh entry in the `Waiting` state.
    #[must_use]
    pub fn new(tag: Tag, tid: usize, pc: usize, insn: Instruction, ops: [Operand; 2]) -> Self {
        SuEntry {
            tag,
            tid,
            pc,
            insn,
            ops,
            state: EntryState::Waiting,
            result: 0,
            predicted_taken: false,
            predicted_target: 0,
            taken: false,
            target: 0,
            mispredicted: false,
            fault: None,
            mem_addr: 0,
            store_buffered: false,
            sync_satisfied: false,
        }
    }

    /// Whether the entry has completed execution.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.state == EntryState::Done
    }

    /// Whether both operands are usable at `now`.
    #[must_use]
    pub fn operands_ready(&self, now: u64, bypass: bool) -> bool {
        self.ops.iter().all(|o| o.value_at(now, bypass).is_some())
    }
}

/// A decode group resident in the unit.
#[derive(Clone, Debug)]
pub struct Block {
    /// Monotonic block id (decode order).
    pub id: u64,
    /// Owning thread (blocks are single-threaded by construction).
    pub tid: usize,
    /// The 1..=block_size instructions of the group.
    pub entries: Vec<SuEntry>,
}

/// Result of a decode-time operand lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Lookup {
    /// No in-flight producer: read the committed register file.
    NotFound,
    /// Producer still executing: wait on its tag.
    Pending(Tag),
    /// Producer has written back: take the value directly.
    Available(u64),
}

/// The scheduling unit proper.
#[derive(Clone, Debug)]
pub struct SchedulingUnit {
    blocks: VecDeque<Block>,
    capacity_blocks: usize,
    block_size: usize,
    next_block_id: u64,
}

impl SchedulingUnit {
    /// Creates an empty unit holding `capacity_blocks` blocks of
    /// `block_size` instructions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(capacity_blocks: usize, block_size: usize) -> Self {
        assert!(capacity_blocks > 0 && block_size > 0, "degenerate scheduling unit");
        SchedulingUnit {
            blocks: VecDeque::with_capacity(capacity_blocks),
            capacity_blocks,
            block_size,
            next_block_id: 0,
        }
    }

    /// Whether a new block can enter.
    #[must_use]
    pub fn has_space(&self) -> bool {
        self.blocks.len() < self.capacity_blocks
    }

    /// Number of resident blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of resident instructions (valid entries, not padded slots).
    #[must_use]
    pub fn num_entries(&self) -> usize {
        self.blocks.iter().map(|b| b.entries.len()).sum()
    }

    /// Whether the unit is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Inserts a decode group at the top. Returns the block id.
    ///
    /// # Panics
    ///
    /// Panics if the unit is full, the group is empty or oversized, or the
    /// group mixes threads.
    pub fn push_block(&mut self, tid: usize, entries: Vec<SuEntry>) -> u64 {
        assert!(self.has_space(), "scheduling unit full");
        assert!(
            !entries.is_empty() && entries.len() <= self.block_size,
            "block of {} entries (block size {})",
            entries.len(),
            self.block_size
        );
        assert!(entries.iter().all(|e| e.tid == tid), "block mixes threads");
        let id = self.next_block_id;
        self.next_block_id += 1;
        self.blocks.push_back(Block { id, tid, entries });
        id
    }

    /// The block at position `i` (0 = oldest).
    #[must_use]
    pub fn block(&self, i: usize) -> &Block {
        &self.blocks[i]
    }

    /// Mutable block access.
    pub fn block_mut(&mut self, i: usize) -> &mut Block {
        &mut self.blocks[i]
    }

    /// Iterates blocks oldest → youngest (reversible for youngest-first
    /// scans such as store-to-load forwarding).
    pub fn blocks(&self) -> impl DoubleEndedIterator<Item = &Block> + ExactSizeIterator {
        self.blocks.iter()
    }

    /// Decode-time operand lookup: the *youngest* in-flight producer of
    /// `(tid, reg)`, per the paper's associative search "modified … to
    /// succeed only if the thread number and the register number match".
    #[must_use]
    pub fn lookup(&self, tid: usize, reg: smt_isa::Reg) -> Lookup {
        for block in self.blocks.iter().rev() {
            if block.tid != tid {
                continue;
            }
            for e in block.entries.iter().rev() {
                if e.insn.dest() == Some(reg) {
                    return if e.is_done() {
                        Lookup::Available(e.result)
                    } else {
                        Lookup::Pending(e.tag)
                    };
                }
            }
        }
        Lookup::NotFound
    }

    /// Broadcasts a writeback: every operand waiting on `tag` becomes ready
    /// with `value` at cycle `now`.
    pub fn broadcast(&mut self, tag: Tag, value: u64, now: u64) {
        for block in &mut self.blocks {
            for e in &mut block.entries {
                for op in &mut e.ops {
                    if matches!(op, Operand::Waiting { tag: t } if *t == tag) {
                        *op = Operand::Ready { value, since: now };
                    }
                }
            }
        }
    }

    /// Whether any entry *older* than position `(bi, ei)` and belonging to
    /// `tid` satisfies `pred`. Used for load/store/sync ordering gates.
    #[must_use]
    pub fn any_older(
        &self,
        tid: usize,
        bi: usize,
        ei: usize,
        mut pred: impl FnMut(&SuEntry) -> bool,
    ) -> bool {
        for (b, block) in self.blocks.iter().enumerate().take(bi + 1) {
            if block.tid != tid {
                continue;
            }
            let limit = if b == bi { ei } else { block.entries.len() };
            if block.entries[..limit].iter().any(&mut pred) {
                return true;
            }
        }
        false
    }

    /// Selectively squashes the wrong path after a mispredicted control
    /// transfer: every entry of `tid` *younger* than `(bi, ei)` is removed
    /// ("all entries above the mispredicted one, and with a matching thread
    /// ID, are discarded"). Blocks of other threads are untouched. Returns
    /// the removed entries (caller frees tags and store-buffer slots).
    pub fn squash_after(&mut self, tid: usize, bi: usize, ei: usize) -> Vec<SuEntry> {
        let mut removed = Vec::new();
        // Younger entries within the same block.
        removed.extend(self.blocks[bi].entries.drain(ei + 1..));
        // Younger blocks of the same thread (whole blocks, by construction).
        let mut i = bi + 1;
        while i < self.blocks.len() {
            if self.blocks[i].tid == tid {
                let block = self.blocks.remove(i).expect("index in range");
                removed.extend(block.entries);
            } else {
                i += 1;
            }
        }
        removed
    }

    /// Finds the committable block under `policy`: the lowest block among
    /// the bottom `window` whose entries are all done, and below which no
    /// block of the same thread remains (per-thread in-order commit).
    #[must_use]
    pub fn find_committable(&self, policy: CommitPolicy, window: usize) -> Option<usize> {
        let window = match policy {
            CommitPolicy::LowestOnly => 1,
            CommitPolicy::Flexible => window,
        };
        for i in 0..self.blocks.len().min(window) {
            let block = &self.blocks[i];
            let ready = block.entries.iter().all(SuEntry::is_done);
            if !ready {
                continue;
            }
            let blocked_by_older =
                self.blocks.iter().take(i).any(|older| older.tid == block.tid);
            if !blocked_by_older {
                return Some(i);
            }
        }
        None
    }

    /// Removes and returns the block at position `i` (after commit).
    pub fn remove_block(&mut self, i: usize) -> Block {
        self.blocks.remove(i).expect("block index in range")
    }

    /// The thread owning the lower-most block, and whether that block could
    /// commit this cycle — drives the Masked Round-Robin fetch mask.
    #[must_use]
    pub fn bottom_block_status(&self) -> Option<(usize, bool)> {
        self.blocks.front().map(|b| {
            let ready = b.entries.iter().all(SuEntry::is_done);
            let blocked = !ready;
            (b.tid, blocked)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smt_isa::{FuClass, Opcode, Reg};
    use smt_uarch::TagAllocator;

    fn entry(tags: &mut TagAllocator, tid: usize, dest: u8) -> SuEntry {
        let insn = Instruction::i2(Opcode::Addi, Reg::new(dest), Reg::new(2), 1);
        SuEntry::new(
            tags.alloc().unwrap(),
            tid,
            0,
            insn,
            [Operand::Ready { value: 0, since: 0 }, Operand::Unused],
        )
    }

    #[test]
    fn capacity_is_counted_in_blocks() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(2, 4);
        su.push_block(0, vec![entry(&mut tags, 0, 3)]); // partial block
        su.push_block(1, vec![entry(&mut tags, 1, 3)]);
        assert!(!su.has_space(), "two blocks fill a two-block unit even when partial");
        assert_eq!(su.num_entries(), 2);
    }

    #[test]
    fn lookup_finds_youngest_same_thread_producer() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(4, 4);
        let mut older = entry(&mut tags, 0, 5);
        older.result = 11;
        older.state = EntryState::Done;
        let younger = entry(&mut tags, 0, 5);
        let other_thread = entry(&mut tags, 1, 5);
        let ytag = younger.tag;
        su.push_block(0, vec![older]);
        su.push_block(0, vec![younger]);
        su.push_block(1, vec![other_thread]);
        assert_eq!(su.lookup(0, Reg::new(5)), Lookup::Pending(ytag));
        assert_eq!(su.lookup(0, Reg::new(9)), Lookup::NotFound);
        // Thread 1's producer is independent.
        assert!(matches!(su.lookup(1, Reg::new(5)), Lookup::Pending(_)));
    }

    #[test]
    fn lookup_returns_value_once_done() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(4, 4);
        let mut e = entry(&mut tags, 0, 7);
        e.state = EntryState::Done;
        e.result = 99;
        su.push_block(0, vec![e]);
        assert_eq!(su.lookup(0, Reg::new(7)), Lookup::Available(99));
    }

    #[test]
    fn broadcast_wakes_waiters() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(4, 4);
        let producer = entry(&mut tags, 0, 5);
        let ptag = producer.tag;
        let mut consumer = entry(&mut tags, 0, 6);
        consumer.ops[0] = Operand::Waiting { tag: ptag };
        su.push_block(0, vec![producer]);
        su.push_block(0, vec![consumer]);
        su.broadcast(ptag, 123, 7);
        let op = su.block(1).entries[0].ops[0];
        assert_eq!(op, Operand::Ready { value: 123, since: 7 });
        assert_eq!(op.value_at(7, true), Some(123), "bypassing: usable same cycle");
        assert_eq!(op.value_at(7, false), None, "no bypassing: next cycle");
        assert_eq!(op.value_at(8, false), Some(123));
    }

    #[test]
    fn squash_removes_younger_same_thread_only() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        let branch = entry(&mut tags, 0, 3);
        let same_block_younger = entry(&mut tags, 0, 4);
        su.push_block(0, vec![branch, same_block_younger]);
        su.push_block(1, vec![entry(&mut tags, 1, 3)]);
        su.push_block(0, vec![entry(&mut tags, 0, 5), entry(&mut tags, 0, 6)]);
        let removed = su.squash_after(0, 0, 0);
        assert_eq!(removed.len(), 3, "one in-block + one 2-entry block");
        assert_eq!(su.num_blocks(), 2);
        assert_eq!(su.block(1).tid, 1, "other thread untouched");
    }

    #[test]
    fn flexible_commit_skips_blocked_thread() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        // Bottom block (thread 0): not done.
        su.push_block(0, vec![entry(&mut tags, 0, 3)]);
        // Next (thread 1): done.
        let mut done = entry(&mut tags, 1, 3);
        done.state = EntryState::Done;
        su.push_block(1, vec![done]);
        // Thread 0 again, done — but blocked by its own older block.
        let mut done0 = entry(&mut tags, 0, 4);
        done0.state = EntryState::Done;
        su.push_block(0, vec![done0]);

        assert_eq!(su.find_committable(CommitPolicy::LowestOnly, 4), None);
        assert_eq!(su.find_committable(CommitPolicy::Flexible, 4), Some(1));
        // Window of 1 behaves like lowest-only.
        assert_eq!(su.find_committable(CommitPolicy::Flexible, 1), None);
    }

    #[test]
    fn commit_window_is_bounded() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        su.push_block(0, vec![entry(&mut tags, 0, 3)]); // not done
        for tid in [1, 2, 3] {
            su.push_block(tid, vec![entry(&mut tags, tid, 3)]); // not done
        }
        let mut done = entry(&mut tags, 4, 3);
        done.state = EntryState::Done;
        su.push_block(4, vec![done]); // 5th block: outside the 4-block window
        assert_eq!(su.find_committable(CommitPolicy::Flexible, 4), None);
    }

    #[test]
    fn any_older_scans_only_same_thread() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        let store = SuEntry::new(
            tags.alloc().unwrap(),
            0,
            0,
            Instruction::store(Reg::new(3), Reg::new(2), 0),
            [Operand::Unused, Operand::Unused],
        );
        su.push_block(0, vec![store]);
        su.push_block(1, vec![entry(&mut tags, 1, 3)]);
        su.push_block(0, vec![entry(&mut tags, 0, 4)]);
        // From thread 0's youngest entry, an older same-thread store exists.
        assert!(su.any_older(0, 2, 0, |e| e.insn.op.fu_class() == FuClass::Store));
        // From thread 1's entry, no older thread-1 store exists.
        assert!(!su.any_older(1, 1, 0, |e| e.insn.op.fu_class() == FuClass::Store));
        // The store cannot see itself.
        assert!(!su.any_older(0, 0, 0, |e| e.insn.op.fu_class() == FuClass::Store));
    }

    #[test]
    fn bottom_block_status_reports_commit_failure() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(8, 4);
        assert_eq!(su.bottom_block_status(), None);
        su.push_block(2, vec![entry(&mut tags, 2, 3)]);
        assert_eq!(su.bottom_block_status(), Some((2, true)));
        su.block_mut(0).entries[0].state = EntryState::Done;
        assert_eq!(su.bottom_block_status(), Some((2, false)));
    }

    #[test]
    #[should_panic(expected = "mixes threads")]
    fn mixed_thread_block_rejected() {
        let mut tags = TagAllocator::new(64);
        let mut su = SchedulingUnit::new(2, 4);
        let a = entry(&mut tags, 0, 3);
        let b = entry(&mut tags, 1, 3);
        su.push_block(0, vec![a, b]);
    }
}
