//! Commit-stream observation: a pluggable sink receiving every
//! architecturally retired instruction in commit order.
//!
//! The cycle simulator's only externally visible contract is its commit
//! stream — which instructions retire, in what order, with what register
//! and memory effects. A [`CommitSink`] taps that stream without touching
//! the machine: [`Simulator::run_observed`] delivers one [`Retirement`]
//! per architecturally retiring instruction, and the default
//! [`Simulator::run`] path compiles to exactly the code it had before the
//! sink existed (the sink is an `Option` checked once per retirement; no
//! event is even constructed when unset).
//!
//! The primary consumer is the lockstep oracle in `smt-oracle`, which
//! replays the stream on the functional interpreter and diffs every
//! retirement. Spin retirements of unsatisfied `WAIT`s are *not*
//! architectural (the instruction refetches) and are not delivered.
//!
//! [`Simulator::run`]: crate::Simulator::run
//! [`Simulator::run_observed`]: crate::Simulator::run_observed

use smt_isa::{DecodedInsn, Opcode, Reg};
use smt_mem::MemError;

/// One architecturally retired instruction, observed at commit.
#[derive(Clone, Copy, Debug)]
pub struct Retirement {
    /// Cycle in which the instruction's block committed.
    pub cycle: u64,
    /// Scheduling-unit block id the instruction retired from (monotone
    /// along the run; pins the divergence to a window position).
    pub block: u64,
    /// Owning thread.
    pub tid: usize,
    /// Program counter of the retiring instruction.
    pub pc: usize,
    /// The predecoded instruction (carries the opcode and displays as its
    /// disassembly).
    pub insn: DecodedInsn,
    /// Destination register and the value committed to it, if any.
    pub dest: Option<(Reg, u64)>,
    /// For stores: effective address and data released to the store buffer.
    pub mem: Option<(u64, u64)>,
    /// A memory fault raised precisely at this commit. The instruction does
    /// *not* retire architecturally; the simulator aborts with the same
    /// fault immediately after delivering this event, so a sink sees
    /// exactly where the machine stopped. `dest`/`mem` are `None` — a
    /// faulting block commits no side effects.
    pub fault: Option<MemError>,
}

impl Retirement {
    /// The retiring opcode.
    #[must_use]
    pub fn op(&self) -> Opcode {
        self.insn.op
    }
}

/// Observer of the architectural commit stream.
///
/// Implementations must not assume anything about *timing* — consecutive
/// retirements may share a cycle (a block commits whole) and cycles with no
/// retirement are silent.
pub trait CommitSink {
    /// Called once per architecturally retired instruction, in commit
    /// order, plus once for a commit-time fault (with
    /// [`Retirement::fault`] set) immediately before the run aborts.
    fn retired(&mut self, r: &Retirement);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::sim::Simulator;
    use smt_isa::builder::ProgramBuilder;

    /// Records the stream for assertions.
    #[derive(Default)]
    struct Recorder {
        events: Vec<Retirement>,
    }

    impl CommitSink for Recorder {
        fn retired(&mut self, r: &Retirement) {
            self.events.push(*r);
        }
    }

    #[test]
    fn stream_matches_architectural_run() {
        let mut b = ProgramBuilder::new();
        let out = b.alloc_zeroed(2 * 8);
        let [v, addr] = b.regs();
        b.li(v, 41);
        b.addi(v, v, 1);
        b.slli(addr, b.tid_reg(), 3);
        b.addi(addr, addr, out as i32);
        b.sd(v, addr, 0);
        b.halt();
        let p = b.build(2).unwrap();

        let mut sim = Simulator::new(SimConfig::default().with_threads(2), &p);
        let mut rec = Recorder::default();
        let stats = sim.run_observed(&mut rec).expect("program completes");

        assert_eq!(
            rec.events.len() as u64,
            stats.committed_total(),
            "one event per architectural commit"
        );
        // Per-thread pc order is program order.
        for tid in 0..2 {
            let pcs: Vec<usize> = rec
                .events
                .iter()
                .filter(|e| e.tid == tid)
                .map(|e| e.pc)
                .collect();
            let mut sorted = pcs.clone();
            sorted.sort_unstable();
            assert_eq!(pcs, sorted, "thread {tid} retires in program order");
        }
        // The store event carries the committed address and data.
        let stores: Vec<&Retirement> = rec.events.iter().filter(|e| e.op() == Opcode::Sd).collect();
        assert_eq!(stores.len(), 2);
        for s in stores {
            assert_eq!(s.mem, Some((out + 8 * s.tid as u64, 42)));
            assert_eq!(s.dest, None);
            assert!(s.fault.is_none());
        }
        // Register-writing events carry the committed value.
        assert!(rec
            .events
            .iter()
            .filter(|e| e.tid == 0)
            .any(|e| e.dest == Some((v, 42))));
        // Block ids never decrease along the stream; cycles never decrease.
        for w in rec.events.windows(2) {
            assert!(w[0].cycle <= w[1].cycle);
        }
    }

    #[test]
    fn observed_run_is_bit_identical_to_unobserved() {
        let mut b = ProgramBuilder::new();
        let out = b.alloc_zeroed(4 * 8);
        let [acc, i, limit, addr] = b.regs();
        b.li(acc, 0);
        b.li(i, 0);
        b.li(limit, 12);
        let top = b.label();
        b.bind(top);
        b.add(acc, acc, i);
        b.addi(i, i, 1);
        b.blt(i, limit, top);
        b.slli(addr, b.tid_reg(), 3);
        b.addi(addr, addr, out as i32);
        b.sd(acc, addr, 0);
        b.halt();
        let p = b.build(4).unwrap();

        let mut plain = Simulator::new(SimConfig::default(), &p);
        let plain_stats = plain.run().unwrap();
        let mut observed = Simulator::new(SimConfig::default(), &p);
        let mut rec = Recorder::default();
        let observed_stats = observed.run_observed(&mut rec).unwrap();
        assert_eq!(plain_stats, observed_stats, "observation changes nothing");
        assert_eq!(plain.reg_file(), observed.reg_file());
        assert_eq!(plain.memory().words(), observed.memory().words());
        assert!(!rec.events.is_empty());
    }

    #[test]
    fn commit_fault_is_delivered_before_abort() {
        let mut b = ProgramBuilder::new();
        let r = b.reg();
        b.li(r, 1 << 40);
        b.sd(r, r, 0);
        b.halt();
        let p = b.build(1).unwrap();
        let mut sim = Simulator::new(SimConfig::default().with_threads(1), &p);
        let mut rec = Recorder::default();
        let err = sim.run_observed(&mut rec).expect_err("store faults");
        let last = rec.events.last().expect("fault event delivered");
        let fault = last.fault.expect("last event carries the fault");
        assert!(matches!(
            err,
            crate::SimError::Mem { tid: 0, pc, err }
                if pc == last.pc && err == fault
        ));
        assert_eq!(last.dest, None, "faulting block commits no side effects");
        assert_eq!(last.mem, None);
    }
}
